"""E12 (Section VI): governance-layer scalability.

"As PDS2 aims to be a global, open platform, its scalability is an
important aspect."  This experiment grows the provider pool and measures
what the governance layer actually charges: total gas per workload, gas per
provider, blocks, and end-to-end wall time.  Gas should grow linearly in
the number of participants (one participation record each) over a constant
per-workload base — no superlinear term.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import Experiment, higher_is_better, info, lower_is_better
from repro.core import Marketplace, ModelSpec, TrainingSpec, WorkloadSpec
from repro.ml.datasets import (
    make_iot_activity,
    split_dirichlet,
    train_test_split,
)
from repro.storage.semantic import ConceptRequirement, SemanticAnnotation
from reporting import format_table, report

PROVIDER_COUNTS = [8, 16, 32]


def run_market(num_providers: int):
    rng = np.random.default_rng(3000 + num_providers)
    data = make_iot_activity(max(400, 40 * num_providers), rng)
    train, validation = train_test_split(data, 0.25, rng)
    parts = split_dirichlet(train, num_providers, alpha=1.0, rng=rng,
                            min_samples=5)
    market = Marketplace(seed=5)
    for index, part in enumerate(parts):
        market.add_provider(
            f"u{index}", part, SemanticAnnotation("heart_rate", {})
        )
    consumer = market.add_consumer("lab", validation=validation)
    market.add_executor("e0")
    market.add_executor("e1")
    spec = WorkloadSpec(
        workload_id=f"e12-{num_providers}",
        requirement=ConceptRequirement("physiological"),
        model=ModelSpec(family="softmax", num_features=6, num_classes=5),
        training=TrainingSpec(steps=40, learning_rate=0.3),
        reward_pool=1_000_000,
        min_providers=num_providers // 2,
        min_samples=10,
        required_confirmations=1,
    )
    start = time.perf_counter()
    result = market.run_workload(consumer, spec)
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_bench(quick: bool = False) -> dict:
    """The provider-count sweep (gas and blocks are deterministic)."""
    counts = [8, 16] if quick else PROVIDER_COUNTS
    rows = []
    total_gas = []
    gas_per_provider = []
    audits_clean = True
    for count in counts:
        result, elapsed = run_market(count)
        audits_clean = audits_clean and result.audit.clean
        per_provider = result.gas_used / count
        total_gas.append(result.gas_used)
        gas_per_provider.append(per_provider)
        rows.append([
            count, f"{result.gas_used:,}", f"{per_provider:,.0f}",
            result.blocks_mined, f"{elapsed:.1f}",
        ])

    lines = format_table(
        ["providers", "total gas", "gas/provider", "blocks", "wall s"],
        rows,
    )
    sublinear = (
        gas_per_provider[-1] <= gas_per_provider[0] * 1.10
        and total_gas[-1] < total_gas[0] * (counts[-1] / counts[0]) * 1.2
    )
    metrics = {
        "gas_total_smallest": lower_is_better(total_gas[0], unit="gas"),
        "gas_per_provider_largest": lower_is_better(gas_per_provider[-1],
                                                    unit="gas"),
        "gas_sublinear": higher_is_better(1.0 if sublinear else 0.0,
                                          threshold_pct=1.0),
        "audits_clean": higher_is_better(1.0 if audits_clean else 0.0,
                                         threshold_pct=1.0),
        "providers_largest": info(counts[-1]),
    }
    return {"metrics": metrics, "lines": lines,
            "gas_per_provider": gas_per_provider, "total_gas": total_gas,
            "counts": counts, "audits_clean": audits_clean}


EXPERIMENT = Experiment("E12", "governance gas scalability", run_bench)


def test_e12_gas_scales_linearly(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E12", "governance gas vs marketplace size", payload["lines"])

    assert payload["audits_clean"]
    gas_per_provider = payload["gas_per_provider"]
    total_gas = payload["total_gas"]
    counts = payload["counts"]
    # Sub-linear marginal cost: per-provider gas falls (or is flat) as the
    # fixed per-workload overhead amortizes; no superlinear blow-up.
    assert gas_per_provider[-1] <= gas_per_provider[0] * 1.10
    # Total gas grows sublinearly relative to 2x provider steps.
    assert total_gas[-1] < total_gas[0] * (counts[-1] / counts[0]) * 1.2
