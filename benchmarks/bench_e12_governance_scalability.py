"""E12 (Section VI): governance-layer scalability.

"As PDS2 aims to be a global, open platform, its scalability is an
important aspect."  This experiment grows the provider pool and measures
what the governance layer actually charges: total gas per workload, gas per
provider, blocks, and end-to-end wall time.  Gas should grow linearly in
the number of participants (one participation record each) over a constant
per-workload base — no superlinear term.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import Marketplace, ModelSpec, TrainingSpec, WorkloadSpec
from repro.ml.datasets import (
    make_iot_activity,
    split_dirichlet,
    train_test_split,
)
from repro.storage.semantic import ConceptRequirement, SemanticAnnotation
from reporting import format_table, report

PROVIDER_COUNTS = [8, 16, 32]


def run_market(num_providers: int):
    rng = np.random.default_rng(3000 + num_providers)
    data = make_iot_activity(max(400, 40 * num_providers), rng)
    train, validation = train_test_split(data, 0.25, rng)
    parts = split_dirichlet(train, num_providers, alpha=1.0, rng=rng,
                            min_samples=5)
    market = Marketplace(seed=5)
    for index, part in enumerate(parts):
        market.add_provider(
            f"u{index}", part, SemanticAnnotation("heart_rate", {})
        )
    consumer = market.add_consumer("lab", validation=validation)
    market.add_executor("e0")
    market.add_executor("e1")
    spec = WorkloadSpec(
        workload_id=f"e12-{num_providers}",
        requirement=ConceptRequirement("physiological"),
        model=ModelSpec(family="softmax", num_features=6, num_classes=5),
        training=TrainingSpec(steps=40, learning_rate=0.3),
        reward_pool=1_000_000,
        min_providers=num_providers // 2,
        min_samples=10,
        required_confirmations=1,
    )
    start = time.perf_counter()
    result = market.run_workload(consumer, spec)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_e12_gas_scales_linearly(benchmark):
    rows = []
    gas_per_provider = []
    for count in PROVIDER_COUNTS:
        result, elapsed = run_market(count)
        assert result.audit.clean
        per_provider = result.gas_used / count
        gas_per_provider.append(per_provider)
        rows.append([
            count, f"{result.gas_used:,}", f"{per_provider:,.0f}",
            result.blocks_mined, f"{elapsed:.1f}",
        ])

    benchmark.pedantic(lambda: run_market(8), rounds=1, iterations=1)

    report("E12", "governance gas vs marketplace size",
           format_table(
               ["providers", "total gas", "gas/provider", "blocks",
                "wall s"],
               rows,
           ))

    # Sub-linear marginal cost: per-provider gas falls (or is flat) as the
    # fixed per-workload overhead amortizes; no superlinear blow-up.
    assert gas_per_provider[-1] <= gas_per_provider[0] * 1.10
    # Total gas grows sublinearly relative to 2x provider steps.
    total_gas = [float(row[1].replace(",", "")) for row in rows]
    assert total_gas[-1] < total_gas[0] * (PROVIDER_COUNTS[-1] /
                                           PROVIDER_COUNTS[0]) * 1.2
