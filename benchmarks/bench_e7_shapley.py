"""E7 (Section IV-A): Shapley valuation — exponential exact cost, cheap
approximations.

The paper flags that "the complexity of calculating the Shapley value is
exponential, and thus it is unfeasible to use it as is".  This experiment
measures that wall: exact valuation time and coalition evaluations versus
provider count, then shows the practical alternatives (permutation Monte
Carlo and truncated MC) matching the exact values to a few percent at a
fraction of the evaluations.
"""

from __future__ import annotations

import time

import numpy as np

from repro.ml.datasets import (
    make_iot_activity,
    split_dirichlet,
    train_test_split,
)
from repro.ml.models import SoftmaxRegressionModel
from repro.rewards.shapley import (
    CachedValueFunction,
    DataValuationTask,
    exact_shapley,
    leave_one_out,
    monte_carlo_shapley,
    truncated_monte_carlo_shapley,
)
from reporting import format_table, report


def build_task(num_providers: int, seed: int = 17) -> DataValuationTask:
    rng = np.random.default_rng(seed)
    data = make_iot_activity(150 * num_providers, rng)
    train, validation = train_test_split(data, 0.3, rng)
    parts = split_dirichlet(train, num_providers, 0.5, rng, min_samples=5)
    return DataValuationTask(
        model_factory=lambda: SoftmaxRegressionModel(6, 5),
        provider_datasets=parts, validation=validation,
        train_steps=40, learning_rate=0.3, seed=seed,
    )


def test_e7_exact_cost_grows_exponentially(benchmark):
    rows = []
    times = []
    for n in (4, 6, 8, 10):
        task = build_task(n)
        start = time.perf_counter()
        exact_shapley(n, task)
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        rows.append([n, 2**n, f"{elapsed:.2f}"])

    benchmark.pedantic(lambda: exact_shapley(6, build_task(6)), rounds=2,
                       iterations=1)

    report("E7a", "exact Shapley cost vs provider count",
           format_table(["providers", "coalitions", "seconds"], rows))

    # Doubling the player count by +2 should multiply cost by roughly 4x
    # (2^n coalitions); demand at least geometric growth overall.
    assert times[-1] > 8 * times[0]


def test_e7_approximations_track_exact(benchmark, rng):
    n = 8
    task = build_task(n)
    exact = exact_shapley(n, task)
    scale = np.abs(exact).sum() or 1.0

    mc_task = CachedValueFunction(task)
    mc = monte_carlo_shapley(n, mc_task, permutations=40, rng=rng)
    mc_evals = mc_task.evaluations

    tmc = truncated_monte_carlo_shapley(n, task, permutations=40, rng=rng,
                                        tolerance=0.02)
    tmc_evals = truncated_monte_carlo_shapley.last_evaluations

    loo = leave_one_out(n, task)

    def rel_error(estimate):
        return float(np.abs(estimate - exact).sum() / scale)

    benchmark.pedantic(
        lambda: monte_carlo_shapley(n, task, 10, np.random.default_rng(1)),
        rounds=2, iterations=1,
    )

    rows = [
        ["exact", 2**n, "0.000"],
        ["monte carlo (40 perms)", mc_evals, f"{rel_error(mc):.3f}"],
        ["truncated MC (40 perms)", tmc_evals, f"{rel_error(tmc):.3f}"],
        ["leave-one-out", n + 1, f"{rel_error(loo):.3f}"],
    ]
    report("E7b", f"approximation quality at n={n} providers",
           format_table(["estimator", "model fits", "rel. L1 error"], rows))

    assert rel_error(mc) < 0.5
    assert rel_error(tmc) < 0.6
    # LOO is the cheapest and, on redundant data, the least faithful.
    assert mc_evals < 2**n
