"""E7 (Section IV-A): Shapley valuation — exponential exact cost, cheap
approximations.

The paper flags that "the complexity of calculating the Shapley value is
exponential, and thus it is unfeasible to use it as is".  This experiment
measures that wall: exact valuation time and coalition evaluations versus
provider count, then shows the practical alternatives (permutation Monte
Carlo and truncated MC) matching the exact values to a few percent at a
fraction of the evaluations.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import Experiment, info, lower_is_better
from repro.ml.datasets import (
    make_iot_activity,
    split_dirichlet,
    train_test_split,
)
from repro.ml.models import SoftmaxRegressionModel
from repro.rewards.shapley import (
    CachedValueFunction,
    DataValuationTask,
    exact_shapley,
    leave_one_out,
    monte_carlo_shapley,
    truncated_monte_carlo_shapley,
)
from reporting import format_table, report


def build_task(num_providers: int, seed: int = 17) -> DataValuationTask:
    rng = np.random.default_rng(seed)
    data = make_iot_activity(150 * num_providers, rng)
    train, validation = train_test_split(data, 0.3, rng)
    parts = split_dirichlet(train, num_providers, 0.5, rng, min_samples=5)
    return DataValuationTask(
        model_factory=lambda: SoftmaxRegressionModel(6, 5),
        provider_datasets=parts, validation=validation,
        train_steps=40, learning_rate=0.3, seed=seed,
    )


def run_bench(quick: bool = False) -> dict:
    """Exact-cost sweep plus approximation quality at a fixed n."""
    sizes = (4, 6) if quick else (4, 6, 8, 10)
    cost_rows = []
    times = []
    for n in sizes:
        task = build_task(n)
        start = time.perf_counter()
        exact_shapley(n, task)
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        cost_rows.append([n, 2**n, f"{elapsed:.2f}"])

    n = 6 if quick else 8
    permutations = 10 if quick else 40
    rng = np.random.default_rng(20260705)
    task = build_task(n)
    exact = exact_shapley(n, task)
    scale = np.abs(exact).sum() or 1.0

    mc_task = CachedValueFunction(task)
    mc = monte_carlo_shapley(n, mc_task, permutations=permutations, rng=rng)
    mc_evals = mc_task.evaluations

    tmc = truncated_monte_carlo_shapley(n, task, permutations=permutations,
                                        rng=rng, tolerance=0.02)
    tmc_evals = truncated_monte_carlo_shapley.last_evaluations

    loo = leave_one_out(n, task)

    def rel_error(estimate):
        return float(np.abs(estimate - exact).sum() / scale)

    approx_rows = [
        ["exact", 2**n, "0.000"],
        [f"monte carlo ({permutations} perms)", mc_evals,
         f"{rel_error(mc):.3f}"],
        [f"truncated MC ({permutations} perms)", tmc_evals,
         f"{rel_error(tmc):.3f}"],
        ["leave-one-out", n + 1, f"{rel_error(loo):.3f}"],
    ]
    lines = (format_table(["providers", "coalitions", "seconds"], cost_rows)
             + ["", f"approximation quality at n={n} providers:", ""]
             + format_table(["estimator", "model fits", "rel. L1 error"],
                            approx_rows))
    # Model-fit counts are deterministic structure; wall seconds and the
    # (seed-dependent) error magnitudes ride along as context.
    metrics = {
        "mc_model_fits": lower_is_better(mc_evals, unit="fits"),
        "tmc_model_fits": lower_is_better(tmc_evals, unit="fits"),
        "exact_seconds_largest": info(times[-1], unit="s"),
        "exact_growth": info(times[-1] / times[0], unit="x"),
        "mc_rel_error": info(rel_error(mc)),
        "tmc_rel_error": info(rel_error(tmc)),
        "loo_rel_error": info(rel_error(loo)),
    }
    return {"metrics": metrics, "lines": lines, "times": times,
            "errors": {"mc": rel_error(mc), "tmc": rel_error(tmc)},
            "mc_evals": mc_evals, "approx_n": n}


EXPERIMENT = Experiment(
    "E7", "Shapley: exponential exact cost, cheap approximations", run_bench,
)


def test_e7_shapley(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E7", "exact Shapley cost and approximation quality",
           payload["lines"])

    # Doubling the player count by +2 should multiply cost by roughly 4x
    # (2^n coalitions); demand at least geometric growth overall.
    times = payload["times"]
    assert times[-1] > 8 * times[0]
    assert payload["errors"]["mc"] < 0.5
    assert payload["errors"]["tmc"] < 0.6
    # MC is cheaper than exhaustive enumeration.
    assert payload["mc_evals"] < 2 ** payload["approx_n"]
