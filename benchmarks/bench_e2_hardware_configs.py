"""E2 (Fig. 3): data-movement cost of the provider hardware configurations.

The paper's user-centered flexibility claim: providers may (a) keep storage
and execution on their own hardware, (b) outsource execution only, or
(c) outsource both.  We measure what each configuration costs in bytes
moved off the provider's hardware and in transfer latency — the quantities
that decide whether self-hosting stays viable.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Experiment, info, lower_is_better
from repro.storage.local import LocalEncryptedStore
from repro.storage.swarm import SwarmStore
from repro.tee.cost_model import NetworkProfile
from reporting import format_table, report

DATA_BYTES = 512 * 1024  # one provider's partition, serialized
OWNER = "0x" + "aa" * 20
EXECUTOR = "0x" + "bb" * 20

network = NetworkProfile(latency_s=0.02,
                         bandwidth_bytes_per_s=12_500_000.0)


def _payload(rng, data_bytes: int = DATA_BYTES) -> bytes:
    return bytes(rng.integers(0, 256, data_bytes, dtype=np.uint8))


def config_a_self_hosted(rng, data_bytes: int = DATA_BYTES
                         ) -> tuple[int, float]:
    """(a) Own storage + own execution: data never leaves the provider."""
    store = LocalEncryptedStore(OWNER, rng)
    object_id = store.put(_payload(rng, data_bytes), OWNER)
    store.get(object_id, OWNER)  # local execution reads locally
    external_bytes = 0  # both hops are on-device
    return external_bytes, 0.0


def config_b_outsourced_execution(rng, data_bytes: int = DATA_BYTES
                                  ) -> tuple[int, float]:
    """(b) Own storage, third-party executor: one upload to the executor."""
    store = LocalEncryptedStore(OWNER, rng)
    object_id = store.put(_payload(rng, data_bytes), OWNER)
    store.grant(object_id, OWNER, EXECUTOR)
    data = store.get(object_id, EXECUTOR)  # travels provider -> executor
    external_bytes = len(data)
    latency = network.latency_s + network.transfer_time(external_bytes)
    return external_bytes, latency


def config_c_fully_outsourced(rng, data_bytes: int = DATA_BYTES
                              ) -> tuple[int, float]:
    """(c) Third-party storage + executor: upload once, download once."""
    store = SwarmStore(num_nodes=12, rng=rng, replication=3,
                       chunk_size=4096)
    payload = _payload(rng, data_bytes)
    object_id = store.put(payload, OWNER)       # provider -> swarm
    store.grant(object_id, OWNER, EXECUTOR)
    data = store.get(object_id, EXECUTOR)       # swarm -> executor
    external_bytes = len(payload) + len(data)
    latency = 2 * network.latency_s + network.transfer_time(external_bytes)
    return external_bytes, latency


def run_bench(quick: bool = False) -> dict:
    """Measure all three Fig. 3 configurations on one seeded payload."""
    rng = np.random.default_rng(20260705)
    data_bytes = DATA_BYTES // 4 if quick else DATA_BYTES
    a_bytes, a_latency = config_a_self_hosted(rng, data_bytes)
    b_bytes, b_latency = config_b_outsourced_execution(rng, data_bytes)
    c_bytes, c_latency = config_c_fully_outsourced(rng, data_bytes)
    rows = [
        ["(a) own storage + execution", f"{a_bytes:,}",
         f"{a_latency * 1000:.1f}"],
        ["(b) own storage, 3rd-party exec", f"{b_bytes:,}",
         f"{b_latency * 1000:.1f}"],
        ["(c) fully outsourced", f"{c_bytes:,}",
         f"{c_latency * 1000:.1f}"],
    ]
    lines = format_table(["configuration", "external bytes", "latency ms"],
                         rows)
    # The transfer latencies come from the deterministic network model,
    # so they gate alongside the byte counts.
    metrics = {
        "self_hosted_bytes": lower_is_better(a_bytes, unit="B",
                                             threshold_pct=1.0),
        "outsourced_exec_bytes": lower_is_better(b_bytes, unit="B"),
        "fully_outsourced_bytes": lower_is_better(c_bytes, unit="B"),
        "outsourced_exec_latency_ms": lower_is_better(b_latency * 1e3,
                                                      unit="ms"),
        "fully_outsourced_latency_ms": lower_is_better(c_latency * 1e3,
                                                       unit="ms"),
        "partition_bytes": info(data_bytes, unit="B"),
    }
    return {"metrics": metrics, "lines": lines,
            "bytes": (a_bytes, b_bytes, c_bytes)}


EXPERIMENT = Experiment("E2", "Fig. 3 hardware configurations", run_bench)


def test_e2_hardware_configurations(benchmark):
    """Measure all three Fig. 3 configurations."""
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E2", "Fig. 3 hardware configurations "
                 f"({DATA_BYTES // 1024} KiB partition)",
           payload["lines"])

    a_bytes, b_bytes, c_bytes = payload["bytes"]
    # The paper's point: control costs nothing extra in data movement.
    assert a_bytes == 0
    assert a_bytes < b_bytes < c_bytes
    assert c_bytes == 2 * b_bytes
