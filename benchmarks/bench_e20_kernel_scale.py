"""E20: vectorized gossip kernel engine — speed and scale.

Two claims, both measured on the seeded HAR workload:

* **Speedup** — at 256 nodes the flat-array kernel engine
  (``GossipConfig(engine="kernel")``) runs the identical simulation at
  least an order of magnitude faster than the per-node object engine,
  while reproducing its accuracy-versus-time history *byte-identically*
  (same ``derive_rng`` streams, same IEEE-754 operation order; see
  ``repro.kernels.ops``).  The speedup is a same-process wall-time ratio,
  so it is meaningful on shared hardware and gated in the BENCH
  trajectory.
* **Scale** — a 10,000-node gossip experiment, far beyond what the
  object engine can touch in CI, completes in seconds on the kernel
  engine (even the quick suite runs it).

The 10k population uses an even per-node split rather than the Dirichlet
sampler: at that node count a Dirichlet split would need a multi-hundred-
thousand-sample corpus just to satisfy its minimum-partition constraint,
and partition skew is irrelevant to a throughput measurement.
"""

from __future__ import annotations

import time

import numpy as np

from harness import har_problem
from repro.bench import Experiment, higher_is_better, info, lower_is_better
from repro.ml.datasets import make_iot_activity, train_test_split
from repro.ml.gossip import GossipConfig, GossipTrainer
from repro.ml.models import SoftmaxRegressionModel
from reporting import format_table, report

COMPARE_NODES = 256
COMPARE_SEED = 11
SCALE_NODES = 10_000
SCALE_PER_NODE = 12


def factory():
    return SoftmaxRegressionModel(6, 5, l2=0.01)


def _compare_config(engine: str) -> GossipConfig:
    return GossipConfig(engine=engine, batch_size=8)


def scale_problem(nodes: int = SCALE_NODES, per_node: int = SCALE_PER_NODE):
    """A seeded even split for the large-population throughput run."""
    rng = np.random.default_rng(424242)
    data = make_iot_activity(nodes * per_node + 2000, rng)
    train, test = train_test_split(
        data, 2000 / (nodes * per_node + 2000), rng)
    split_cls = type(train)
    parts = [
        split_cls(features=train.features[i * per_node:(i + 1) * per_node],
                  targets=train.targets[i * per_node:(i + 1) * per_node])
        for i in range(nodes)
    ]
    return parts, test


def run_bench(quick: bool = False) -> dict:
    duration = 600.0 if quick else 1200.0
    eval_every = 300.0

    # -- engine comparison at 256 nodes, identical seeds --------------------
    parts, test = har_problem(COMPARE_NODES, 6144)
    runs = {}
    for engine in ("objects", "kernel"):
        start = time.perf_counter()
        trainer = GossipTrainer(factory, parts, test,
                                _compare_config(engine), seed=COMPARE_SEED)
        outcome = trainer.run(duration, eval_interval_s=eval_every)
        runs[engine] = (time.perf_counter() - start, trainer, outcome)

    obj_wall, obj_trainer, obj = runs["objects"]
    ker_wall, ker_trainer, ker = runs["kernel"]
    speedup = obj_wall / ker_wall
    identical = (
        obj.history == ker.history
        and np.array_equal(obj_trainer.final_params(),
                           ker_trainer.final_params())
        and obj.events_processed == ker.events_processed
        and obj.bytes_delivered == ker.bytes_delivered
    )

    # -- 10k-node throughput run on the kernel engine -----------------------
    scale_parts, scale_test = scale_problem()
    scale_duration = 120.0 if quick else 600.0
    start = time.perf_counter()
    scale_trainer = GossipTrainer(
        factory, scale_parts, scale_test,
        GossipConfig(engine="kernel", batch_size=4), seed=3)
    scale = scale_trainer.run(scale_duration, eval_interval_s=60.0)
    scale_wall = time.perf_counter() - start
    events_per_s = scale.events_processed / scale_wall

    rows = [
        ["objects", f"{obj_wall:.3f}", f"{obj.final_mean_score:.3f}",
         f"{obj.events_processed:,}"],
        ["kernel", f"{ker_wall:.3f}", f"{ker.final_mean_score:.3f}",
         f"{ker.events_processed:,}"],
    ]
    lines = format_table(
        ["engine", "wall s", "final acc", "events"], rows)
    lines += [
        "",
        f"speedup {speedup:.1f}x at {COMPARE_NODES} nodes, "
        f"byte-identical: {identical}",
        f"{SCALE_NODES:,} nodes x {scale_duration:.0f}s sim: "
        f"{scale_wall:.1f}s wall, {scale.events_processed:,} events "
        f"({events_per_s:,.0f} events/s), "
        f"final acc {scale.final_mean_score:.3f}",
    ]

    metrics = {
        # A wall-time *ratio* on the same process/hardware: stable enough
        # to gate, with slack for noisy CI runners.
        "kernel_speedup_256": higher_is_better(speedup, unit="x",
                                               threshold_pct=30.0),
        "kernel_identical_histories": higher_is_better(
            float(identical), threshold_pct=0.0),
        "scale_10k_final_score": higher_is_better(scale.final_mean_score),
        "scale_10k_events": lower_is_better(scale.events_processed,
                                            unit="events"),
        "objects_wall_s": info(obj_wall, unit="s"),
        "kernel_wall_s": info(ker_wall, unit="s"),
        "scale_10k_wall_s": info(scale_wall, unit="s"),
        "scale_10k_events_per_s": info(events_per_s, unit="events/s"),
    }
    return {"metrics": metrics, "lines": lines, "speedup": speedup,
            "identical": identical, "scale": scale}


EXPERIMENT = Experiment("E20", "vectorized gossip kernels", run_bench)


def test_e20_kernel_scale(benchmark):
    payload = benchmark.pedantic(run_bench, kwargs={"quick": True},
                                 rounds=1, iterations=1)
    report("E20", "kernel engine speedup and 10k-node scale",
           payload["lines"])

    # The tentpole claims: an order of magnitude at 256 nodes, while
    # staying byte-identical to the object engine.
    assert payload["speedup"] >= 10.0
    assert payload["identical"]
    # The 10k-node run actually simulated something substantial.
    scale = payload["scale"]
    assert scale.events_processed > 100_000
    assert scale.final_mean_score > 0.3
