"""E11 (Section IV-D): DP noise shrinks membership-inference leakage.

The experiment the paper's privacy discussion implies: train the same
memorization-prone model with and without DP-SGD at a sweep of epsilon
targets, attack each with loss-threshold membership inference, and chart
attack advantage (the leak) against model accuracy (the cost).
"""

from __future__ import annotations

import numpy as np

from repro.bench import Experiment, higher_is_better, info
from repro.ml.datasets import make_binary_classification
from repro.ml.models import MLPClassifier
from repro.privacy.attacks import membership_inference_attack
from repro.privacy.dpsgd import (
    DPSGDConfig,
    noise_multiplier_for_epsilon,
    train_dpsgd,
)
from reporting import format_table, report

MEMBERS = 60
STEPS = 300
BATCH = 12
EPSILONS = [8.0, 2.0, 0.5]


def setup_data():
    rng = np.random.default_rng(777)
    data = make_binary_classification(4 * MEMBERS, 8, rng, noise=4.0)
    members = data.subset(np.arange(0, MEMBERS))
    nonmembers = data.subset(np.arange(MEMBERS, 2 * MEMBERS))
    test = data.subset(np.arange(2 * MEMBERS, 4 * MEMBERS))
    return members, nonmembers, test


def fresh_model():
    return MLPClassifier(8, 64, 2, init_rng=np.random.default_rng(1))


def attack(model, members, nonmembers):
    return membership_inference_attack(
        model, members.features, members.targets.astype(int),
        nonmembers.features, nonmembers.targets.astype(int),
    )


def run_bench(quick: bool = False) -> dict:
    """The epsilon sweep (deterministic: every RNG is seeded)."""
    steps = 120 if quick else STEPS
    base_steps = 800 if quick else 2000
    epsilons = [8.0, 0.5] if quick else EPSILONS

    members, nonmembers, test = setup_data()
    rows = []

    # The no-DP, heavily-overfit control arm.
    baseline = fresh_model()
    baseline.train_steps(members.features, members.targets.astype(int),
                         base_steps, 0.3, MEMBERS, np.random.default_rng(2))
    base_attack = attack(baseline, members, nonmembers)
    base_acc = baseline.score(test.features, test.targets.astype(int))
    rows.append(["inf (no DP)", f"{base_attack.advantage:.3f}",
                 f"{base_attack.auc:.3f}", f"{base_acc:.3f}"])

    advantages = [base_attack.advantage]
    dp_accuracies = []
    for epsilon in epsilons:
        noise = noise_multiplier_for_epsilon(epsilon, BATCH / MEMBERS,
                                             steps)
        model = fresh_model()
        result = train_dpsgd(
            model, members.features, members.targets.astype(int),
            DPSGDConfig(clip_norm=1.0, noise_multiplier=noise,
                        learning_rate=0.3, batch_size=BATCH, steps=steps),
            np.random.default_rng(3),
        )
        dp_attack = attack(model, members, nonmembers)
        accuracy = model.score(test.features, test.targets.astype(int))
        advantages.append(dp_attack.advantage)
        dp_accuracies.append(accuracy)
        rows.append([f"{result.epsilon:.2f}",
                     f"{dp_attack.advantage:.3f}",
                     f"{dp_attack.auc:.3f}", f"{accuracy:.3f}"])

    lines = format_table(
        ["epsilon", "attack advantage", "attack AUC", "test accuracy"],
        rows,
    )
    metrics = {
        "attack_advantage_nodp": higher_is_better(advantages[0],
                                                  threshold_pct=20.0),
        "dp_halves_leak": higher_is_better(
            1.0 if all(adv < advantages[0] / 2 for adv in advantages[1:])
            else 0.0,
            threshold_pct=1.0),
        "max_dp_advantage": info(max(advantages[1:])),
        "baseline_accuracy": info(base_acc),
        "min_dp_accuracy": info(min(dp_accuracies)),
    }
    return {"metrics": metrics, "lines": lines, "advantages": advantages}


EXPERIMENT = Experiment("E11", "DP vs membership inference", run_bench)


def test_e11_epsilon_sweep(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E11", "membership-inference advantage vs epsilon",
           payload["lines"])

    advantages = payload["advantages"]
    # The non-private model must leak substantially...
    assert advantages[0] > 0.4
    # ...and every DP arm must cut that leak by at least half.
    assert all(adv < advantages[0] / 2 for adv in advantages[1:])
