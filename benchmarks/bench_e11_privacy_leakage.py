"""E11 (Section IV-D): DP noise shrinks membership-inference leakage.

The experiment the paper's privacy discussion implies: train the same
memorization-prone model with and without DP-SGD at a sweep of epsilon
targets, attack each with loss-threshold membership inference, and chart
attack advantage (the leak) against model accuracy (the cost).
"""

from __future__ import annotations

import numpy as np

from repro.ml.datasets import make_binary_classification
from repro.ml.models import MLPClassifier
from repro.privacy.attacks import membership_inference_attack
from repro.privacy.dpsgd import (
    DPSGDConfig,
    noise_multiplier_for_epsilon,
    train_dpsgd,
)
from reporting import format_table, report

MEMBERS = 60
STEPS = 300
BATCH = 12
EPSILONS = [8.0, 2.0, 0.5]


def setup_data():
    rng = np.random.default_rng(777)
    data = make_binary_classification(4 * MEMBERS, 8, rng, noise=4.0)
    members = data.subset(np.arange(0, MEMBERS))
    nonmembers = data.subset(np.arange(MEMBERS, 2 * MEMBERS))
    test = data.subset(np.arange(2 * MEMBERS, 4 * MEMBERS))
    return members, nonmembers, test


def fresh_model():
    return MLPClassifier(8, 64, 2, init_rng=np.random.default_rng(1))


def attack(model, members, nonmembers):
    return membership_inference_attack(
        model, members.features, members.targets.astype(int),
        nonmembers.features, nonmembers.targets.astype(int),
    )


def test_e11_epsilon_sweep(benchmark):
    members, nonmembers, test = setup_data()
    rows = []

    # The no-DP, heavily-overfit control arm.
    baseline = fresh_model()
    baseline.train_steps(members.features, members.targets.astype(int),
                         2000, 0.3, MEMBERS, np.random.default_rng(2))
    base_attack = attack(baseline, members, nonmembers)
    base_acc = baseline.score(test.features, test.targets.astype(int))
    rows.append(["inf (no DP)", f"{base_attack.advantage:.3f}",
                 f"{base_attack.auc:.3f}", f"{base_acc:.3f}"])

    advantages = [base_attack.advantage]
    for epsilon in EPSILONS:
        noise = noise_multiplier_for_epsilon(epsilon, BATCH / MEMBERS,
                                             STEPS)
        model = fresh_model()
        result = train_dpsgd(
            model, members.features, members.targets.astype(int),
            DPSGDConfig(clip_norm=1.0, noise_multiplier=noise,
                        learning_rate=0.3, batch_size=BATCH, steps=STEPS),
            np.random.default_rng(3),
        )
        dp_attack = attack(model, members, nonmembers)
        accuracy = model.score(test.features, test.targets.astype(int))
        advantages.append(dp_attack.advantage)
        rows.append([f"{result.epsilon:.2f}",
                     f"{dp_attack.advantage:.3f}",
                     f"{dp_attack.auc:.3f}", f"{accuracy:.3f}"])

    def one_dp_run():
        model = fresh_model()
        return train_dpsgd(
            model, members.features, members.targets.astype(int),
            DPSGDConfig(noise_multiplier=2.0, steps=50, batch_size=BATCH),
            np.random.default_rng(4),
        )

    benchmark.pedantic(one_dp_run, rounds=2, iterations=1)

    report("E11", "membership-inference advantage vs epsilon",
           format_table(
               ["epsilon", "attack advantage", "attack AUC",
                "test accuracy"],
               rows,
           ))

    # The non-private model must leak substantially...
    assert advantages[0] > 0.4
    # ...and every DP arm must cut that leak by at least half.
    assert all(adv < advantages[0] / 2 for adv in advantages[1:])
