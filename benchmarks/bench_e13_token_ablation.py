"""E13 (ablation, Section III-A): token standards vs native transfers.

The paper selects ERC-20 for rewards and ERC-721 for data deeds.  Both cost
gas over a plain native transfer.  This ablation profiles every operation so
a deployment can judge the price of the richer semantics (allowances,
provenance, per-token metadata).
"""

from __future__ import annotations

import numpy as np

from repro.bench import Experiment, higher_is_better, info, lower_is_better
from repro.chain.blockchain import Blockchain, Wallet
from repro.chain.consensus import ProofOfAuthority
from reporting import format_table, report


def build_chain():
    rng = np.random.default_rng(13)
    chain = Blockchain(ProofOfAuthority.with_generated_validators(1, rng))
    alice = Wallet.generate(chain, rng, "alice")
    bob = Wallet.generate(chain, rng, "bob")
    chain.state.credit(alice.address, 10**12)
    chain.state.credit(bob.address, 10**12)
    return chain, alice, bob


def run_bench(quick: bool = False) -> dict:
    """Profile every token operation (gas is fully deterministic)."""
    chain, alice, bob = build_chain()
    rows = []

    # Native transfer baseline.
    tx_hash = alice.transfer(bob.address, 1000)
    chain.mine_block()
    native_gas = chain.receipt_for(tx_hash).gas_used
    rows.append(["native transfer", f"{native_gas:,}", "1.0x"])

    gas: dict[str, int] = {"native_transfer": native_gas}

    # ERC-20 operations.
    erc20 = alice.deploy_and_mine("erc20", initial_supply=10**9)
    r = alice.call_and_mine(erc20, "transfer", recipient=bob.address,
                            amount=1000)
    gas["erc20_transfer"] = r.gas_used
    rows.append(["erc20 transfer", f"{r.gas_used:,}",
                 f"{r.gas_used / native_gas:.1f}x"])
    r = alice.call_and_mine(erc20, "approve", spender=bob.address,
                            amount=5000)
    gas["erc20_approve"] = r.gas_used
    rows.append(["erc20 approve", f"{r.gas_used:,}",
                 f"{r.gas_used / native_gas:.1f}x"])
    r = bob.call_and_mine(erc20, "transfer_from", owner=alice.address,
                          recipient=bob.address, amount=1000)
    gas["erc20_transfer_from"] = r.gas_used
    rows.append(["erc20 transfer_from", f"{r.gas_used:,}",
                 f"{r.gas_used / native_gas:.1f}x"])
    r = alice.call_and_mine(erc20, "mint", recipient=bob.address,
                            amount=1000)
    gas["erc20_mint"] = r.gas_used
    rows.append(["erc20 mint", f"{r.gas_used:,}",
                 f"{r.gas_used / native_gas:.1f}x"])

    # ERC-721 operations (data deeds).
    erc721 = alice.deploy_and_mine("erc721")
    r = alice.call_and_mine(erc721, "mint", recipient=alice.address,
                            uri="pds2://dataset/x", content_hash="ab" * 32)
    gas["erc721_mint"] = r.gas_used
    rows.append(["erc721 mint (deed)", f"{r.gas_used:,}",
                 f"{r.gas_used / native_gas:.1f}x"])
    r = alice.call_and_mine(erc721, "transfer_from", sender=alice.address,
                            recipient=bob.address, token_id=0)
    gas["erc721_transfer"] = r.gas_used
    rows.append(["erc721 transfer", f"{r.gas_used:,}",
                 f"{r.gas_used / native_gas:.1f}x"])

    lines = format_table(["operation", "gas", "vs native"], rows)
    bounded = native_gas < gas["erc20_transfer"] < 20 * native_gas
    metrics = {
        "native_transfer_gas": lower_is_better(native_gas, unit="gas"),
        "erc20_transfer_gas": lower_is_better(gas["erc20_transfer"],
                                              unit="gas"),
        "erc721_mint_gas": lower_is_better(gas["erc721_mint"], unit="gas"),
        "erc20_overhead": info(gas["erc20_transfer"] / native_gas,
                               unit="x"),
        "bounded_overhead": higher_is_better(1.0 if bounded else 0.0,
                                             threshold_pct=1.0),
    }
    return {"metrics": metrics, "lines": lines, "gas": gas}


EXPERIMENT = Experiment("E13", "ERC-20/721 gas ablation", run_bench)


def test_e13_token_gas_profile(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E13", "token operation gas profile", payload["lines"])

    gas = payload["gas"]
    # The richer semantics cost a bounded constant factor, not magnitudes.
    assert gas["native_transfer"] < gas["erc20_transfer"] \
        < 20 * gas["native_transfer"]
