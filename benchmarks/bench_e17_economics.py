"""E17 (extension, Section VI): executor economic viability.

"It is essential to evaluate the extent to which the proposed solution is
economically viable and whether the ... incentives provided to individual
players are sufficient."  Using the TEE cost model and an executor cost
structure (amortized hardware + electricity + per-job overhead), this
experiment computes, per workload class: executor profit at the default 10%
infra share, the break-even share, and revenue competitiveness versus
renting the same seconds to a cloud.
"""

from __future__ import annotations


from repro.bench import Experiment, higher_is_better, info, lower_is_better
from repro.rewards.economics import (
    ExecutorCostModel,
    ViabilityAnalysis,
)
from repro.tee.cost_model import mlp_profile
from reporting import format_table, report

#: Workload classes: (name, profile, reward pool in tokens).
WORKLOADS = [
    ("small linear", mlp_profile(batch=256, features=16, hidden=[1],
                                 outputs=1), 100_000),
    ("medium MLP", mlp_profile(batch=2048, features=64, hidden=[128],
                               outputs=8), 1_000_000),
    ("large MLP", mlp_profile(batch=16384, features=128,
                              hidden=[512, 512], outputs=16), 10_000_000),
]

TOKEN_VALUE = 1e-5  # currency units per reward token
EXECUTORS = 4


def run_bench(quick: bool = False) -> dict:
    """Every workload class through the cost model (deterministic)."""
    costs = ExecutorCostModel()
    rows = []
    analyses = []
    for name, profile, pool in WORKLOADS:
        analysis = ViabilityAnalysis(
            workload=profile, reward_pool=pool, infra_share=0.10,
            num_executors=EXECUTORS, executor_costs=costs,
            token_value=TOKEN_VALUE,
        )
        analyses.append(analysis)
        rows.append([
            name,
            f"{analysis.job_seconds:.3f}",
            f"{analysis.revenue_per_executor:.4f}",
            f"{analysis.cost_per_executor:.4f}",
            f"{analysis.profit_per_executor:+.4f}",
            f"{analysis.break_even_infra_share():.4f}",
            f"{analysis.competitiveness_vs_cloud():,.0f}x",
        ])

    lines = format_table(
        ["workload", "tee s", "revenue", "cost", "profit",
         "break-even share", "vs cloud"],
        rows,
    )
    lines += [
        "",
        f"assumptions: {EXECUTORS} executors, 10% infra share, token value "
        f"{TOKEN_VALUE} units,",
        "consumer-grade TEE machine (1200 units / 3 y, 80 W @ 0.25/kWh).",
    ]
    shares = [a.break_even_infra_share() for a in analyses]
    metrics = {
        "viable_classes": higher_is_better(
            sum(1 for a in analyses if a.is_viable), threshold_pct=1.0),
        "break_even_share_large": lower_is_better(shares[2]),
        "profit_medium": higher_is_better(
            analyses[1].profit_per_executor, unit="units"),
        "competitiveness_medium": info(
            analyses[1].competitiveness_vs_cloud(), unit="x"),
    }
    return {"metrics": metrics, "lines": lines, "analyses": analyses,
            "shares": shares}


EXPERIMENT = Experiment("E17", "executor economics", run_bench)


def test_e17_executor_viability(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E17", "executor economics per workload class",
           payload["lines"])

    # At these pools every class is viable with margin...
    for analysis in payload["analyses"]:
        assert analysis.is_viable
        assert analysis.break_even_infra_share() < 0.10
    # ...and larger workloads need a larger absolute pool but amortize the
    # executor's fixed job cost better (lower break-even share).
    shares = payload["shares"]
    assert shares[2] < shares[0]
