"""Shared fixtures for the experiment benchmarks."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Make the sibling harness/reporting modules importable regardless of
# rootdir.
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20260705)


@pytest.fixture(scope="session")
def har_problem():
    """A shared HAR dataset split for the ML experiments."""
    from harness import har_problem as build

    return build()
