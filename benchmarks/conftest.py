"""Shared fixtures for the experiment benchmarks."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Make the sibling reporting module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20260705)


@pytest.fixture(scope="session")
def har_problem():
    """A shared HAR dataset split for the ML experiments."""
    from repro.ml.datasets import (
        make_iot_activity,
        split_dirichlet,
        train_test_split,
    )

    rng = np.random.default_rng(424242)
    data = make_iot_activity(3000, rng)
    train, test = train_test_split(data, 0.25, rng)
    parts = split_dirichlet(train, 24, alpha=0.5, rng=rng, min_samples=15)
    return parts, test
