"""Result reporting for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md and records its
table under ``benchmarks/results/<experiment>.txt`` (stdout is captured by
pytest, files are not).  EXPERIMENTS.md summarizes these tables against the
paper's claims.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(experiment_id: str, title: str, lines: list[str]) -> None:
    """Write one experiment's result table to disk (and echo to stdout)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    header = f"{experiment_id}: {title}"
    body = "\n".join([header, "=" * len(header), *lines, ""])
    (RESULTS_DIR / f"{experiment_id.lower()}.txt").write_text(body)
    print("\n" + body)


def format_table(headers: list[str], rows: list[list], widths=None) -> list[str]:
    """Render a fixed-width text table."""
    if widths is None:
        widths = []
        for index, header in enumerate(headers):
            cells = [str(row[index]) for row in rows]
            widths.append(max(len(header), *(len(c) for c in cells))
                          if cells else len(header))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(cell).rjust(w) for cell, w in zip(row, widths))
        )
    return lines
