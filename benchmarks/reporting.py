"""Result reporting for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md and records its
table under ``benchmarks/results/<experiment>.txt`` (stdout is captured by
pytest, files are not).  EXPERIMENTS.md summarizes these tables against the
paper's claims.

Each report also captures the telemetry accumulated since the last report:
a ``<experiment>.metrics.json`` sidecar with the full registry snapshot,
plus a short "telemetry" section appended to the text table so the raw
counters travel with the measured numbers they explain.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Registry totals surfaced inline in the .txt summary (the full snapshot
#: lives in the JSON sidecar).
_SUMMARY_METRICS = (
    "pds2_chain_blocks_mined_total",
    "pds2_chain_gas_total",
    "pds2_vm_txs_applied_total",
    "pds2_crypto_sign_total",
    "pds2_crypto_verify_total",
    "pds2_tee_enclave_launches_total",
    "pds2_tee_attestations_total",
    "pds2_gossip_merges_total",
    "pds2_net_messages_total",
    "pds2_storage_ops_total",
)


def _telemetry_section(snapshot: dict) -> list[str]:
    """Condense a registry snapshot into the inline summary lines."""
    totals: dict[str, float] = {}
    for metric in snapshot.get("metrics", []):
        name = metric.get("name")
        if name not in _SUMMARY_METRICS:
            continue
        if metric.get("type") == "histogram":
            total = sum(sample.get("count", 0)
                        for sample in metric.get("samples", []))
        else:
            total = sum(sample.get("value", 0)
                        for sample in metric.get("samples", []))
        if total:
            totals[name] = total
    if not totals:
        return []
    lines = ["", "telemetry (since previous report)"]
    for name in _SUMMARY_METRICS:
        if name in totals:
            value = totals[name]
            rendered = (f"{int(value):,}" if float(value).is_integer()
                        else f"{value:,.3f}")
            lines.append(f"  {name:<36} {rendered:>16}")
    return lines


def report(experiment_id: str, title: str, lines: list[str]) -> None:
    """Write one experiment's result table to disk (and echo to stdout).

    Also snapshots — and then resets — the process telemetry registry, so
    each experiment's sidecar reflects only its own run even when pytest
    executes several benchmarks in one process.
    """
    from repro import telemetry
    from repro.bench.schema import provenance

    RESULTS_DIR.mkdir(exist_ok=True)
    snapshot = telemetry.snapshot(telemetry.REGISTRY)
    telemetry.reset()
    snapshot["provenance"] = provenance()
    stem = experiment_id.lower()
    (RESULTS_DIR / f"{stem}.metrics.json").write_text(
        json.dumps(snapshot, indent=2) + "\n"
    )
    header = f"{experiment_id}: {title}"
    body = "\n".join([header, "=" * len(header), *lines,
                      *_telemetry_section(snapshot), ""])
    (RESULTS_DIR / f"{stem}.txt").write_text(body)
    print("\n" + body)


def format_table(headers: list[str], rows: list[list], widths=None) -> list[str]:
    """Render a fixed-width text table."""
    if widths is None:
        widths = []
        for index, header in enumerate(headers):
            cells = [str(row[index]) for row in rows]
            widths.append(max(len(header), *(len(c) for c in cells))
                          if cells else len(header))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(cell).rjust(w) for cell, w in zip(row, widths))
        )
    return lines
