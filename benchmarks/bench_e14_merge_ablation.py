"""E14 (ablation, Section III-C): gossip merge-strategy comparison.

The gossip-learning literature the paper cites weights merges by model age;
FedAvg weights by sample count.  This ablation runs the same gossip
schedule under all three merge rules on both IID and pathologically
non-IID partitions, reporting final mean accuracy — the evidence for the
DESIGN.md default (age weighting).
"""

from __future__ import annotations

import numpy as np

from repro.ml.datasets import (
    make_iot_activity,
    split_by_label,
    split_iid,
    train_test_split,
)
from repro.ml.gossip import GossipConfig, GossipTrainer
from repro.ml.merge import MergeStrategy
from repro.ml.models import SoftmaxRegressionModel
from reporting import format_table, report

DURATION_S = 900.0
NODES = 20


def factory():
    return SoftmaxRegressionModel(6, 5)


def run(parts, test, strategy: MergeStrategy, seed: int) -> float:
    trainer = GossipTrainer(
        factory, parts, test,
        GossipConfig(wake_interval_s=10, local_steps=4, learning_rate=0.3,
                     merge_strategy=strategy),
        seed=seed,
    )
    return trainer.run(DURATION_S, DURATION_S).final_mean_score


def test_e14_merge_strategy_ablation(benchmark):
    rng = np.random.default_rng(140)
    data = make_iot_activity(3000, rng)
    train, test = train_test_split(data, 0.25, rng)
    iid_parts = split_iid(train, NODES, rng)
    shard_parts = split_by_label(train, NODES, 2, rng)

    rows = []
    results: dict[tuple[str, str], float] = {}
    for strategy in MergeStrategy:
        iid_score = run(iid_parts, test, strategy, seed=1)
        shard_score = run(shard_parts, test, strategy, seed=1)
        results[(strategy.value, "iid")] = iid_score
        results[(strategy.value, "shard")] = shard_score
        rows.append([strategy.value, f"{iid_score:.3f}",
                     f"{shard_score:.3f}"])

    benchmark.pedantic(
        lambda: run(iid_parts, test, MergeStrategy.AGE_WEIGHTED, seed=2),
        rounds=2, iterations=1,
    )

    report("E14", "gossip merge-strategy ablation",
           format_table(
               ["merge strategy", "IID accuracy", "2-label-shard accuracy"],
               rows,
           ))

    # Every strategy must learn on IID data.
    for strategy in MergeStrategy:
        assert results[(strategy.value, "iid")] > 0.6
    # Non-IID sharding is harder for every strategy.
    for strategy in MergeStrategy:
        assert results[(strategy.value, "shard")] <= \
            results[(strategy.value, "iid")] + 0.05
