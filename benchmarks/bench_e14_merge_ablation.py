"""E14 (ablation, Section III-C): gossip merge-strategy comparison.

The gossip-learning literature the paper cites weights merges by model age;
FedAvg weights by sample count.  This ablation runs the same gossip
schedule under all three merge rules on both IID and pathologically
non-IID partitions, reporting final mean accuracy — the evidence for the
DESIGN.md default (age weighting).
"""

from __future__ import annotations

import numpy as np

from repro.bench import Experiment, higher_is_better, info
from repro.ml.datasets import (
    make_iot_activity,
    split_by_label,
    split_iid,
    train_test_split,
)
from repro.ml.gossip import GossipConfig, GossipTrainer
from repro.ml.merge import MergeStrategy
from repro.ml.models import SoftmaxRegressionModel
from reporting import format_table, report

DURATION_S = 900.0
NODES = 20


def factory():
    return SoftmaxRegressionModel(6, 5)


def run(parts, test, strategy: MergeStrategy, seed: int,
        duration: float = DURATION_S) -> float:
    trainer = GossipTrainer(
        factory, parts, test,
        GossipConfig(wake_interval_s=10, local_steps=4, learning_rate=0.3,
                     merge_strategy=strategy),
        seed=seed,
    )
    return trainer.run(duration, duration).final_mean_score


def run_bench(quick: bool = False) -> dict:
    """All merge rules on IID and sharded splits (seeded, deterministic)."""
    duration = 450.0 if quick else DURATION_S
    nodes = 10 if quick else NODES
    rng = np.random.default_rng(140)
    data = make_iot_activity(1500 if quick else 3000, rng)
    train, test = train_test_split(data, 0.25, rng)
    iid_parts = split_iid(train, nodes, rng)
    shard_parts = split_by_label(train, nodes, 2, rng)

    rows = []
    results: dict[tuple[str, str], float] = {}
    for strategy in MergeStrategy:
        iid_score = run(iid_parts, test, strategy, seed=1,
                        duration=duration)
        shard_score = run(shard_parts, test, strategy, seed=1,
                          duration=duration)
        results[(strategy.value, "iid")] = iid_score
        results[(strategy.value, "shard")] = shard_score
        rows.append([strategy.value, f"{iid_score:.3f}",
                     f"{shard_score:.3f}"])

    lines = format_table(
        ["merge strategy", "IID accuracy", "2-label-shard accuracy"],
        rows,
    )
    iid_scores = [results[(s.value, "iid")] for s in MergeStrategy]
    metrics = {
        "age_weighted_iid_score": higher_is_better(
            results[(MergeStrategy.AGE_WEIGHTED.value, "iid")]),
        "min_iid_score": higher_is_better(min(iid_scores),
                                          threshold_pct=10.0),
        "age_weighted_shard_score": info(
            results[(MergeStrategy.AGE_WEIGHTED.value, "shard")]),
    }
    return {"metrics": metrics, "lines": lines, "results": results}


EXPERIMENT = Experiment("E14", "gossip merge-strategy ablation", run_bench)


def test_e14_merge_strategy_ablation(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E14", "gossip merge-strategy ablation", payload["lines"])

    results = payload["results"]
    # Every strategy must learn on IID data.
    for strategy in MergeStrategy:
        assert results[(strategy.value, "iid")] > 0.6
    # Non-IID sharding is harder for every strategy.
    for strategy in MergeStrategy:
        assert results[(strategy.value, "shard")] <= \
            results[(strategy.value, "iid")] + 0.05
