"""E16 (extension, Section II-E): the result quorum under executor faults.

"No way to tamper with the results without being detected": this experiment
injects every executor misbehavior the protocol anticipates — wrong results,
self-dealing payout weights, silence — across honest/adversarial mixes, and
records what the workload contract did in each case.  The invariant: funds
move only when an honest-weight quorum agrees, and never to an attacker's
designated beneficiary.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Experiment, higher_is_better, info, lower_is_better
from repro.core import Marketplace, ModelSpec, TrainingSpec, WorkloadSpec
from repro.core.adversary import ExecutorBehavior, run_with_adversaries
from repro.ml.datasets import (
    make_iot_activity,
    split_dirichlet,
    train_test_split,
)
from repro.storage.semantic import ConceptRequirement, SemanticAnnotation
from reporting import format_table, report

B = ExecutorBehavior

SCENARIOS = [
    ("all honest", [B.HONEST, B.HONEST, B.HONEST], True),
    ("1 liar / 3", [B.HONEST, B.HONEST, B.WRONG_RESULT], True),
    ("1 self-dealer / 3", [B.HONEST, B.HONEST, B.SELF_DEALING], True),
    ("1 lazy / 3", [B.HONEST, B.HONEST, B.SILENT], True),
    ("2 liars / 3", [B.HONEST, B.WRONG_RESULT, B.WRONG_RESULT], False),
    ("split 3 ways", [B.HONEST, B.WRONG_RESULT, B.SELF_DEALING], False),
    ("all lazy", [B.SILENT, B.SILENT, B.SILENT], False),
]


def build_market():
    rng = np.random.default_rng(160)
    data = make_iot_activity(800, rng)
    train, validation = train_test_split(data, 0.25, rng)
    parts = split_dirichlet(train, 4, 1.0, rng, min_samples=10)
    market = Marketplace(seed=16)
    for index, part in enumerate(parts):
        market.add_provider(f"u{index}", part,
                            SemanticAnnotation("heart_rate", {}))
    consumer = market.add_consumer("c", validation=validation)
    for index in range(3):
        market.add_executor(f"e{index}")
    return market, consumer


def make_spec(workload_id: str) -> WorkloadSpec:
    return WorkloadSpec(
        workload_id=workload_id,
        requirement=ConceptRequirement("physiological"),
        model=ModelSpec(family="softmax", num_features=6, num_classes=5),
        training=TrainingSpec(steps=30, learning_rate=0.3),
        reward_pool=100_000, min_providers=2, min_samples=50,
        required_confirmations=2,
    )


def expected_completion(name: str, should_complete: bool) -> bool:
    # The documented limit: a colluding majority CAN confirm a wrong
    # result — PDS2's quorum is an honest-majority mechanism, exactly
    # like the 2-of-3 trust assumption the paper quotes for Falcon.
    return True if name == "2 liars / 3" else should_complete


def run_bench(quick: bool = False) -> dict:
    """Every adversarial scenario against one market (deterministic)."""
    market, consumer = build_market()
    rows = []
    outcomes = []
    matches = 0
    crony_total = 0
    paid_total = 0
    for index, (name, behaviors, should_complete) in enumerate(SCENARIOS):
        outcome = run_with_adversaries(
            market, consumer, make_spec(f"e16-{index}"), behaviors,
        )
        outcomes.append((name, should_complete, outcome))
        if outcome.completed == expected_completion(name, should_complete):
            matches += 1
        crony_total += outcome.crony_payout
        paid_total += outcome.paid_total
        rows.append([
            name,
            outcome.final_state,
            f"{outcome.paid_total:,}",
            outcome.crony_payout,
        ])

    lines = format_table(
        ["scenario", "final state", "paid", "crony payout"], rows,
    )
    lines += [
        "",
        "invariants: no payout without a quorum; self-dealing weights never",
        "confirmed; a colluding majority is the documented trust boundary",
        "(the same 2-of-3 honesty assumption the paper cites for Falcon).",
    ]
    metrics = {
        "scenarios_as_expected": higher_is_better(matches,
                                                  threshold_pct=1.0),
        "crony_payout_total": lower_is_better(crony_total, unit="tokens",
                                              threshold_pct=1.0),
        "paid_total": info(paid_total, unit="tokens"),
        "scenarios": info(len(SCENARIOS)),
    }
    return {"metrics": metrics, "lines": lines, "outcomes": outcomes,
            "matches": matches}


EXPERIMENT = Experiment(
    "E16", "executor fault injection vs quorum", run_bench,
)


def test_e16_quorum_under_faults(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E16", "executor fault injection vs the result quorum",
           payload["lines"])

    for name, should_complete, outcome in payload["outcomes"]:
        assert outcome.completed == expected_completion(name,
                                                        should_complete)
        assert outcome.crony_payout == 0
    assert payload["matches"] == len(SCENARIOS)
