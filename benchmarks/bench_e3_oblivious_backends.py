"""E3 (Section III-B): measured overhead of the oblivious-computation options.

The paper's central technology argument: homomorphic encryption is
"impractical", SMC is communication-bound, TEEs add only a small overhead.
This experiment *measures* the claim on linear scoring over n samples with
d features:

* plain — numpy matrix product (the no-privacy floor);
* TEE — the same computation run through the enclave interface, plus the
  calibrated attestation/transition costs from the cost model;
* SMC — the real Beaver-triple engine (3 parties), wall time plus the
  modeled network time for its logged traffic;
* HE — real Paillier encrypted dot products at benchmark key size.

Reported: wall seconds and slowdown versus plain.  The paper's ordering
(plain < TEE << SMC < HE) must hold.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import Experiment, higher_is_better, info
from repro.crypto.paillier import encrypted_dot, generate_keypair
from repro.crypto.smc import SMCEngine
from repro.tee.cost_model import CostModel, NetworkProfile
from repro.tee.enclave import EnclaveCode, TEEPlatform
from reporting import format_table, report

SAMPLES = 200
FEATURES = 16
PAILLIER_BITS = 384


def scoring_entry(inputs, weights=None):
    features = inputs["features"]
    return (features @ np.asarray(weights)).tolist()


def run_plain(features, weights) -> float:
    start = time.perf_counter()
    _ = features @ weights
    return time.perf_counter() - start


def run_tee(features, weights, rng, cost_model) -> float:
    platform = TEEPlatform("bench", rng)
    enclave = platform.launch(
        EnclaveCode("score", "1", scoring_entry)
    )
    start = time.perf_counter()
    enclave.provision_plain("features", features)
    enclave.run(weights=weights.tolist())
    enclave.extract_output()
    measured = time.perf_counter() - start
    # Add the hardware costs the simulation cannot produce: attestation
    # and the slowdown factor on the compute itself.
    return (measured * cost_model.tee_slowdown
            + cost_model.tee_attestation_s
            + enclave.call_transitions * cost_model.tee_transition_s)


def run_smc(features, weights, rng, network: NetworkProfile) -> float:
    engine = SMCEngine(parties=3, rng=rng)
    start = time.perf_counter()
    results = []
    for row in features:
        shared = engine.share_vector(row)
        results.append(engine.reveal(engine.dot_plain(shared, weights)))
    compute = time.perf_counter() - start
    # Communication: every reveal is one round of the logged traffic.
    network_time = (engine.log.rounds * network.latency_s
                    + network.transfer_time(engine.log.bytes_sent))
    return compute + network_time


def run_he(features, weights, rng) -> float:
    keypair = generate_keypair(PAILLIER_BITS, rng)
    codec = keypair.codec
    encoded_weights = [codec.encode(float(w)) for w in weights]
    start = time.perf_counter()
    for row in features:
        ciphers = keypair.public_key.encrypt_vector(row, rng, codec)
        result = encrypted_dot(ciphers, encoded_weights)
        codec.decode_product(keypair.private_key.decrypt(result))
    return time.perf_counter() - start


def run_bench(quick: bool = False) -> dict:
    """Measure all four backends on one seeded scoring workload."""
    rng = np.random.default_rng(20260705)
    samples = 50 if quick else SAMPLES
    he_rows = 10 if quick else 40
    features = rng.normal(size=(samples, FEATURES))
    weights = rng.normal(size=FEATURES)
    cost_model = CostModel()
    network = NetworkProfile()

    plain_s = max(run_plain(features, weights), 1e-6)
    tee_s = run_tee(features, weights, rng, cost_model)
    smc_s = run_smc(features, weights, rng, network)
    he_s = run_he(features[:he_rows], weights, rng) * (samples / he_rows)

    rows = [
        ["plain", f"{plain_s:.5f}", "1x"],
        ["tee", f"{tee_s:.5f}", f"{tee_s / plain_s:,.0f}x"],
        ["smc (3 parties)", f"{smc_s:.5f}", f"{smc_s / plain_s:,.0f}x"],
        ["he (paillier)", f"{he_s:.5f}", f"{he_s / plain_s:,.0f}x"],
    ]
    lines = format_table(["backend", "seconds", "slowdown"], rows)
    # Wall seconds are noisy on shared runners: only the qualitative
    # ordering gates; the raw timings ride along as context.
    metrics = {
        "ordering_holds": higher_is_better(
            1.0 if plain_s < tee_s < smc_s < he_s else 0.0,
            threshold_pct=1.0),
        "plain_s": info(plain_s, unit="s"),
        "tee_s": info(tee_s, unit="s"),
        "smc_s": info(smc_s, unit="s"),
        "he_s": info(he_s, unit="s"),
        "he_over_tee": info(he_s / tee_s, unit="x"),
    }
    return {"metrics": metrics, "lines": lines,
            "seconds": (plain_s, tee_s, smc_s, he_s),
            "samples": samples}


EXPERIMENT = Experiment("E3", "oblivious backends, linear scoring",
                        run_bench)


def test_e3_backend_overheads(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E3", "oblivious backends, linear scoring "
                 f"n={payload['samples']} d={FEATURES}",
           payload["lines"])

    plain_s, tee_s, smc_s, he_s = payload["seconds"]
    # The paper's qualitative ordering must hold.
    assert plain_s < tee_s < smc_s < he_s
    # And HE must be orders of magnitude beyond the TEE.
    assert he_s / tee_s > 10
