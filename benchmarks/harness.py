"""Unified benchmark harness: shared builders + the CLI entry point.

Every ``bench_*.py`` module in this directory declares a module-level
``EXPERIMENT`` (:class:`repro.bench.Experiment`) whose ``run(quick)``
callable performs the measurement and returns its published metrics.
The discovery/execution/trajectory logic lives in :mod:`repro.bench`;
this file is the in-tree entry point —

    PYTHONPATH=src python benchmarks/harness.py --suite quick
    PYTHONPATH=src python -m repro bench --suite quick --compare BENCH_seed.json

— plus the dataset builders the ML experiments share, so the same seeded
problem is used by the pytest fixtures and the harness path alike.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

# Sibling imports (reporting, this module) work no matter the rootdir.
sys.path.insert(0, str(Path(__file__).parent))

#: Cache keyed by (nodes, samples): the split is deterministic, and the
#: quick suite reuses it across E5/E6/E15 within one process.
_HAR_CACHE: dict[tuple[int, int], tuple] = {}


def bench_rng(seed: int = 20260705) -> np.random.Generator:
    """The shared benchmark RNG (same seed as the pytest fixture)."""
    return np.random.default_rng(seed)


def har_problem(nodes: int = 24, samples: int = 3000):
    """A seeded non-IID HAR split shared by the ML experiments.

    The default parameterization matches the session-scoped pytest
    fixture; quick-suite callers shrink both axes for CI latency.
    """
    key = (nodes, samples)
    if key not in _HAR_CACHE:
        from repro.ml.datasets import (
            make_iot_activity,
            split_dirichlet,
            train_test_split,
        )

        rng = np.random.default_rng(424242)
        data = make_iot_activity(samples, rng)
        train, test = train_test_split(data, 0.25, rng)
        parts = split_dirichlet(train, nodes, alpha=0.5, rng=rng,
                                min_samples=15)
        _HAR_CACHE[key] = (parts, test)
    return _HAR_CACHE[key]


def main(argv: list[str] | None = None) -> int:
    """Delegate to ``python -m repro bench`` with the same arguments."""
    from repro.cli import main as cli_main

    return cli_main(["bench", *(sys.argv[1:] if argv is None else argv)])


if __name__ == "__main__":
    sys.exit(main())
