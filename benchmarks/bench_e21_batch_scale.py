"""E21 (extension, Section VI): batch control plane at sweep scale.

The paper's feasibility question becomes operational at scale: can the
marketplace run *thousands* of independent workload sessions, sharded
across worker processes, survive workers dying mid-session, and still
produce exactly the bytes a single uninterrupted process would?  This
experiment submits a large job sweep (a fraction with fault injection
armed) through ``repro.control.batch_execute`` with the chaos hook
SIGKILLing busy workers at intervals, then replays a deterministic sample
of the jobs single-process and compares settlement digests one by one.

Gated metrics are the deterministic ones — settled counts and the
digest-identity fraction (which must be 1.0: byte-identical settlement is
the whole claim).  Throughput and wall time are reported as context.
"""

from __future__ import annotations

import shutil
import tempfile

from repro.bench import Experiment, higher_is_better, info
from repro.control import JobSpec, batch_execute, run_job, submit_batch
from reporting import format_table, report

#: Every FAULT_EVERY-th job runs with faults armed at FAULT_RATE.
FAULT_RATE = 0.4
FAULT_EVERY = 10


def make_specs(jobs: int) -> list[JobSpec]:
    return [
        JobSpec(
            job_id=f"job-{index:05d}",
            seed=2100 + index,
            fault_rate=FAULT_RATE if index % FAULT_EVERY == 0 else 0.0,
        )
        for index in range(jobs)
    ]


def run_bench(quick: bool = False) -> dict:
    # Quick is sized for the CI gate on a small box (workers time-slice a
    # single core there); full is the 10k-session acceptance sweep.
    jobs = 240 if quick else 10_000
    baseline_sample = 40 if quick else 500
    workers = 4
    kill_every = 40 if quick else 1_000
    kill_after = tuple(range(kill_every, jobs, kill_every))

    specs = make_specs(jobs)
    root = tempfile.mkdtemp(prefix="pds2-e21-")
    try:
        submit_batch(root, specs)
        report_obj = batch_execute(root, workers=workers,
                                   kill_after=kill_after)

        # Single-process baseline over a deterministic stride sample
        # (includes faulted jobs and, with high probability, re-queued
        # ones); digests must match the sharded run byte for byte.
        stride = max(1, jobs // baseline_sample)
        sampled = specs[::stride][:baseline_sample]
        identical = 0
        for spec in sampled:
            baseline = run_job(spec)
            sharded = report_obj.results.get(spec.job_id)
            if (sharded is not None
                    and sharded.result_digest == baseline.result_digest):
                identical += 1
        identical_fraction = identical / max(1, len(sampled))
    finally:
        shutil.rmtree(root, ignore_errors=True)

    counts = report_obj.counts
    settled = counts.get("settled", 0) + counts.get("settled_degraded", 0)
    resumed = sum(1 for r in report_obj.results.values()
                  if r.resumed_boundary >= 0)
    throughput = jobs / report_obj.wall_s if report_obj.wall_s else 0.0

    rows = [[
        jobs, workers, report_obj.status,
        f"{settled}/{jobs}", counts.get("failed", 0),
        report_obj.worker_deaths, report_obj.requeues, resumed,
        f"{identical}/{len(sampled)}",
        f"{throughput:,.0f}/s",
    ]]
    lines = format_table(
        ["jobs", "workers", "status", "settled", "failed", "deaths",
         "requeues", "resumed", "digest match", "throughput"],
        rows,
    )
    lines += [
        "",
        f"1-in-{FAULT_EVERY} jobs armed with fault rate {FAULT_RATE}; one",
        f"busy worker SIGKILLed every {kill_every} results.  'digest match'",
        "compares the sharded run's per-job settlement digest against an",
        "uninterrupted single-process replay of the sampled jobs.",
        f"batch digest: {report_obj.batch_digest}",
    ]
    metrics = {
        "settled_total": higher_is_better(settled, threshold_pct=1.0),
        "identical_fraction": higher_is_better(identical_fraction,
                                               threshold_pct=0.5),
        "failed_expected": info(counts.get("failed", 0)),
        "worker_deaths": info(report_obj.worker_deaths),
        "requeues": info(report_obj.requeues),
        "throughput_jobs_per_s": info(throughput, unit="jobs/s"),
        "wall_s": info(report_obj.wall_s, unit="s"),
    }
    return {"metrics": metrics, "lines": lines,
            "status": report_obj.status,
            "identical_fraction": identical_fraction,
            "worker_deaths": report_obj.worker_deaths,
            "divergent": report_obj.divergent}


EXPERIMENT = Experiment("E21", "sharded batch execution at sweep scale",
                        run_bench)


def test_e21_batch_scale(benchmark):
    payload = benchmark.pedantic(lambda: run_bench(quick=True),
                                 rounds=1, iterations=1)
    report("E21", "sharded batch execution at sweep scale",
           payload["lines"])
    # Byte-identity is the acceptance criterion, not a soft target.
    assert payload["identical_fraction"] == 1.0
    # The chaos hook really did kill workers, and the batch still reached
    # an orderly terminal state (failures only from intentionally-faulted
    # jobs).
    assert payload["worker_deaths"] >= 1
    assert payload["status"] in ("done", "partial_failed")
    assert not payload["divergent"]
