"""E22 (extension, Section VI): distributed trace assembly under chaos.

E21 established that the sharded batch control plane settles byte-
identically under SIGKILLed workers; this experiment asks whether it can
*explain itself* under the same abuse.  A quick-scale chaos sweep runs
with periodic worker kills, then the trace assembler merges the per-shard
span sidecars, the jobs journal, and heartbeat evidence — entirely from
disk, as a post-mortem would — into one causally-linked tree.

Gated metrics are the observability acceptance criteria:

* ``completeness_fraction`` — every settled job's span subtree chains to
  the batch root (must be 1.0 even though workers died mid-export);
* ``report_determinism`` — the rendered critical-path report is byte-
  identical across two independent assemblies of the same directory
  (1.0 = identical), the property that makes trace diffs meaningful
  across replays.

Orphan count, lost-worker span count, Chrome-export validity, and
assembly wall time are reported as context.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.bench import Experiment, higher_is_better, info
from repro.control import (
    JobSpec,
    assemble_batch_trace,
    batch_execute,
    submit_batch,
)
from repro.telemetry.distributed import (
    critical_path,
    render_critical_path,
    to_chrome_trace,
    validate_chrome_trace,
)
from reporting import format_table, report

#: Every FAULT_EVERY-th job runs with faults armed at FAULT_RATE (the E21
#: chaos mix, so the two experiments describe the same regime).
FAULT_RATE = 0.4
FAULT_EVERY = 10

SCHEMA_PATH = (Path(__file__).resolve().parent.parent
               / "docs" / "chrome-trace.schema.json")


def make_specs(jobs: int) -> list[JobSpec]:
    return [
        JobSpec(
            job_id=f"job-{index:05d}",
            seed=2100 + index,
            fault_rate=FAULT_RATE if index % FAULT_EVERY == 0 else 0.0,
        )
        for index in range(jobs)
    ]


def run_bench(quick: bool = False) -> dict:
    jobs = 240 if quick else 2_000
    workers = 4
    kill_every = 40 if quick else 200
    kill_after = tuple(range(kill_every, jobs, kill_every))

    root = tempfile.mkdtemp(prefix="pds2-e22-")
    try:
        submit_batch(root, make_specs(jobs))
        report_obj = batch_execute(root, workers=workers,
                                   kill_after=kill_after)

        started = time.perf_counter()
        assembled = assemble_batch_trace(root)
        assembly_s = time.perf_counter() - started
        first_report = render_critical_path(critical_path(assembled))

        # Second, fully independent assembly from the same directory: the
        # report must come back byte for byte.
        again = assemble_batch_trace(root)
        second_report = render_critical_path(critical_path(again))
        deterministic = first_report == second_report

        chrome = to_chrome_trace(assembled)
        with open(SCHEMA_PATH, encoding="utf-8") as handle:
            schema = json.load(handle)
        chrome_errors = validate_chrome_trace(chrome, schema)
        json.dumps(chrome)  # must be serializable end to end
    finally:
        shutil.rmtree(root, ignore_errors=True)

    counts = report_obj.counts
    settled = counts.get("settled", 0) + counts.get("settled_degraded", 0)
    rows = [[
        jobs, workers, report_obj.status, f"{settled}/{jobs}",
        report_obj.worker_deaths, len(assembled.spans),
        len(assembled.lost), len(assembled.orphans),
        f"{assembled.completeness:.3f}",
        "yes" if deterministic else "NO",
        f"{assembly_s * 1e3:.0f}ms",
    ]]
    lines = format_table(
        ["jobs", "workers", "status", "settled", "deaths", "spans",
         "lost", "orphans", "complete", "det.", "assembly"],
        rows,
    )
    lines += [
        "",
        f"trace {assembled.trace_id}: one busy worker SIGKILLed every",
        f"{kill_every} results; dead attempts hang under synthetic",
        "lost-worker spans closed from heartbeat/journal evidence.",
        f"chrome export: {len(chrome['traceEvents'])} events, "
        f"{len(chrome_errors)} schema violations",
    ]
    metrics = {
        "completeness_fraction": higher_is_better(assembled.completeness,
                                                  threshold_pct=0.5),
        "report_determinism": higher_is_better(1.0 if deterministic
                                               else 0.0,
                                               threshold_pct=0.5),
        "orphans": info(len(assembled.orphans)),
        "lost_worker_spans": info(len(assembled.lost)),
        "spans_total": info(len(assembled.spans)),
        "worker_deaths": info(report_obj.worker_deaths),
        "chrome_schema_violations": info(len(chrome_errors)),
        "assembly_wall_s": info(assembly_s, unit="s"),
    }
    return {"metrics": metrics, "lines": lines,
            "completeness": assembled.completeness,
            "deterministic": deterministic,
            "orphans": len(assembled.orphans),
            "lost": len(assembled.lost),
            "worker_deaths": report_obj.worker_deaths,
            "chrome_errors": chrome_errors}


EXPERIMENT = Experiment("E22", "distributed trace assembly under chaos",
                        run_bench)


def test_e22_trace_assembly(benchmark):
    payload = benchmark.pedantic(lambda: run_bench(quick=True),
                                 rounds=1, iterations=1)
    report("E22", "distributed trace assembly under chaos",
           payload["lines"])
    # Causal completeness and report determinism are the acceptance
    # criteria, not soft targets.
    assert payload["completeness"] == 1.0
    assert payload["deterministic"]
    assert payload["orphans"] == 0
    # The chaos hook really did kill workers, and their dead attempts are
    # represented rather than dropped.
    assert payload["worker_deaths"] >= 1
    assert payload["lost"] >= 1
    assert payload["chrome_errors"] == []
