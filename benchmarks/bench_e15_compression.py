"""E15 (extension, Section III-C): communication-efficient gossip.

The paper cites work on gossip learning in "constrained and highly
heterogeneous environments"; the practical lever is message compression.
This ablation runs identical gossip schedules with dense, quantized and
subsampled model messages and charts accuracy against bytes on the wire.
"""

from __future__ import annotations


from repro.ml.compression import CompressionConfig, CompressionKind
from repro.ml.gossip import GossipConfig, GossipTrainer
from repro.ml.models import SoftmaxRegressionModel
from reporting import format_table, report

DURATION_S = 900.0

VARIANTS = [
    ("dense float64", CompressionConfig()),
    ("quantized 8-bit", CompressionConfig(kind=CompressionKind.QUANTIZE,
                                          quantize_bits=8)),
    ("quantized 4-bit", CompressionConfig(kind=CompressionKind.QUANTIZE,
                                          quantize_bits=4)),
    ("subsample 25%", CompressionConfig(kind=CompressionKind.SUBSAMPLE,
                                        subsample_fraction=0.25)),
]


def factory():
    return SoftmaxRegressionModel(6, 5)


def run(parts, test, compression: CompressionConfig):
    trainer = GossipTrainer(
        factory, parts, test,
        GossipConfig(wake_interval_s=10, local_steps=4, learning_rate=0.3,
                     compression=compression),
        seed=15,
    )
    return trainer.run(DURATION_S, DURATION_S)


def test_e15_compression_ablation(benchmark, har_problem):
    parts, test = har_problem
    rows = []
    results = {}
    for name, compression in VARIANTS:
        result = run(parts, test, compression)
        results[name] = result
        rows.append([
            name,
            f"{result.final_mean_score:.3f}",
            f"{result.bytes_delivered:,}",
            f"{result.bytes_delivered / results['dense float64'].bytes_delivered:.2f}x",
        ])

    benchmark.pedantic(
        lambda: run(parts, test, VARIANTS[1][1]), rounds=1, iterations=1,
    )

    report("E15", "gossip message-compression ablation",
           format_table(
               ["message format", "final accuracy", "bytes on wire",
                "vs dense"],
               rows,
           ))

    dense = results["dense float64"]
    quant8 = results["quantized 8-bit"]
    # 8-bit quantization: big byte savings at negligible accuracy cost.
    assert quant8.bytes_delivered < 0.5 * dense.bytes_delivered
    assert quant8.final_mean_score > dense.final_mean_score - 0.05
    # Every variant still learns.
    for result in results.values():
        assert result.final_mean_score > 0.45
