"""E15 (extension, Section III-C): communication-efficient gossip.

The paper cites work on gossip learning in "constrained and highly
heterogeneous environments"; the practical lever is message compression.
This ablation runs identical gossip schedules with dense, quantized and
subsampled model messages and charts accuracy against bytes on the wire.
"""

from __future__ import annotations


from harness import har_problem
from repro.bench import Experiment, higher_is_better, info, lower_is_better
from repro.ml.compression import CompressionConfig, CompressionKind
from repro.ml.gossip import GossipConfig, GossipTrainer
from repro.ml.models import SoftmaxRegressionModel
from reporting import format_table, report

DURATION_S = 900.0

VARIANTS = [
    ("dense float64", CompressionConfig()),
    ("quantized 8-bit", CompressionConfig(kind=CompressionKind.QUANTIZE,
                                          quantize_bits=8)),
    ("quantized 4-bit", CompressionConfig(kind=CompressionKind.QUANTIZE,
                                          quantize_bits=4)),
    ("subsample 25%", CompressionConfig(kind=CompressionKind.SUBSAMPLE,
                                        subsample_fraction=0.25)),
]


def factory():
    return SoftmaxRegressionModel(6, 5)


def run(parts, test, compression: CompressionConfig,
        duration: float = DURATION_S):
    trainer = GossipTrainer(
        factory, parts, test,
        GossipConfig(wake_interval_s=10, local_steps=4, learning_rate=0.3,
                     compression=compression),
        seed=15,
    )
    return trainer.run(duration, duration)


def run_bench(quick: bool = False) -> dict:
    """Every message format on the shared split (seeded, deterministic)."""
    parts, test = har_problem(12 if quick else 24,
                              1500 if quick else 3000)
    duration = 450.0 if quick else DURATION_S
    rows = []
    results = {}
    for name, compression in VARIANTS:
        result = run(parts, test, compression, duration)
        results[name] = result
        rows.append([
            name,
            f"{result.final_mean_score:.3f}",
            f"{result.bytes_delivered:,}",
            f"{result.bytes_delivered / results['dense float64'].bytes_delivered:.2f}x",
        ])

    lines = format_table(
        ["message format", "final accuracy", "bytes on wire", "vs dense"],
        rows,
    )
    dense = results["dense float64"]
    quant8 = results["quantized 8-bit"]
    metrics = {
        "dense_bytes": lower_is_better(dense.bytes_delivered, unit="B"),
        "quant8_bytes": lower_is_better(quant8.bytes_delivered, unit="B"),
        "dense_score": higher_is_better(dense.final_mean_score),
        "quant8_score": higher_is_better(quant8.final_mean_score),
        "quant8_halves_traffic": higher_is_better(
            1.0 if quant8.bytes_delivered < 0.5 * dense.bytes_delivered
            else 0.0,
            threshold_pct=1.0),
        "subsample_score": info(
            results["subsample 25%"].final_mean_score),
    }
    return {"metrics": metrics, "lines": lines, "results": results}


EXPERIMENT = Experiment("E15", "gossip message compression", run_bench)


def test_e15_compression_ablation(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E15", "gossip message-compression ablation", payload["lines"])

    results = payload["results"]
    dense = results["dense float64"]
    quant8 = results["quantized 8-bit"]
    # 8-bit quantization: big byte savings at negligible accuracy cost.
    assert quant8.bytes_delivered < 0.5 * dense.bytes_delivered
    assert quant8.final_mean_score > dense.final_mean_score - 0.05
    # Every variant still learns.
    for result in results.values():
        assert result.final_mean_score > 0.45
