"""E18 (extension, Section VI): lifecycle survival under injected faults.

The paper leaves "feasibility testing under realistic failure" open.  This
experiment sweeps a per-actor fault rate over the full nine-phase
lifecycle — executors crash mid-execute, provider submissions are lost,
chain transactions flake — and compares the recovery engine
(``repro.core.resilience``) against the fail-fast baseline.  Two axes:
what fraction of sessions still settle, and what the surviving runs pay
in extra gas for their retries and re-matches.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Experiment, higher_is_better, info, lower_is_better
from repro.core import (
    FaultPlan,
    Marketplace,
    ModelSpec,
    TrainingSpec,
    WorkloadSpec,
    run_with_faults,
)
from repro.ml.datasets import (
    make_iot_activity,
    split_dirichlet,
    train_test_split,
)
from repro.storage.semantic import ConceptRequirement, SemanticAnnotation
from reporting import format_table, report

FAULT_RATES = (0.0, 0.15, 0.35)
RUNS_PER_CELL = 4
N_PROVIDERS = 3
N_EXECUTORS = 3


def build_market(seed: int):
    rng = np.random.default_rng(seed)
    data = make_iot_activity(600, rng)
    train, validation = train_test_split(data, 0.25, rng)
    parts = split_dirichlet(train, N_PROVIDERS, 1.0, rng, min_samples=15)
    market = Marketplace(seed=seed)
    providers = [
        market.add_provider(f"u{index}", part,
                            SemanticAnnotation("heart_rate", {}))
        for index, part in enumerate(parts)
    ]
    consumer = market.add_consumer("c", validation=validation)
    executors = [market.add_executor(f"e{index}")
                 for index in range(N_EXECUTORS)]
    return market, consumer, [p.name for p in providers], \
        [e.name for e in executors]


def make_spec(workload_id: str) -> WorkloadSpec:
    return WorkloadSpec(
        workload_id=workload_id,
        requirement=ConceptRequirement("physiological"),
        model=ModelSpec(family="softmax", num_features=6, num_classes=5),
        training=TrainingSpec(steps=30, learning_rate=0.3),
        reward_pool=600_000,
        # Recovery may legitimately shed one provider and still settle.
        min_providers=N_PROVIDERS - 1,
        min_samples=50,
        required_confirmations=2,
    )


def run_cell(rate: float, recover: bool, runs: int = RUNS_PER_CELL):
    """One sweep cell: ``runs`` independent seeded runs."""
    settled = degraded = 0
    gas: list[int] = []
    recoveries = faults = 0
    for run in range(runs):
        seed = 1800 + run
        market, consumer, provider_names, executor_names = build_market(seed)
        plan = FaultPlan.sample(rate, executor_names, provider_names,
                                seed=seed)
        result = run_with_faults(
            market, consumer, make_spec(f"e18-{rate}-{run}"), plan,
            recover=recover,
        )
        faults += len(result.injected)
        recoveries += len(result.recoveries)
        if result.completed:
            settled += 1
            gas.append(result.gas_used)
            if result.degraded:
                degraded += 1
    return settled, degraded, gas, recoveries, faults


def run_bench(quick: bool = False) -> dict:
    """The fault-rate sweep, both engines (seeded, deterministic)."""
    rates = (0.0, 0.35) if quick else FAULT_RATES
    runs = 2 if quick else RUNS_PER_CELL
    rows = []
    clean_gas: dict[bool, float] = {}
    settled_by: dict[tuple[bool, float], int] = {}
    for recover in (False, True):
        for rate in rates:
            settled, degraded, gas, recoveries, faults = run_cell(
                rate, recover, runs=runs,
            )
            settled_by[(recover, rate)] = settled
            mean_gas = sum(gas) / len(gas) if gas else 0.0
            if rate == 0.0:
                clean_gas[recover] = mean_gas
            overhead = (mean_gas / clean_gas[recover] - 1.0
                        if clean_gas.get(recover) and mean_gas else 0.0)
            rows.append([
                f"{rate:.2f}",
                "on" if recover else "off",
                f"{settled}/{runs}",
                degraded,
                faults,
                recoveries,
                f"{mean_gas:,.0f}" if mean_gas else "-",
                f"{overhead:+.1%}" if mean_gas else "-",
            ])

    lines = format_table(
        ["fault rate", "recovery", "settled", "degraded", "faults",
         "recoveries", "mean gas", "gas overhead"],
        rows,
    )
    lines += [
        "",
        f"{runs} seeded runs per cell; faults drawn per actor by",
        "FaultPlan.sample (executor mid-execute crash, dropped provider",
        "submission, transient chain rejection).  Gas overhead is relative",
        "to the same engine's fault-free mean.",
    ]
    high = rates[-1]
    metrics = {
        "settled_with_recovery_high": higher_is_better(
            settled_by[(True, high)], threshold_pct=1.0),
        "recovery_advantage": higher_is_better(
            settled_by[(True, high)] - settled_by[(False, high)],
            threshold_pct=1.0),
        "mean_gas_clean": lower_is_better(clean_gas[True], unit="gas"),
        "settled_fail_fast_high": info(settled_by[(False, high)]),
    }
    return {"metrics": metrics, "lines": lines, "rows": rows,
            "settled_by": settled_by, "rates": rates, "runs": runs}


EXPERIMENT = Experiment("E18", "lifecycle fault recovery sweep", run_bench)


def test_e18_fault_recovery_sweep(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E18", "lifecycle fault recovery sweep", payload["lines"])

    settled_by = payload["settled_by"]
    high = payload["rates"][-1]
    # The recovery engine's reason to exist: at the highest fault rate it
    # settles strictly more sessions than the fail-fast baseline.
    assert settled_by[(True, high)] > settled_by[(False, high)]
    # At rate 0 both engines are byte-identical: no faults, no overhead.
    rows = payload["rows"]
    assert rows[0][6] == rows[len(payload["rates"])][6]
