"""E18 (extension, Section VI): lifecycle survival under injected faults.

The paper leaves "feasibility testing under realistic failure" open.  This
experiment sweeps a per-actor fault rate over the full nine-phase
lifecycle — executors crash mid-execute, provider submissions are lost,
chain transactions flake — and compares the recovery engine
(``repro.core.resilience``) against the fail-fast baseline.  Two axes:
what fraction of sessions still settle, and what the surviving runs pay
in extra gas for their retries and re-matches.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    FaultPlan,
    Marketplace,
    ModelSpec,
    TrainingSpec,
    WorkloadSpec,
    run_with_faults,
)
from repro.ml.datasets import (
    make_iot_activity,
    split_dirichlet,
    train_test_split,
)
from repro.storage.semantic import ConceptRequirement, SemanticAnnotation
from reporting import format_table, report

FAULT_RATES = (0.0, 0.15, 0.35)
RUNS_PER_CELL = 4
N_PROVIDERS = 3
N_EXECUTORS = 3


def build_market(seed: int):
    rng = np.random.default_rng(seed)
    data = make_iot_activity(600, rng)
    train, validation = train_test_split(data, 0.25, rng)
    parts = split_dirichlet(train, N_PROVIDERS, 1.0, rng, min_samples=15)
    market = Marketplace(seed=seed)
    providers = [
        market.add_provider(f"u{index}", part,
                            SemanticAnnotation("heart_rate", {}))
        for index, part in enumerate(parts)
    ]
    consumer = market.add_consumer("c", validation=validation)
    executors = [market.add_executor(f"e{index}")
                 for index in range(N_EXECUTORS)]
    return market, consumer, [p.name for p in providers], \
        [e.name for e in executors]


def make_spec(workload_id: str) -> WorkloadSpec:
    return WorkloadSpec(
        workload_id=workload_id,
        requirement=ConceptRequirement("physiological"),
        model=ModelSpec(family="softmax", num_features=6, num_classes=5),
        training=TrainingSpec(steps=30, learning_rate=0.3),
        reward_pool=600_000,
        # Recovery may legitimately shed one provider and still settle.
        min_providers=N_PROVIDERS - 1,
        min_samples=50,
        required_confirmations=2,
    )


def run_cell(rate: float, recover: bool):
    """One sweep cell: RUNS_PER_CELL independent seeded runs."""
    settled = degraded = 0
    gas: list[int] = []
    recoveries = faults = 0
    for run in range(RUNS_PER_CELL):
        seed = 1800 + run
        market, consumer, provider_names, executor_names = build_market(seed)
        plan = FaultPlan.sample(rate, executor_names, provider_names,
                                seed=seed)
        result = run_with_faults(
            market, consumer, make_spec(f"e18-{rate}-{run}"), plan,
            recover=recover,
        )
        faults += len(result.injected)
        recoveries += len(result.recoveries)
        if result.completed:
            settled += 1
            gas.append(result.gas_used)
            if result.degraded:
                degraded += 1
    return settled, degraded, gas, recoveries, faults


def test_e18_fault_recovery_sweep(benchmark):
    rows = []
    clean_gas: dict[bool, float] = {}
    for recover in (False, True):
        for rate in FAULT_RATES:
            settled, degraded, gas, recoveries, faults = run_cell(
                rate, recover,
            )
            mean_gas = sum(gas) / len(gas) if gas else 0.0
            if rate == 0.0:
                clean_gas[recover] = mean_gas
            overhead = (mean_gas / clean_gas[recover] - 1.0
                        if clean_gas.get(recover) and mean_gas else 0.0)
            rows.append([
                f"{rate:.2f}",
                "on" if recover else "off",
                f"{settled}/{RUNS_PER_CELL}",
                degraded,
                faults,
                recoveries,
                f"{mean_gas:,.0f}" if mean_gas else "-",
                f"{overhead:+.1%}" if mean_gas else "-",
            ])
    # The recovery engine's reason to exist: at the highest fault rate it
    # settles strictly more sessions than the fail-fast baseline.
    baseline_high = rows[len(FAULT_RATES) - 1]
    recovered_high = rows[-1]
    assert int(recovered_high[2].split("/")[0]) > \
        int(baseline_high[2].split("/")[0])
    # At rate 0 both engines are byte-identical: no faults, no overhead.
    assert rows[0][6] == rows[len(FAULT_RATES)][6]

    market, consumer, provider_names, executor_names = build_market(1899)
    plan = FaultPlan.sample(0.35, executor_names, provider_names, seed=1899)
    benchmark.pedantic(
        lambda: run_with_faults(
            market, consumer, make_spec("e18-bench"), plan,
        ),
        rounds=1, iterations=1,
    )

    lines = format_table(
        ["fault rate", "recovery", "settled", "degraded", "faults",
         "recoveries", "mean gas", "gas overhead"],
        rows,
    )
    lines += [
        "",
        f"{RUNS_PER_CELL} seeded runs per cell; faults drawn per actor by",
        "FaultPlan.sample (executor mid-execute crash, dropped provider",
        "submission, transient chain rejection).  Gas overhead is relative",
        "to the same engine's fault-free mean.",
    ]
    report("E18", "lifecycle fault recovery sweep", lines)
