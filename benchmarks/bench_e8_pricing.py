"""E8 (Section IV-A): model-based pricing with noise injection.

Reproduces the pricing behavior of Chen et al. as the paper describes it:
"the larger the buyer's budget, the smaller the injected noise variance and
the greater the accuracy".  Reported: the full price/noise/accuracy curve
plus an arbitrage-freeness check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Experiment, higher_is_better, info
from repro.ml.datasets import make_iot_activity, train_test_split
from repro.ml.models import SoftmaxRegressionModel
from repro.rewards.pricing import ModelPricingScheme, verify_arbitrage_free
from reporting import format_table, report

PRICES = [1, 2, 4, 8, 16, 32, 64, 128]


def run_bench(quick: bool = False) -> dict:
    """Train the priced model and sweep the seeded price curve."""
    rng = np.random.default_rng(20260705)
    samples = 1000 if quick else 2000
    trials = 8 if quick else 16
    prices = [1, 8, 32, 128] if quick else PRICES

    data = make_iot_activity(samples, rng)
    train, validation = train_test_split(data, 0.3, rng)
    model = SoftmaxRegressionModel(6, 5)
    model.train_steps(train.features, train.targets, 500, 0.3, 32, rng)
    optimal_score = model.score(validation.features, validation.targets)

    scheme = ModelPricingScheme(model, validation, min_price=1.0,
                                max_price=128.0, base_noise_std=2.0)
    curve = scheme.price_curve(prices, rng, trials=trials)

    rows = [
        [f"{tier.price:.0f}", f"{tier.noise_std:.4f}",
         f"{tier.expected_score:.3f}"]
        for tier in curve
    ]
    lines = format_table(["price", "noise std", "expected accuracy"], rows)
    lines.append("")
    lines.append(f"optimal (undegraded) accuracy: {optimal_score:.3f}")
    lines.append(f"arbitrage-free: {verify_arbitrage_free(curve)}")
    metrics = {
        "arbitrage_free": higher_is_better(
            1.0 if verify_arbitrage_free(curve) else 0.0,
            threshold_pct=1.0),
        "optimal_score": higher_is_better(optimal_score),
        "top_tier_score": higher_is_better(curve[-1].expected_score),
        "cheapest_tier_score": info(curve[0].expected_score),
        "cheapest_tier_noise_std": info(curve[0].noise_std),
    }
    return {"metrics": metrics, "lines": lines, "curve": curve,
            "optimal_score": optimal_score}


EXPERIMENT = Experiment("E8", "model-based pricing curve", run_bench)


def test_e8_price_quality_curve(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E8", "model-based pricing curve", payload["lines"])

    curve = payload["curve"]
    optimal_score = payload["optimal_score"]
    assert verify_arbitrage_free(curve)
    # The cheapest tier must be clearly degraded; the top tier exact.
    assert curve[0].expected_score < optimal_score - 0.1
    assert curve[-1].noise_std == 0.0
    assert curve[-1].expected_score == pytest.approx(optimal_score,
                                                     abs=1e-9)
