"""Crypto microbenchmarks: fast EC backend vs the affine reference.

Measures keygen / sign / verify under both the retained textbook affine
implementation (the differential-testing oracle in ``repro.crypto.ecdsa``)
and the Jacobian/wNAF/GLV backend that now powers the public API, plus the
chain-facing caches (verification replay, Merkle proofs).

Writes two artifacts under ``benchmarks/results/``:

* ``bench_crypto.txt`` — the human-readable table (via ``reporting``);
* ``BENCH_crypto.json`` — machine-readable numbers so future PRs can track
  the speedup over time.

Run directly (``PYTHONPATH=src python benchmarks/bench_crypto.py``) or via
pytest.  ``--smoke`` cuts iteration counts for CI and skips the hard
speedup assertion (absolute timings on shared runners are noisy; the full
run asserts verify is ≥10x the affine baseline).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from reporting import format_table, report  # noqa: E402

from repro.bench import Experiment, info  # noqa: E402
from repro.crypto import ec_backend  # noqa: E402
from repro.crypto.ecdsa import (  # noqa: E402
    GX,
    GY,
    N,
    PrivateKey,
    _VERIFY_CACHE,
    _point_add,
    _point_mul,
    shared_secret,
)
from repro.crypto.hashing import hash_to_int  # noqa: E402
from repro.crypto.merkle import MerkleTree  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"
VERIFY_SPEEDUP_TARGET = 10.0


def _time_per_call(fn, iterations: int) -> float:
    """Average milliseconds per call over ``iterations`` runs."""
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations * 1000.0


def _affine_sign(key: PrivateKey, message: bytes):
    """The seed implementation's signing path, on the affine oracle."""
    digest = hash_to_int(message, N)
    k = key._deterministic_nonce(digest, 0)
    point = _point_mul(k, (GX, GY))
    r = point[0] % N
    s = pow(k, -1, N) * (digest + r * key.secret) % N
    if s > N // 2:
        s = N - s
    return r, s


def _affine_verify(public, message: bytes, r: int, s: int) -> bool:
    """The seed implementation's verification path, on the affine oracle."""
    digest = hash_to_int(message, N)
    s_inv = pow(s, -1, N)
    point = _point_add(
        _point_mul(digest * s_inv % N, (GX, GY)),
        _point_mul(r * s_inv % N, (public.x, public.y)),
    )
    return point is not None and point[0] % N == r


def run(smoke: bool = False) -> dict:
    iters_fast = 20 if smoke else 200
    iters_slow = 3 if smoke else 20

    key = PrivateKey.from_seed(b"bench-crypto")
    peer = PrivateKey.from_seed(b"bench-peer")
    public = key.public_key
    messages = [b"bench message %d" % i for i in range(max(iters_fast,
                                                           iters_slow))]
    signatures = [key.sign(m) for m in messages]
    ms: dict[str, float] = {}

    # Affine reference (the seed implementation, retained as the oracle).
    counter = iter(range(10**9))
    ms["affine_keygen"] = _time_per_call(
        lambda: _point_mul(key.secret + next(counter), (GX, GY)), iters_slow
    )
    ms["affine_sign"] = _time_per_call(
        lambda: _affine_sign(key, messages[next(counter) % len(messages)]),
        iters_slow,
    )
    pairs = iter(range(10**9))
    ms["affine_verify"] = _time_per_call(
        lambda: _affine_verify(
            public, *(lambda i: (messages[i], signatures[i].r,
                                 signatures[i].s))(next(pairs) % len(messages))
        ),
        iters_slow,
    )

    # Fast backend.  Fresh scalars defeat the public-key LRU for keygen;
    # the verify cache is cleared so EC math actually runs.
    scalars = iter(range(1, 10**9))
    ms["fast_keygen"] = _time_per_call(
        lambda: ec_backend.scalar_mult_base(key.secret + next(scalars)),
        iters_fast,
    )
    sign_counter = iter(range(10**9))
    ms["fast_sign"] = _time_per_call(
        lambda: key.sign(messages[next(sign_counter) % len(messages)]),
        iters_fast,
    )
    verify_counter = iter(range(10**9))

    def fast_verify_uncached():
        _VERIFY_CACHE.clear()
        index = next(verify_counter) % len(messages)
        assert public.verify(messages[index], signatures[index])

    ms["fast_verify"] = _time_per_call(fast_verify_uncached, iters_fast)

    assert public.verify(messages[0], signatures[0])
    ms["fast_verify_cached"] = _time_per_call(
        lambda: public.verify(messages[0], signatures[0]), iters_fast * 5
    )
    ms["ecdh"] = _time_per_call(
        lambda: shared_secret(key, peer.public_key), iters_fast
    )

    # Merkle: one tree, repeated proofs (the cached-levels path).
    leaves = [b"leaf-%d" % i for i in range(256)]
    tree = MerkleTree(leaves)
    tree.root
    ms["merkle_proof_cached"] = _time_per_call(
        lambda: tree.proof(137), iters_fast * 5
    )

    speedup = {
        "keygen": ms["affine_keygen"] / ms["fast_keygen"],
        "sign": ms["affine_sign"] / ms["fast_sign"],
        "verify": ms["affine_verify"] / ms["fast_verify"],
    }

    rows = [
        ["keygen (scalar mul G)", f"{ms['affine_keygen']:.3f}",
         f"{ms['fast_keygen']:.3f}", f"{speedup['keygen']:.1f}x"],
        ["sign", f"{ms['affine_sign']:.3f}", f"{ms['fast_sign']:.3f}",
         f"{speedup['sign']:.1f}x"],
        ["verify", f"{ms['affine_verify']:.3f}", f"{ms['fast_verify']:.3f}",
         f"{speedup['verify']:.1f}x"],
        ["verify (LRU replay)", "-", f"{ms['fast_verify_cached']:.4f}", "-"],
        ["ECDH shared secret", "-", f"{ms['ecdh']:.3f}", "-"],
        ["merkle proof (cached)", "-", f"{ms['merkle_proof_cached']:.4f}",
         "-"],
    ]
    report("BENCH_crypto", "fast EC backend vs affine reference (ms/op)",
           format_table(["operation", "affine ms", "fast ms", "speedup"],
                        rows))

    payload = {
        "experiment": "bench_crypto",
        "mode": "smoke" if smoke else "full",
        "iterations": {"fast": iters_fast, "affine": iters_slow},
        "ms": {name: round(value, 5) for name, value in ms.items()},
        "speedup": {name: round(value, 2) for name, value in speedup.items()},
        "verify_speedup_target": VERIFY_SPEEDUP_TARGET,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_crypto.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if not smoke:
        assert speedup["verify"] >= VERIFY_SPEEDUP_TARGET, (
            f"verify speedup {speedup['verify']:.1f}x below the "
            f"{VERIFY_SPEEDUP_TARGET:.0f}x target"
        )
    return payload


def run_bench(quick: bool = False) -> dict:
    """Harness adapter.  Every metric is wall-clock and therefore noisy on
    shared runners, so nothing gates — the trajectory records the speedups
    for eyeballing, and the full pytest run keeps the hard ≥10x assertion.
    """
    payload = run(smoke=quick)
    ms = payload["ms"]
    speedup = payload["speedup"]
    metrics = {
        "verify_speedup": info(speedup["verify"], unit="x"),
        "sign_speedup": info(speedup["sign"], unit="x"),
        "keygen_speedup": info(speedup["keygen"], unit="x"),
        "fast_verify_ms": info(ms["fast_verify"], unit="ms"),
        "fast_sign_ms": info(ms["fast_sign"], unit="ms"),
        "verify_cached_ms": info(ms["fast_verify_cached"], unit="ms"),
    }
    lines = [f"{name}: {value:.2f}x" for name, value in speedup.items()]
    return {"metrics": metrics, "lines": lines, "payload": payload}


EXPERIMENT = Experiment(
    "CRYPTO", "fast EC backend vs affine reference", run_bench,
)


def test_crypto_speedup():
    """Pytest entry point: the full benchmark with the ≥10x assertion."""
    run(smoke=False)


if __name__ == "__main__":
    result = run(smoke="--smoke" in sys.argv)
    print(json.dumps(result["speedup"], indent=2))
