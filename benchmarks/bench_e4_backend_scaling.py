"""E4 (Section III-B): backend scaling with model size.

The paper (citing Haralampieva et al.) claims HE/SMC solutions "failed to
scale for larger models" while "TEE solutions exhibited better scalability".
Using the calibrated cost model, this experiment sweeps MLP width and batch
size and reports the estimated latency per backend — the TEE's overhead
factor must *shrink* as the job grows (fixed attestation amortizes), while
the HE and SMC factors stay orders of magnitude above plain.
"""

from __future__ import annotations


from repro.bench import Experiment, higher_is_better, info, lower_is_better
from repro.tee.cost_model import CostModel, ExecutionBackend, mlp_profile
from reporting import format_table, report

SWEEP = [
    ("tiny", 64, 16, [16], 2),
    ("small", 256, 32, [64], 4),
    ("medium", 1024, 64, [256], 8),
    ("large", 4096, 128, [512, 512], 16),
]


def run_bench(quick: bool = False) -> dict:
    """Sweep the cost model over MLP sizes (fully deterministic)."""
    model = CostModel()
    rows = []
    tee_factors = []
    rankings_ok = True
    for name, batch, features, hidden, outputs in SWEEP:
        profile = mlp_profile(batch=batch, features=features, hidden=hidden,
                              outputs=outputs)
        seconds = {
            backend: model.estimate_seconds(backend, profile)
            for backend in ExecutionBackend
        }
        plain = seconds[ExecutionBackend.PLAIN]
        tee_factor = seconds[ExecutionBackend.TEE] / plain
        tee_factors.append(tee_factor)
        rows.append([
            name,
            f"{profile.macs:,}",
            f"{plain:.2e}",
            f"{tee_factor:,.1f}x",
            f"{seconds[ExecutionBackend.SMC] / plain:,.0f}x",
            f"{seconds[ExecutionBackend.HE] / plain:,.0f}x",
        ])
        ranking = model.ranking(profile)
        rankings_ok = rankings_ok and (
            ranking[0] == ExecutionBackend.PLAIN
            and ranking[1] == ExecutionBackend.TEE
            and ranking[-1] == ExecutionBackend.HE
        )
    lines = format_table(
        ["model", "MACs", "plain s", "tee", "smc", "he"], rows,
    )
    metrics = {
        "tee_factor_large": lower_is_better(tee_factors[-1], unit="x"),
        "tee_factor_tiny": info(tee_factors[0], unit="x"),
        "ordering_holds": higher_is_better(
            1.0 if rankings_ok else 0.0, threshold_pct=1.0),
        "tee_amortizes": higher_is_better(
            1.0 if tee_factors == sorted(tee_factors, reverse=True) else 0.0,
            threshold_pct=1.0),
    }
    return {"metrics": metrics, "lines": lines,
            "tee_factors": tee_factors, "rankings_ok": rankings_ok}


EXPERIMENT = Experiment(
    "E4", "backend scaling over MLP size (cost-model estimates)", run_bench,
)


def test_e4_backend_scaling(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E4", "backend scaling over MLP size (cost-model estimates)",
           payload["lines"])

    # The ordering of Section III-B must hold at every size.
    assert payload["rankings_ok"]
    tee_factors = payload["tee_factors"]
    # TEE amortizes its fixed costs: the overhead factor must fall
    # monotonically as the workload grows.
    assert tee_factors == sorted(tee_factors, reverse=True)
    assert tee_factors[-1] < 3.0
