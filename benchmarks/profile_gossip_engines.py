"""Regenerate the committed gossip-engine flame profiles in ``docs/``.

    PYTHONHASHSEED=0 PYTHONPATH=src python benchmarks/profile_gossip_engines.py

Profiles the same 64-node, 600 s-simulated gossip run on both engines
with the deterministic calls-mode sampler and writes collapsed stacks
(flamegraph.pl input) to ``docs/profile_gossip_objects.collapsed`` and
``docs/profile_gossip_kernel.collapsed``.  The object engine's samples
concentrate under ``span:gossip.run;region:gossip.wake`` (per-node
python), the kernel engine's under ``region:kernel.round`` /
``kernel.merge`` / ``kernel.train`` / ``kernel.push`` (stacked array
ops) — the total sample counts are themselves a rough speedup witness,
since calls-mode sampling is proportional to interpreter work.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import har_problem  # noqa: E402
from repro.ml.gossip import GossipConfig, GossipTrainer  # noqa: E402
from repro.ml.models import SoftmaxRegressionModel  # noqa: E402
from repro.telemetry import Profiler, profile_to_collapsed  # noqa: E402


def factory():
    return SoftmaxRegressionModel(6, 5, l2=0.01)


def main() -> int:
    docs = Path(__file__).parent.parent / "docs"
    parts, test = har_problem(nodes=64, samples=3000)
    for engine in ("objects", "kernel"):
        profiler = Profiler(mode="calls", call_interval=64)
        with profiler:
            trainer = GossipTrainer(
                factory, parts, test,
                GossipConfig(engine=engine, batch_size=8), seed=11)
            trainer.run(600.0, eval_interval_s=300.0)
        profile = profiler.result()
        path = docs / f"profile_gossip_{engine}.collapsed"
        path.write_text(profile_to_collapsed(profile))
        print(f"{engine}: {profile.total_samples} samples -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
