"""E6 (Section III-C): robustness to churn and coordinator failure.

The paper's argument against federated learning is its central coordinator:
a scalability bottleneck and a single point of failure.  This experiment
sweeps node availability and compares:

* gossip accuracy (mean over online nodes) — should degrade gracefully;
* FedAvg with a *reliable* server — the generous baseline;
* FedAvg whose server churns like every other node — the honest
  comparison for a marketplace with no privileged entity; its completed
  round count collapses.
"""

from __future__ import annotations


from harness import har_problem
from repro.bench import Experiment, higher_is_better, info
from repro.ml.federated import FederatedConfig, FederatedTrainer
from repro.ml.gossip import GossipConfig, GossipTrainer
from repro.ml.models import SoftmaxRegressionModel
from repro.net.churn import ChurnModel
from reporting import format_table, report

DURATION_S = 1200.0
AVAILABILITIES = [1.0, 0.8, 0.5, 0.3]


def factory():
    return SoftmaxRegressionModel(6, 5)


def run_bench(quick: bool = False) -> dict:
    """The availability sweep (fully deterministic: seeded churn)."""
    parts, test = har_problem(12 if quick else 24,
                              1500 if quick else 3000)
    duration = 600.0 if quick else DURATION_S
    availabilities = [1.0, 0.3] if quick else AVAILABILITIES

    rows = []
    gossip_scores = []
    fed_churned_rounds = []
    fed_reliable_rounds = []
    for availability in availabilities:
        churn = (None if availability == 1.0
                 else ChurnModel.from_availability(availability,
                                                   mean_online_s=60))
        gossip = GossipTrainer(
            factory, parts, test,
            GossipConfig(wake_interval_s=10, learning_rate=0.3),
            seed=3, churn=churn,
        ).run(duration, duration)
        fed_reliable = FederatedTrainer(
            factory, parts, test,
            FederatedConfig(round_interval_s=30, learning_rate=0.3),
            seed=3, churn=churn, server_subject_to_churn=False,
        ).run(duration, duration)
        fed_churned = FederatedTrainer(
            factory, parts, test,
            FederatedConfig(round_interval_s=30, learning_rate=0.3),
            seed=3, churn=churn, server_subject_to_churn=True,
        ).run(duration, duration)
        gossip_scores.append(gossip.final_online_score)
        fed_churned_rounds.append(fed_churned.rounds_completed)
        fed_reliable_rounds.append(fed_reliable.rounds_completed)
        rows.append([
            f"{availability:.0%}",
            f"{gossip.final_online_score:.3f}",
            f"{fed_reliable.final_score:.3f}",
            f"{fed_churned.final_score:.3f}",
            fed_reliable.rounds_completed,
            fed_churned.rounds_completed,
        ])

    lines = format_table(
        ["availability", "gossip acc", "fed acc (reliable srv)",
         "fed acc (churned srv)", "fed rounds (rel)",
         "fed rounds (churn)"],
        rows,
    )
    metrics = {
        "gossip_score_full": higher_is_better(gossip_scores[0]),
        "gossip_score_low_availability": higher_is_better(
            gossip_scores[-1], threshold_pct=10.0),
        "coordinator_fragile": higher_is_better(
            1.0 if fed_churned_rounds[-1] < 0.6 * fed_reliable_rounds[-1]
            else 0.0,
            threshold_pct=1.0),
        "fed_rounds_reliable_low": info(fed_reliable_rounds[-1]),
        "fed_rounds_churned_low": info(fed_churned_rounds[-1]),
    }
    return {"metrics": metrics, "lines": lines,
            "gossip_scores": gossip_scores,
            "fed_reliable_rounds": fed_reliable_rounds,
            "fed_churned_rounds": fed_churned_rounds}


EXPERIMENT = Experiment("E6", "churn and coordinator failure", run_bench)


def test_e6_churn_sweep(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E6", "availability sweep: gossip vs fedavg", payload["lines"])

    # Gossip at 30% availability still learns something real.
    assert payload["gossip_scores"][-1] > 0.45
    # A churned coordinator completes far fewer rounds than a reliable one.
    assert payload["fed_churned_rounds"][-1] < \
        0.6 * payload["fed_reliable_rounds"][-1]
