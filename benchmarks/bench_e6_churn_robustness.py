"""E6 (Section III-C): robustness to churn and coordinator failure.

The paper's argument against federated learning is its central coordinator:
a scalability bottleneck and a single point of failure.  This experiment
sweeps node availability and compares:

* gossip accuracy (mean over online nodes) — should degrade gracefully;
* FedAvg with a *reliable* server — the generous baseline;
* FedAvg whose server churns like every other node — the honest
  comparison for a marketplace with no privileged entity; its completed
  round count collapses.
"""

from __future__ import annotations


from repro.ml.federated import FederatedConfig, FederatedTrainer
from repro.ml.gossip import GossipConfig, GossipTrainer
from repro.ml.models import SoftmaxRegressionModel
from repro.net.churn import ChurnModel
from reporting import format_table, report

DURATION_S = 1200.0
AVAILABILITIES = [1.0, 0.8, 0.5, 0.3]


def factory():
    return SoftmaxRegressionModel(6, 5)


def test_e6_churn_sweep(benchmark, har_problem):
    parts, test = har_problem
    rows = []
    gossip_scores = []
    fed_churned_rounds = []
    fed_reliable_rounds = []

    for availability in AVAILABILITIES:
        churn = (None if availability == 1.0
                 else ChurnModel.from_availability(availability,
                                                   mean_online_s=60))
        gossip = GossipTrainer(
            factory, parts, test,
            GossipConfig(wake_interval_s=10, learning_rate=0.3),
            seed=3, churn=churn,
        ).run(DURATION_S, DURATION_S)
        fed_reliable = FederatedTrainer(
            factory, parts, test,
            FederatedConfig(round_interval_s=30, learning_rate=0.3),
            seed=3, churn=churn, server_subject_to_churn=False,
        ).run(DURATION_S, DURATION_S)
        fed_churned = FederatedTrainer(
            factory, parts, test,
            FederatedConfig(round_interval_s=30, learning_rate=0.3),
            seed=3, churn=churn, server_subject_to_churn=True,
        ).run(DURATION_S, DURATION_S)
        gossip_scores.append(gossip.final_online_score)
        fed_churned_rounds.append(fed_churned.rounds_completed)
        fed_reliable_rounds.append(fed_reliable.rounds_completed)
        rows.append([
            f"{availability:.0%}",
            f"{gossip.final_online_score:.3f}",
            f"{fed_reliable.final_score:.3f}",
            f"{fed_churned.final_score:.3f}",
            fed_reliable.rounds_completed,
            fed_churned.rounds_completed,
        ])

    benchmark.pedantic(
        lambda: GossipTrainer(
            factory, parts, test, GossipConfig(learning_rate=0.3), seed=4,
            churn=ChurnModel.from_availability(0.5),
        ).run(300.0, 300.0),
        rounds=2, iterations=1,
    )

    report("E6", "availability sweep: gossip vs fedavg",
           format_table(
               ["availability", "gossip acc", "fed acc (reliable srv)",
                "fed acc (churned srv)", "fed rounds (rel)",
                "fed rounds (churn)"],
               rows,
           ))

    # Gossip at 30% availability still learns something real.
    assert gossip_scores[-1] > 0.45
    # A churned coordinator completes far fewer rounds than a reliable one.
    assert fed_churned_rounds[-1] < 0.6 * fed_reliable_rounds[-1]
