"""E24: chain observability — audit overhead, attribution determinism.

The ops plane added for the chain (per-block analytics records, the
parallel-execution attribution report, and the always-on invariant
auditor) must be safe to leave enabled: this experiment drives the E23
governance-session workload through the batched/parallel pipeline and
checks that

* the auditor validates **every** block of the run with zero violations
  (``audit_clean``, ``audit_coverage`` — gated);
* the attribution report and the per-block record stream are
  byte-identical across matched-seed runs (``attribution_deterministic``
  — gated; the records carry no wall-clock values by construction);
* a seeded ``corrupt_state`` fault (single balance bit-flip after a block
  seals) is detected at exactly its block, with a forensic bundle that
  names at least one suspect account (``corrupt_detected`` — gated);
* the observe+audit overhead stays small (``audit_overhead_pct`` — info:
  wall-clock ratios jitter on shared runners, so the pytest gate is
  deliberately loose and the seed value is what the trajectory tracks).

``python benchmarks/bench_e24_chain_observability.py --smoke`` runs the
CI smoke: one clean run (exit nonzero on any violation) and one corrupted
run (exit nonzero unless the auditor catches it).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_chain_throughput import (  # noqa: E402
    _make_chain,
    _session_actors,
    _settled,
    _submit_session,
)
from repro.bench import Experiment, higher_is_better, info  # noqa: E402
from repro.chain.audit import install_state_corruption  # noqa: E402
from repro.crypto import ec_backend, ecdsa  # noqa: E402
from repro.chain.observe import attribution_report  # noqa: E402
from reporting import format_table, report  # noqa: E402

# A governance session is ~2.6M gas, so ~11 sessions fill one 30M block;
# these counts guarantee multi-block runs (the corruption target must be
# a block that actually gets mined).
SESSION_COUNT = 24
QUICK_COUNT = 12
CORRUPT_BLOCK = 2


def _run(count: int, *, observe: bool = True, audit: bool = True,
         corrupt_block: int | None = None, seed: int = 2400) -> dict:
    """Drive ``count`` governance sessions through the batched pipeline."""
    chain, rng = _make_chain(seed, verify_mode="mined",
                             execution="parallel", observe=observe,
                             audit=audit)
    if corrupt_block is not None:
        install_state_corruption(chain, corrupt_block, seed=seed)
    sessions = _session_actors(chain, rng, count)
    workloads = []
    # Matched seeds replay identical transactions, so without this the
    # second run verifies every signature (and builds every per-key
    # point table) from cache and any wall-clock comparison against the
    # first is meaningless.
    ecdsa._VERIFY_CACHE.clear()
    ec_backend._POINT_TABLE_CACHE.clear()
    t0 = time.perf_counter()
    for index, (consumer, executor, providers) in enumerate(sessions):
        workload, _ = _submit_session(chain, consumer, executor,
                                      providers, index)
        workloads.append(workload)
    while len(chain.mempool):
        chain.mine_block()
    wall = time.perf_counter() - t0
    out = {"wall": wall, "blocks": chain.height,
           "settled": _settled(chain, workloads)}
    if observe:
        records = chain.observer.records
        out["records_blob"] = "\n".join(
            json.dumps(record, sort_keys=True) for record in records
        )
        out["attribution"] = attribution_report(records)
        out["attribution_blob"] = json.dumps(out["attribution"],
                                             sort_keys=True)
    if audit:
        out["audit"] = chain.auditor.summary()
        out["bundles"] = chain.auditor.bundles
    return out


def run_bench(quick: bool = False) -> dict:
    count = QUICK_COUNT if quick else SESSION_COUNT

    # Warm the EC tables and code paths first, or the cold first run
    # dominates the overhead comparison.
    _run(2, observe=False, audit=False)
    plain = _run(count, observe=False, audit=False)
    observed = _run(count)
    replay = _run(count)
    corrupted = _run(count, corrupt_block=CORRUPT_BLOCK)

    audit = observed["audit"]
    audit_clean = audit["violation_count"] == 0
    audit_coverage = (audit["blocks_checked"] == observed["blocks"]
                      and observed["blocks"] > 0)
    deterministic = (
        observed["records_blob"] == replay["records_blob"]
        and observed["attribution_blob"] == replay["attribution_blob"]
    )
    bad = corrupted["audit"]
    detected = (
        bad["violation_count"] > 0
        and {v["block"] for v in bad["violations"]} == {CORRUPT_BLOCK}
        and bool(bad["violations"])
        and all(b["suspect_accounts"] for b in corrupted["bundles"])
    )
    overhead_pct = (100.0 * (observed["wall"] - plain["wall"])
                    / plain["wall"]) if plain["wall"] else 0.0

    attribution = observed["attribution"]
    rows = [
        ["plain (observe/audit off)", plain["blocks"],
         f"{plain['wall']:.2f}", "-"],
        ["observed + audited", observed["blocks"],
         f"{observed['wall']:.2f}",
         f"{audit['blocks_checked']} checked / "
         f"{audit['violation_count']} violations"],
        ["corrupted", corrupted["blocks"],
         f"{corrupted['wall']:.2f}",
         f"{bad['violation_count']} violations"],
    ]
    lines = format_table(["regime", "blocks", "wall s", "audit"], rows)
    lines.append("")
    lines.append(f"audit overhead           {overhead_pct:+.1f}% wall")
    lines.append(f"attribution identical    {deterministic}")
    lines.append(f"parallel/serial blocks   "
                 f"{attribution['parallel_blocks']}/"
                 f"{attribution['serial_blocks']}")
    causes = ", ".join(f"{cause}={n}" for cause, n
                       in attribution["serial_causes"].items()) or "none"
    lines.append(f"serial causes            {causes}")
    if attribution["top_conflict_keys"]:
        top = attribution["top_conflict_keys"][0]
        lines.append(f"hottest conflict key     {top['key']} "
                     f"({top['merges']} merges)")

    metrics = {
        "audit_clean": higher_is_better(1.0 if audit_clean else 0.0,
                                        threshold_pct=1.0),
        "audit_coverage": higher_is_better(1.0 if audit_coverage else 0.0,
                                           threshold_pct=1.0),
        "attribution_deterministic": higher_is_better(
            1.0 if deterministic else 0.0, threshold_pct=1.0
        ),
        "corrupt_detected": higher_is_better(1.0 if detected else 0.0,
                                             threshold_pct=1.0),
        "blocks_audited": higher_is_better(float(audit["blocks_checked"]),
                                           unit="blocks",
                                           threshold_pct=1.0),
        "audit_overhead_pct": info(overhead_pct, unit="%"),
        "parallel_blocks": info(float(attribution["parallel_blocks"]),
                                unit="blocks"),
        "unhinted_txs": info(float(attribution["unhinted_txs"]),
                             unit="txs"),
    }
    return {
        "metrics": metrics, "lines": lines, "audit_clean": audit_clean,
        "audit_coverage": audit_coverage, "deterministic": deterministic,
        "detected": detected, "overhead_pct": overhead_pct,
        "settled": observed["settled"], "count": count,
    }


EXPERIMENT = Experiment("E24", "chain observability: audit overhead + "
                        "attribution determinism", run_bench)


def test_e24_chain_observability(benchmark):
    payload = benchmark.pedantic(lambda: run_bench(quick=True),
                                 rounds=1, iterations=1)
    report("E24", "chain observability (ops plane, invariant auditor)",
           payload["lines"])

    assert payload["settled"] == payload["count"]
    assert payload["audit_clean"]
    assert payload["audit_coverage"]
    assert payload["deterministic"]
    assert payload["detected"]
    # The ISSUE budget is <=5% steady-state; the CI gate is deliberately
    # loose because shared runners jitter, the seed value is the record.
    assert payload["overhead_pct"] < 50.0


def _smoke() -> int:
    """CI smoke: auditor-clean run + seeded corruption detection."""
    clean = _run(QUICK_COUNT)
    audit = clean["audit"]
    print(f"E24 smoke: {clean['blocks']} blocks, "
          f"{audit['blocks_checked']} audited, "
          f"{audit['violation_count']} violations")
    if audit["violation_count"]:
        print("FAIL: invariant violations on an untampered run")
        return 1
    if audit["blocks_checked"] != clean["blocks"]:
        print("FAIL: auditor skipped blocks")
        return 1
    corrupted = _run(QUICK_COUNT, corrupt_block=CORRUPT_BLOCK)
    bad = corrupted["audit"]
    if not bad["violation_count"]:
        print("FAIL: seeded corrupt_state fault went undetected")
        return 1
    if {v["block"] for v in bad["violations"]} != {CORRUPT_BLOCK}:
        print("FAIL: violations not pinned to the corrupted block")
        return 1
    if not all(b["suspect_accounts"] for b in corrupted["bundles"]):
        print("FAIL: forensic bundle names no suspect account")
        return 1
    suspects = corrupted["bundles"][0]["suspect_accounts"]
    print(f"OK: corruption at block {CORRUPT_BLOCK} detected, "
          f"suspects {suspects}")
    return 0


if __name__ == "__main__":
    sys.exit(_smoke() if "--smoke" in sys.argv else 0)
