"""E10 (Section IV-C): the metadata-leakage / matching-precision trade-off.

Providers choose how specifically to annotate their data.  Fine annotations
let the storage subsystem match workloads precisely but reveal more about
what the provider holds.  This experiment sweeps annotation generalization
(0 = exact leaf concept with properties, 3 = near-root with nothing) and
reports, over a fixed portfolio of workload requirements:

* metadata leakage in bits (information-theoretic, uniform leaf prior);
* matching recall — the fraction of truly-eligible (provider, workload)
  pairs the metadata still discovers;
* matching precision — of the pairs proposed, how many are truly eligible
  (coarse annotations create false matches that would waste executor
  verification work).
"""

from __future__ import annotations

import numpy as np

from repro.bench import Experiment, higher_is_better, info, lower_is_better
from repro.storage.semantic import (
    AllOf,
    ConceptRequirement,
    Ontology,
    RangeRequirement,
    SemanticAnnotation,
    annotation_leakage_bits,
    generalize_annotation,
)
from reporting import format_table, report

#: The true data each provider holds: (leaf concept, sampling rate).
PROVIDERS = [
    ("temperature", 1.0), ("temperature", 0.1), ("humidity", 2.0),
    ("heart_rate", 1.0), ("heart_rate", 0.25), ("spo2", 1.0),
    ("accelerometer", 50.0), ("gps_trace", 0.1),
    ("power_consumption", 0.5), ("battery_level", 0.05),
]

#: Workload requirements posted on the marketplace.
WORKLOADS = [
    AllOf((ConceptRequirement("environmental"),
           RangeRequirement("rate_hz", 0.5, 10.0))),
    AllOf((ConceptRequirement("physiological"),
           RangeRequirement("rate_hz", 0.2, 2.0))),
    ConceptRequirement("motion"),
    AllOf((ConceptRequirement("energy"),
           RangeRequirement("rate_hz", 0.1, 1.0))),
]


def truth_matrix(ontology):
    """Ground truth: does provider i truly satisfy workload j?"""
    truth = np.zeros((len(PROVIDERS), len(WORKLOADS)), dtype=bool)
    for i, (concept, rate) in enumerate(PROVIDERS):
        annotation = SemanticAnnotation(concept, {"rate_hz": rate})
        for j, requirement in enumerate(WORKLOADS):
            truth[i, j] = requirement.matches(ontology, annotation)
    return truth


def run_bench(quick: bool = False) -> dict:
    """The generalization sweep (deterministic: no randomness at all)."""
    ontology = Ontology.iot_default()
    truth = truth_matrix(ontology)
    rows = []
    recalls = []
    precisions = []
    leakages = []

    for levels in (0, 1, 2, 3):
        drop = ["rate_hz"] if levels >= 2 else []
        leakage_total = 0.0
        proposed = 0
        proposed_true = 0
        discovered_true = 0
        for i, (concept, rate) in enumerate(PROVIDERS):
            annotation = generalize_annotation(
                ontology, SemanticAnnotation(concept, {"rate_hz": rate}),
                levels=levels, drop_properties=drop,
            )
            leakage_total += annotation_leakage_bits(ontology, annotation)
            for j, requirement in enumerate(WORKLOADS):
                # Coarse annotations are matched optimistically on the
                # concept axis (any overlap) and permissively on dropped
                # properties — the storage layer cannot prove ineligibility.
                if requirement.matches(ontology, annotation):
                    matched = True
                else:
                    matched = _optimistic_match(ontology, requirement,
                                                annotation)
                if matched:
                    proposed += 1
                    if truth[i, j]:
                        proposed_true += 1
                        discovered_true += 1
        total_true = int(truth.sum())
        recall = discovered_true / total_true
        precision = proposed_true / proposed if proposed else 1.0
        mean_leakage = leakage_total / len(PROVIDERS)
        recalls.append(recall)
        precisions.append(precision)
        leakages.append(mean_leakage)
        rows.append([
            levels, f"{mean_leakage:.2f}", f"{recall:.2f}",
            f"{precision:.2f}", proposed,
        ])

    lines = format_table(
        ["generalization", "leak bits/provider", "recall",
         "precision", "pairs proposed"],
        rows,
    )
    metrics = {
        "recall_full_detail": higher_is_better(recalls[0],
                                               threshold_pct=1.0),
        "precision_full_detail": higher_is_better(precisions[0]),
        "leak_bits_most_generalized": lower_is_better(leakages[-1],
                                                      unit="bits"),
        "leak_monotone": higher_is_better(
            1.0 if leakages == sorted(leakages, reverse=True) else 0.0,
            threshold_pct=1.0),
        "leak_bits_full_detail": info(leakages[0], unit="bits"),
        "precision_most_generalized": info(precisions[-1]),
    }
    return {"metrics": metrics, "lines": lines, "recalls": recalls,
            "precisions": precisions, "leakages": leakages}


EXPERIMENT = Experiment(
    "E10", "metadata leakage vs matching precision", run_bench,
)


def test_e10_leakage_precision_tradeoff(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E10", "annotation generalization: leakage vs matching",
           payload["lines"])

    leakages = payload["leakages"]
    # Leakage decreases monotonically with generalization...
    assert leakages == sorted(leakages, reverse=True)
    # ...full detail gives perfect discovery...
    assert payload["recalls"][0] == 1.0
    # ...and the most generalized annotations still discover everything but
    # at visibly worse precision (wasted executor verification).
    precisions = payload["precisions"]
    assert precisions[-1] < precisions[0]


def _optimistic_match(ontology, requirement, annotation) -> bool:
    """Can the requirement *possibly* match given coarse metadata?

    A concept clause may match when the annotation's concept subsumes the
    required one (the provider's true leaf might be inside); property
    clauses with missing properties are assumed satisfiable.
    """
    from repro.storage.semantic import (
        AllOf as All_,
        AnyOf as Any_,
        ConceptRequirement as Concept_,
        EqualsRequirement,
        OneOfRequirement,
        RangeRequirement as Range_,
    )

    if isinstance(requirement, All_):
        return all(_optimistic_match(ontology, clause, annotation)
                   for clause in requirement.clauses)
    if isinstance(requirement, Any_):
        return any(_optimistic_match(ontology, clause, annotation)
                   for clause in requirement.clauses)
    if isinstance(requirement, Concept_):
        return (ontology.subsumes(requirement.concept, annotation.concept)
                or ontology.subsumes(annotation.concept,
                                     requirement.concept))
    if isinstance(requirement, (Range_, EqualsRequirement,
                                OneOfRequirement)):
        if requirement.property_name not in annotation.properties:
            return True  # unknown -> possibly satisfiable
        return requirement.matches(ontology, annotation)
    return False
