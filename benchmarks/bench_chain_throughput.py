"""E23: chain throughput — mempool packing, batch verification, parallel apply.

The paper's governance layer settles every workload session on-chain; at
marketplace scale the chain itself becomes the bottleneck.  This experiment
drives full governance sessions at the E12 scale (32 providers each, one
deploy + 35-transaction executor chain per session) through two regimes:

* **baseline** — the historical usage pattern: one block mined per protocol
  phase, signatures verified per transaction at submit;
* **batched** — all sessions submitted up front into the nonce-ordered,
  fee-prioritized mempool, signatures batch-verified at block entry (one
  multi-scalar multiplication per block), blocks mined until the pool
  drains, transactions applied by the optimistic-parallel engine.

Gated: settled sessions per block (packing is deterministic), the ≥5×
improvement over the baseline, and byte-identical state roots/receipts
between serial and parallel execution at matched seeds.  Wall-clock
amortization of batch signature verification rides along and is asserted
loosely (≥1.5× on a cold cache).

``python benchmarks/bench_chain_throughput.py --smoke`` runs the CI smoke:
a ~500-transaction serial-vs-parallel differential, exiting nonzero on any
state-root or receipt divergence.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.bench import Experiment, higher_is_better, info
from repro.chain.blockchain import Blockchain, Wallet
from repro.chain.consensus import ProofOfAuthority
from repro.chain.contract import default_registry
from repro.crypto import ecdsa
from repro.governance import register_governance_contracts
from reporting import format_table, report

#: E12 scale: providers paid per workload session.
PROVIDERS_PER_SESSION = 32
#: Sessions in the full / quick runs (36 txs each: 1 deploy + 35 calls).
SESSION_COUNT = 28
QUICK_SESSION_COUNT = 14

#: Measured phase gas (deploy 143k, register 29k, participation ≤42k,
#: start 29k, result 274k) plus headroom; tight limits are what lets the
#: gas-reservation packer fit many whole sessions per 30M block.
GAS_DEPLOY = 200_000
GAS_REGISTER = 50_000
GAS_PARTICIPATION = 60_000
GAS_START = 50_000
GAS_RESULT = 400_000

_MEASUREMENT = "a1" * 16
_SPEC_HASH = "f0" * 16
_BPS = 10_000


def _make_chain(seed: int, **chain_kwargs) -> tuple[Blockchain, np.random.Generator]:
    rng = np.random.default_rng(seed)
    consensus = ProofOfAuthority.with_generated_validators(1, rng)
    registry = default_registry()
    register_governance_contracts(registry)
    return Blockchain(consensus, registry=registry, **chain_kwargs), rng


def _session_actors(chain: Blockchain, rng: np.random.Generator,
                    count: int) -> list[tuple[Wallet, Wallet, list[str]]]:
    """Distinct consumer, executor, and provider set per session."""
    sessions = []
    for index in range(count):
        consumer = Wallet.generate(chain, rng, f"c{index}")
        executor = Wallet.generate(chain, rng, f"e{index}")
        chain.state.credit(consumer.address, 10**12)
        chain.state.credit(executor.address, 10**12)
        providers = [
            "0x" + f"{index * PROVIDERS_PER_SESSION + i + 1:040x}"
            for i in range(PROVIDERS_PER_SESSION)
        ]
        sessions.append((consumer, executor, providers))
    return sessions


def _weights(providers: list[str]) -> dict[str, int]:
    share = _BPS // len(providers)
    weights = {p: share for p in providers}
    weights[providers[0]] += _BPS - share * len(providers)
    return weights


def _submit_session(chain: Blockchain, consumer: Wallet, executor: Wallet,
                    providers: list[str], index: int,
                    mine_per_phase: bool = False) -> tuple[str, list[bytes]]:
    """Queue one full session; optionally mine a block per protocol phase.

    After the deploy, every transaction comes from the executor, so the
    mempool's per-sender nonce queue alone enforces the phase order —
    participations can never overtake registration, nor the result vote
    its participations, no matter how blocks are packed.
    """
    hashes = [consumer.deploy(
        "workload", value=PROVIDERS_PER_SESSION * 1_000,
        gas_limit=GAS_DEPLOY, spec_hash=_SPEC_HASH,
        code_measurement=_MEASUREMENT,
        min_providers=PROVIDERS_PER_SESSION,
        min_samples=PROVIDERS_PER_SESSION, required_confirmations=1,
    )]
    workload = chain.vm.contract_address_for(consumer.address, 0)
    if mine_per_phase:
        chain.mine_block()
    hashes.append(executor.call(workload, "register_executor",
                                gas_limit=GAS_REGISTER,
                                claimed_measurement=_MEASUREMENT))
    if mine_per_phase:
        chain.mine_block()
    for i, provider in enumerate(providers):
        hashes.append(executor.call(
            workload, "submit_participation", gas_limit=GAS_PARTICIPATION,
            provider=provider, certificate_hash=f"cert-{index}-{i}",
            data_root=f"root-{index}-{i}", item_count=1,
        ))
    if mine_per_phase:
        chain.mine_block()
    hashes.append(executor.call(workload, "start_execution",
                                gas_limit=GAS_START))
    if mine_per_phase:
        chain.mine_block()
    hashes.append(executor.call(
        workload, "submit_result", gas_limit=GAS_RESULT,
        result_hash=f"res-{index}", provider_weights_bps=_weights(providers),
    ))
    if mine_per_phase:
        chain.mine_block()
    return workload, hashes


def _settled(chain: Blockchain, workloads: list[str]) -> int:
    caller = "0x" + "01" * 20
    return sum(
        1 for address in workloads
        if chain.view(caller, address, "state") == "complete"
    )


def _receipt_key(receipt) -> tuple:
    return (
        receipt.tx_hash, receipt.status, receipt.gas_used,
        tuple(repr(log.to_dict()) for log in receipt.logs),
        repr(receipt.return_value), receipt.error,
        receipt.contract_address, receipt.block_number,
    )


def _run_baseline(count: int) -> dict:
    """One block per protocol phase, per-transaction verification."""
    chain, rng = _make_chain(2300)
    sessions = _session_actors(chain, rng, count)
    start_height = chain.height
    workloads = []
    t0 = time.perf_counter()
    for index, (consumer, executor, providers) in enumerate(sessions):
        workload, _ = _submit_session(chain, consumer, executor, providers,
                                      index, mine_per_phase=True)
        workloads.append(workload)
    wall = time.perf_counter() - t0
    blocks = chain.height - start_height
    return {"blocks": blocks, "settled": _settled(chain, workloads),
            "wall": wall, "chain": chain}


def _run_batched(count: int, execution: str) -> dict:
    """Submit everything, then mine until the mempool drains."""
    chain, rng = _make_chain(2300, verify_mode="mined", execution=execution)
    sessions = _session_actors(chain, rng, count)
    start_height = chain.height
    workloads = []
    all_hashes = []
    t0 = time.perf_counter()
    for index, (consumer, executor, providers) in enumerate(sessions):
        workload, hashes = _submit_session(chain, consumer, executor,
                                           providers, index)
        workloads.append(workload)
        all_hashes.extend(hashes)
    while len(chain.mempool):
        chain.mine_block()
    wall = time.perf_counter() - t0
    blocks = chain.height - start_height
    receipts = tuple(_receipt_key(chain.receipt_for(h)) for h in all_hashes)
    return {
        "blocks": blocks, "settled": _settled(chain, workloads),
        "wall": wall, "chain": chain, "tx_count": len(all_hashes),
        "state_root": chain.state.state_root(), "receipts": receipts,
        "failures": sum(1 for h in all_hashes
                        if not chain.receipt_for(h).status),
    }


def _verify_amortization(chain: Blockchain, sample: int = 128,
                         repeats: int = 3) -> float:
    """Cold-cache wall ratio: per-signature verification vs one batch.

    Best-of-``repeats``: the single-run ratio jitters ±0.2x from GC and
    cache-eviction timing on shared runners.
    """
    items = []
    for block in chain.blocks:
        for tx in block.transactions:
            items.append((tx.public_key, tx.signing_bytes(), tx.signature))
            if len(items) >= sample:
                break
        if len(items) >= sample:
            break
    best = 0.0
    for _ in range(repeats):
        ecdsa._VERIFY_CACHE.clear()
        t0 = time.perf_counter()
        individual = [key.verify(message, sig) for key, message, sig in items]
        individual_wall = time.perf_counter() - t0
        ecdsa._VERIFY_CACHE.clear()
        t0 = time.perf_counter()
        batched = ecdsa.batch_verify(items)
        batch_wall = time.perf_counter() - t0
        assert individual == batched
        ratio = individual_wall / batch_wall if batch_wall else 1.0
        best = max(best, ratio)
    return best


def run_bench(quick: bool = False) -> dict:
    count = QUICK_SESSION_COUNT if quick else SESSION_COUNT
    baseline = _run_baseline(count)
    serial = _run_batched(count, "serial")
    parallel = _run_batched(count, "parallel")

    identical = (
        serial["state_root"] == parallel["state_root"]
        and serial["receipts"] == parallel["receipts"]
    )
    sessions_per_block_base = baseline["settled"] / baseline["blocks"]
    sessions_per_block = parallel["settled"] / parallel["blocks"]
    speedup = sessions_per_block / sessions_per_block_base
    amortization = _verify_amortization(parallel["chain"])

    rows = [
        ["baseline", baseline["settled"], baseline["blocks"],
         f"{sessions_per_block_base:.2f}", f"{baseline['wall']:.1f}"],
        ["batched serial", serial["settled"], serial["blocks"],
         f"{serial['settled'] / serial['blocks']:.2f}",
         f"{serial['wall']:.1f}"],
        ["batched parallel", parallel["settled"], parallel["blocks"],
         f"{sessions_per_block:.2f}", f"{parallel['wall']:.1f}"],
    ]
    lines = format_table(
        ["regime", "settled", "blocks", "sessions/block", "wall s"], rows
    )
    lines.append("")
    lines.append(f"txs per regime           {parallel['tx_count']}")
    lines.append(f"sessions/block speedup   {speedup:.1f}x")
    lines.append(f"verify amortization      {amortization:.2f}x (wall)")
    lines.append(f"serial == parallel       {identical}")

    metrics = {
        # Packing and settlement are gas-deterministic: safe to gate.
        "sessions_per_block": higher_is_better(sessions_per_block,
                                               unit="sessions"),
        "sessions_per_block_speedup_x": higher_is_better(
            speedup, unit="x", threshold_pct=20.0
        ),
        "sessions_settled": higher_is_better(parallel["settled"],
                                             unit="sessions",
                                             threshold_pct=1.0),
        "parallel_identical": higher_is_better(1.0 if identical else 0.0,
                                               threshold_pct=1.0),
        "tx_failures": higher_is_better(
            1.0 if parallel["failures"] == 0 else 0.0, threshold_pct=1.0
        ),
        # Wall-clock ratios stay ungated on shared runners.
        "verify_amortization_x": info(amortization, unit="x"),
        "baseline_sessions_per_block": info(sessions_per_block_base,
                                            unit="sessions"),
    }
    return {
        "metrics": metrics, "lines": lines, "identical": identical,
        "speedup": speedup, "sessions_per_block": sessions_per_block,
        "amortization": amortization, "settled": parallel["settled"],
        "count": count, "failures": parallel["failures"],
    }


EXPERIMENT = Experiment("E23", "chain throughput: mempool + batch verify + "
                        "parallel apply", run_bench)


def test_e23_chain_throughput(benchmark):
    payload = benchmark.pedantic(lambda: run_bench(quick=True),
                                 rounds=1, iterations=1)
    report("E23", "chain throughput (mempool, batch verify, parallel apply)",
           payload["lines"])

    assert payload["settled"] == payload["count"]
    assert payload["failures"] == 0
    # Parallel execution is byte-identical to serial at matched seeds.
    assert payload["identical"]
    # The batched pipeline settles ≥5x more sessions per block than the
    # block-per-phase baseline (both sides are gas-deterministic).
    assert payload["speedup"] >= 5.0
    # Batch signature verification amortizes: ≥1.4x over per-tx verifies
    # on a cold cache (generous: the gap widens with block size).
    assert payload["amortization"] >= 1.4


def _smoke() -> int:
    """CI smoke: serial-vs-parallel differential on a ~500-tx workload."""
    count = QUICK_SESSION_COUNT
    serial = _run_batched(count, "serial")
    parallel = _run_batched(count, "parallel")
    print(f"E23 smoke: {serial['tx_count']} txs, "
          f"{serial['blocks']} blocks serial / "
          f"{parallel['blocks']} blocks parallel")
    if serial["state_root"] != parallel["state_root"]:
        print("FAIL: state roots diverge between serial and parallel")
        return 1
    if serial["receipts"] != parallel["receipts"]:
        print("FAIL: receipts diverge between serial and parallel")
        return 1
    if parallel["settled"] != count:
        print(f"FAIL: only {parallel['settled']}/{count} sessions settled")
        return 1
    for regime, run in (("serial", serial), ("parallel", parallel)):
        audit = run["chain"].auditor.summary()
        if audit["violation_count"]:
            print(f"FAIL: {audit['violation_count']} invariant "
                  f"violation(s) in the {regime} run")
            return 1
        if audit["blocks_checked"] != run["blocks"]:
            print(f"FAIL: auditor checked {audit['blocks_checked']} of "
                  f"{run['blocks']} {regime} blocks")
            return 1
    print("OK: state roots and receipts byte-identical, "
          f"{count} sessions settled, every block audited clean")
    return 0


if __name__ == "__main__":
    sys.exit(_smoke() if "--smoke" in sys.argv else 0)
