"""E5 (Section III-C): gossip learning vs. federated learning.

Reproduces the comparison the paper cites (Hegedűs et al. 2021): on the
same non-IID partitions over the same simulated network, gossip learning
reaches accuracy comparable to FedAvg — without any coordinator — while its
traffic spreads evenly across nodes instead of concentrating at a server.

Series reported: accuracy-versus-time for both protocols, total traffic,
and the load of the most-loaded node (gossip) versus the server (FedAvg).
"""

from __future__ import annotations


from harness import har_problem
from repro.bench import Experiment, higher_is_better, info, lower_is_better
from repro.ml.federated import FederatedConfig, FederatedTrainer
from repro.ml.gossip import GossipConfig, GossipTrainer
from repro.ml.models import SoftmaxRegressionModel
from reporting import format_table, report

DURATION_S = 1500.0
EVAL_EVERY_S = 300.0


def factory():
    return SoftmaxRegressionModel(6, 5)


def run_bench(quick: bool = False) -> dict:
    """Both protocols on the same seeded split (fully deterministic)."""
    parts, test = har_problem(12 if quick else 24,
                              1500 if quick else 3000)
    duration = 600.0 if quick else DURATION_S

    gossip = GossipTrainer(
        factory, parts, test,
        GossipConfig(wake_interval_s=10, local_steps=4, learning_rate=0.3),
        seed=1,
    ).run(duration, EVAL_EVERY_S)
    fed = FederatedTrainer(
        factory, parts, test,
        FederatedConfig(round_interval_s=30, client_fraction=0.5,
                        local_steps=4, learning_rate=0.3),
        seed=1,
    ).run(duration, EVAL_EVERY_S)

    rows = []
    for (t, g_acc), (_, f_acc) in zip(gossip.history, fed.history):
        rows.append([f"{t:.0f}", f"{g_acc:.3f}", f"{f_acc:.3f}"])
    lines = format_table(["sim time s", "gossip acc", "fedavg acc"], rows)
    lines += [
        "",
        f"final: gossip {gossip.final_mean_score:.3f} vs "
        f"fedavg {fed.final_score:.3f}",
        f"traffic: gossip total {gossip.bytes_delivered:,} B, "
        f"max node {gossip.max_node_bytes:,} B "
        f"({gossip.max_node_bytes / gossip.bytes_delivered:.1%})",
        f"traffic: fedavg total {fed.bytes_delivered:,} B, "
        f"server {fed.server_bytes:,} B (~100%)",
    ]
    metrics = {
        "gossip_final_score": higher_is_better(gossip.final_mean_score),
        "fedavg_final_score": higher_is_better(fed.final_score),
        "gossip_bytes": lower_is_better(gossip.bytes_delivered, unit="B"),
        "gossip_max_node_share": lower_is_better(
            gossip.max_node_bytes / gossip.bytes_delivered),
        "fedavg_server_bytes": info(fed.server_bytes, unit="B"),
    }
    return {"metrics": metrics, "lines": lines,
            "gossip": gossip, "fed": fed}


EXPERIMENT = Experiment("E5", "gossip vs federated learning", run_bench)


def test_e5_gossip_vs_federated(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E5", "gossip vs federated, 24 non-IID providers",
           payload["lines"])

    gossip, fed = payload["gossip"], payload["fed"]
    # Gossip must be competitive: within 10 accuracy points of FedAvg.
    assert gossip.final_mean_score > fed.final_score - 0.10
    # And decentralized: its heaviest node is nowhere near a full hub.
    assert gossip.max_node_bytes < 0.3 * gossip.bytes_delivered
    # FedAvg's server is a hub: it touches every delivered byte.
    assert fed.server_bytes >= fed.bytes_delivered
