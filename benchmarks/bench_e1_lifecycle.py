"""E1 (Fig. 1 / Fig. 2): the five-role lifecycle runs end-to-end.

Regenerates the architecture validation the paper defers to future work:
one complete workload — contract deployment, matching, attestation,
certified data submission, enclave training, quorum results, payout,
audit — measured for wall-clock latency, gas and outcome quality.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Experiment, higher_is_better, info, lower_is_better
from repro.core import (
    LIFECYCLE_PHASES,
    Marketplace,
    ModelSpec,
    TrainingSpec,
    WorkloadSpec,
    phase_gas_totals,
    phase_wall_times,
)
from repro.ml.datasets import (
    make_iot_activity,
    split_dirichlet,
    train_test_split,
)
from repro.storage.semantic import ConceptRequirement, SemanticAnnotation
from reporting import format_table, report

TITLE = "five-role lifecycle, end to end"


def build_market(num_providers: int, num_executors: int, seed: int = 7):
    rng = np.random.default_rng(1000 + num_providers)
    data = make_iot_activity(200 * num_providers, rng)
    train, validation = train_test_split(data, 0.25, rng)
    parts = split_dirichlet(train, num_providers, alpha=1.0, rng=rng,
                            min_samples=15)
    market = Marketplace(seed=seed)
    for index, part in enumerate(parts):
        market.add_provider(
            f"user{index}", part,
            SemanticAnnotation("heart_rate", {"rate_hz": 1.0}),
        )
    consumer = market.add_consumer("lab", validation=validation)
    for index in range(num_executors):
        market.add_executor(f"exec{index}")
    return market, consumer


def har_spec(workload_id: str, confirmations: int) -> WorkloadSpec:
    return WorkloadSpec(
        workload_id=workload_id,
        requirement=ConceptRequirement("physiological"),
        model=ModelSpec(family="softmax", num_features=6, num_classes=5),
        training=TrainingSpec(steps=120, learning_rate=0.3, batch_size=32),
        reward_pool=1_000_000,
        min_providers=4,
        min_samples=200,
        required_confirmations=confirmations,
    )


def run_bench(quick: bool = False) -> dict:
    """One full Fig. 2 lifecycle, measured and itemized per phase."""
    providers, executors = (6, 2) if quick else (8, 2)
    market, consumer = build_market(providers, executors)
    result = market.run_workload(consumer,
                                 har_spec("e1-bench", confirmations=2))
    trail = market.event_log.for_session(result.session_id)
    wall = phase_wall_times(trail)
    gas = phase_gas_totals(trail)
    rows = [
        ["providers participating", len(result.participants)],
        ["executors", len(result.executors)],
        ["active executors", len(result.active_executors)],
        ["consumer model accuracy", f"{result.consumer_score:.3f}"],
        ["reward pool fully paid", result.total_paid == 1_000_000],
        ["gas per workload", f"{result.gas_used:,}"],
        ["blocks mined", result.blocks_mined],
        ["audit clean", result.audit.clean],
        ["certificates recorded", result.audit.certificates],
    ]
    phase_rows = [
        [phase, f"{wall.get(phase, 0.0) * 1e3:.1f}", f"{gas.get(phase, 0):,}"]
        for phase in [p.name for p in LIFECYCLE_PHASES]
    ]
    lines = (format_table(["metric", "value"], rows)
             + ["", "phase timings (from the event bus):", ""]
             + format_table(["phase", "wall ms", "gas"], phase_rows))
    metrics = {
        "gas_used": lower_is_better(result.gas_used, unit="gas"),
        "blocks_mined": lower_is_better(result.blocks_mined, unit="blocks"),
        "consumer_score": higher_is_better(result.consumer_score),
        "reward_paid": info(result.total_paid, unit="tokens"),
        "providers": info(len(result.participants)),
        "audit_clean": higher_is_better(
            1.0 if result.audit.clean else 0.0, threshold_pct=1.0),
    }
    return {"metrics": metrics, "lines": lines, "result": result,
            "phase_gas": gas}


EXPERIMENT = Experiment("E1", TITLE, run_bench)


def test_e1_full_lifecycle(benchmark):
    """Benchmark one full Fig. 2 lifecycle and report its vital signs."""
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E1", TITLE, payload["lines"])

    result = payload["result"]
    assert sum(payload["phase_gas"].values()) == result.gas_used
    assert result.audit.clean
    assert result.consumer_score > 0.6
    assert result.total_paid == 1_000_000
