"""E9 (Section IV-B): signed devices defeat forgery, tampering and resale.

Sweeps the adversarial rate in a mixed reading stream and reports detection
precision/recall, plus the verifier's throughput (readings/second) — the
cost of putting signature verification on the executor's ingest path.
"""

from __future__ import annotations

import numpy as np

from repro.identity.authenticity import (
    AuthenticityVerifier,
    simulate_adversarial_stream,
)
from repro.identity.device import Manufacturer, ManufacturerRegistry
from reporting import format_table, report

ATTACK_RATES = [0.1, 0.3, 0.5]
HONEST_PER_DEVICE = 60
DEVICES = 3


def run_detection(attack_rate: float, seed: int):
    rng = np.random.default_rng(seed)
    manufacturer = Manufacturer("acme", b"root", trust_score=0.9)
    registry = ManufacturerRegistry()
    registry.register(manufacturer)
    verifier = AuthenticityVerifier(registry)
    honest_total = 0
    attack_total = 0
    for device_index in range(DEVICES):
        device = manufacturer.build_device(f"SN-{device_index}")
        stream = simulate_adversarial_stream(
            device, HONEST_PER_DEVICE, attack_rate, rng,
            start_time=device_index * 10_000.0,
        )
        honest_total += sum(1 for _, a in stream if not a)
        attack_total += sum(1 for _, a in stream if a)
        verifier.verify_batch(
            [(reading, device.certificate) for reading, _ in stream]
        )
    true_rejects = verifier.stats.total_rejected
    false_rejects = max(0, honest_total - verifier.stats.accepted)
    recall = true_rejects / attack_total if attack_total else 1.0
    precision = (true_rejects / (true_rejects + false_rejects)
                 if true_rejects else 1.0)
    return honest_total, attack_total, precision, recall, verifier


def test_e9_detection_sweep(benchmark):
    rows = []
    for index, attack_rate in enumerate(ATTACK_RATES):
        honest, attacks, precision, recall, verifier = run_detection(
            attack_rate, seed=60 + index
        )
        reasons = ", ".join(f"{k}:{v}" for k, v in
                            sorted(verifier.stats.rejected.items()))
        rows.append([
            f"{attack_rate:.0%}", honest, attacks,
            f"{precision:.3f}", f"{recall:.3f}", reasons,
        ])

    # Throughput: honest verification cost per reading.
    rng = np.random.default_rng(99)
    manufacturer = Manufacturer("acme", b"root")
    registry = ManufacturerRegistry()
    registry.register(manufacturer)
    device = manufacturer.build_device("SN-T")
    readings = [
        device.produce_reading({"v": float(i)}, timestamp=float(i))
        for i in range(50)
    ]

    def verify_batch():
        verifier = AuthenticityVerifier(registry)
        return verifier.verify_batch(
            [(reading, device.certificate) for reading in readings]
        )

    benchmark.pedantic(verify_batch, rounds=3, iterations=1)

    report("E9", "authenticity detection vs adversarial rate",
           format_table(
               ["attack rate", "honest", "attacks", "precision", "recall",
                "rejection reasons"],
               rows,
           ))

    # Signature-based detection is exact: perfect precision and recall.
    for row in rows:
        assert row[3] == "1.000" and row[4] == "1.000"
