"""E9 (Section IV-B): signed devices defeat forgery, tampering and resale.

Sweeps the adversarial rate in a mixed reading stream and reports detection
precision/recall, plus the verifier's throughput (readings/second) — the
cost of putting signature verification on the executor's ingest path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import Experiment, higher_is_better, info
from repro.identity.authenticity import (
    AuthenticityVerifier,
    simulate_adversarial_stream,
)
from repro.identity.device import Manufacturer, ManufacturerRegistry
from reporting import format_table, report

ATTACK_RATES = [0.1, 0.3, 0.5]
HONEST_PER_DEVICE = 60
DEVICES = 3


def run_detection(attack_rate: float, seed: int,
                  honest_per_device: int = HONEST_PER_DEVICE,
                  devices: int = DEVICES):
    rng = np.random.default_rng(seed)
    manufacturer = Manufacturer("acme", b"root", trust_score=0.9)
    registry = ManufacturerRegistry()
    registry.register(manufacturer)
    verifier = AuthenticityVerifier(registry)
    honest_total = 0
    attack_total = 0
    for device_index in range(devices):
        device = manufacturer.build_device(f"SN-{device_index}")
        stream = simulate_adversarial_stream(
            device, honest_per_device, attack_rate, rng,
            start_time=device_index * 10_000.0,
        )
        honest_total += sum(1 for _, a in stream if not a)
        attack_total += sum(1 for _, a in stream if a)
        verifier.verify_batch(
            [(reading, device.certificate) for reading, _ in stream]
        )
    true_rejects = verifier.stats.total_rejected
    false_rejects = max(0, honest_total - verifier.stats.accepted)
    recall = true_rejects / attack_total if attack_total else 1.0
    precision = (true_rejects / (true_rejects + false_rejects)
                 if true_rejects else 1.0)
    return honest_total, attack_total, precision, recall, verifier


def run_bench(quick: bool = False) -> dict:
    """The adversarial-rate sweep plus a verifier throughput probe."""
    rates = [0.1, 0.5] if quick else ATTACK_RATES
    per_device = 30 if quick else HONEST_PER_DEVICE
    devices = 2 if quick else DEVICES

    rows = []
    precisions = []
    recalls = []
    for index, attack_rate in enumerate(rates):
        honest, attacks, precision, recall, verifier = run_detection(
            attack_rate, seed=60 + index,
            honest_per_device=per_device, devices=devices,
        )
        precisions.append(precision)
        recalls.append(recall)
        reasons = ", ".join(f"{k}:{v}" for k, v in
                            sorted(verifier.stats.rejected.items()))
        rows.append([
            f"{attack_rate:.0%}", honest, attacks,
            f"{precision:.3f}", f"{recall:.3f}", reasons,
        ])

    # Throughput: honest verification cost per reading (wall clock).
    manufacturer = Manufacturer("acme", b"root")
    registry = ManufacturerRegistry()
    registry.register(manufacturer)
    device = manufacturer.build_device("SN-T")
    count = 20 if quick else 50
    readings = [
        device.produce_reading({"v": float(i)}, timestamp=float(i))
        for i in range(count)
    ]
    verifier = AuthenticityVerifier(registry)
    start = time.perf_counter()
    verifier.verify_batch(
        [(reading, device.certificate) for reading in readings]
    )
    elapsed = max(time.perf_counter() - start, 1e-9)

    lines = format_table(
        ["attack rate", "honest", "attacks", "precision", "recall",
         "rejection reasons"],
        rows,
    )
    lines += ["", f"verifier throughput: {count / elapsed:,.0f} readings/s"]
    metrics = {
        "min_precision": higher_is_better(min(precisions),
                                          threshold_pct=1.0),
        "min_recall": higher_is_better(min(recalls), threshold_pct=1.0),
        "verify_throughput_per_s": info(count / elapsed, unit="1/s"),
    }
    return {"metrics": metrics, "lines": lines, "rows": rows}


EXPERIMENT = Experiment("E9", "data-authenticity detection", run_bench)


def test_e9_detection_sweep(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    report("E9", "authenticity detection vs adversarial rate",
           payload["lines"])

    # Signature-based detection is exact: perfect precision and recall.
    for row in payload["rows"]:
        assert row[3] == "1.000" and row[4] == "1.000"
