# Convenience targets for the PDS2 reproduction.

PYTHON ?= python

.PHONY: install test bench examples all clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/healthcare_gossip.py
	$(PYTHON) examples/energy_rewards.py
	$(PYTHON) examples/device_authenticity.py
	$(PYTHON) examples/private_training.py
	$(PYTHON) examples/token_marketplace.py

all: test bench

clean:
	rm -rf .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
