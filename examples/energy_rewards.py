"""Fair rewards for a smart-grid forecasting workload (paper Section IV-A).

A utility company buys a household power-consumption model from a pool of
smart-meter owners.  Three provider archetypes join:

* **good** households with clean, plentiful readings;
* **small** households with few readings;
* a **noisy** household whose meter produces garbage labels.

The example compares reward splits under simple sample counting, exact
Shapley values, and leave-one-out — showing how Shapley is the only scheme
that identifies the noisy provider as worthless — then prices the trained
model for buyers with different budgets (Chen et al.'s noise-injection
scheme).

Run with::

    python examples/energy_rewards.py
"""

from __future__ import annotations

import numpy as np

from repro.ml.datasets import Dataset, make_energy_consumption, train_test_split
from repro.ml.models import LinearRegressionModel
from repro.rewards.distribution import distribute_rewards
from repro.rewards.pricing import ModelPricingScheme, verify_arbitrage_free
from repro.rewards.shapley import (
    DataValuationTask,
    exact_shapley,
    leave_one_out,
    normalize_to_payouts,
)

REWARD_POOL = 1_000_000


def build_providers(rng) -> tuple[list[str], list[Dataset], Dataset]:
    data = make_energy_consumption(2600, rng)
    train, validation = train_test_split(data, 0.3, rng)
    features, targets = train.features, train.targets
    providers = []
    names = []
    cursor = 0
    for index in range(3):  # three good households, 400 samples each
        providers.append(Dataset(features=features[cursor:cursor + 400],
                                 targets=targets[cursor:cursor + 400]))
        names.append(f"good-{index}")
        cursor += 400
    for index in range(2):  # two small households, 60 samples each
        providers.append(Dataset(features=features[cursor:cursor + 60],
                                 targets=targets[cursor:cursor + 60]))
        names.append(f"small-{index}")
        cursor += 60
    # one household with a broken meter: labels are pure noise
    broken = Dataset(
        features=features[cursor:cursor + 400],
        targets=rng.normal(0.0, 3.0, 400),
    )
    providers.append(broken)
    names.append("noisy-0")
    return names, providers, validation


def main() -> None:
    rng = np.random.default_rng(11)
    names, providers, validation = build_providers(rng)
    print("provider pool:")
    for name, part in zip(names, providers):
        print(f"  {name:<8} {len(part):>4} samples")

    task = DataValuationTask(
        model_factory=lambda: LinearRegressionModel(5),
        provider_datasets=providers,
        validation=validation,
        train_steps=300, learning_rate=0.1, batch_size=32, seed=3,
    )
    grand = task(frozenset(range(len(providers))))
    print(f"\ngrand-coalition model R^2: {grand:.3f}")

    shapley = exact_shapley(len(providers), task)
    loo = leave_one_out(len(providers), task)
    counts = np.array([len(p) for p in providers], dtype=float)

    schemes = {
        "by sample count": counts / counts.sum(),
        "leave-one-out": normalize_to_payouts(loo),
        "exact Shapley": normalize_to_payouts(shapley),
    }
    print(f"\nreward split of {REWARD_POOL:,} tokens "
          "(10% infra share to the executor):")
    header = "  provider " + "".join(f"{k:>18}" for k in schemes)
    print(header)
    payout_tables = {}
    for scheme_name, fractions in schemes.items():
        weights = {name: float(f) for name, f in zip(names, fractions)}
        split = distribute_rewards(REWARD_POOL, weights, ["executor-0"],
                                   infra_share=0.1)
        payout_tables[scheme_name] = split.provider_payouts
    for name in names:
        row = f"  {name:<9}"
        for scheme_name in schemes:
            row += f"{payout_tables[scheme_name][name]:>18,}"
        print(row)

    print("\nraw Shapley values (negative = the data hurt the model):")
    for name, value in zip(names, shapley):
        print(f"  {name:<8} {value:+.4f}")

    # -- model-based pricing ---------------------------------------------------
    model = LinearRegressionModel(5)
    pooled_features = np.concatenate([p.features for p in providers[:-1]])
    pooled_targets = np.concatenate([p.targets for p in providers[:-1]])
    model.train_steps(pooled_features, pooled_targets, 500, 0.1, 32, rng)
    scheme = ModelPricingScheme(model, validation, min_price=10,
                                max_price=640, base_noise_std=1.0)
    curve = scheme.price_curve([10, 20, 40, 80, 160, 320, 640], rng,
                               trials=12)
    print("\nmodel-based price menu (noise-injected instances):")
    for tier in curve:
        print(f"  price {tier.price:>6,.0f}  noise_std={tier.noise_std:.4f}"
              f"  expected R^2={tier.expected_score:.3f}")
    print(f"arbitrage-free: {verify_arbitrage_free(curve)}")


if __name__ == "__main__":
    main()
