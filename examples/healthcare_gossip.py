"""Decentralized health-data training: gossip learning vs. FedAvg.

The paper's motivating scenario: thousands of wearable users hold sensitive
physiological data that must never be pooled centrally.  Section III-C
selects gossip learning over federated learning because the latter hinges on
a central coordinator.  This example makes that argument concrete:

1. both protocols train the same activity classifier on the same non-IID
   partitions over the same simulated network;
2. then the coordinator becomes unreliable (it churns like any other node) —
   FedAvg rounds stall while gossip keeps converging.

Run with::

    python examples/healthcare_gossip.py
"""

from __future__ import annotations

import numpy as np

from repro.ml.datasets import (
    make_iot_activity,
    split_dirichlet,
    train_test_split,
)
from repro.ml.federated import FederatedConfig, FederatedTrainer
from repro.ml.gossip import GossipConfig, GossipTrainer
from repro.ml.models import SoftmaxRegressionModel
from repro.net.churn import ChurnModel

NODES = 30
DURATION_S = 1200.0
EVAL_EVERY_S = 300.0


def model_factory() -> SoftmaxRegressionModel:
    return SoftmaxRegressionModel(num_features=6, num_classes=5)


def print_history(label: str, history) -> None:
    curve = "  ".join(f"t={t:.0f}s:{score:.3f}" for t, score in history)
    print(f"  {label:<28} {curve}")


def main() -> None:
    rng = np.random.default_rng(7)
    data = make_iot_activity(4000, rng)
    train, test = train_test_split(data, 0.25, rng)
    partitions = split_dirichlet(train, NODES, alpha=0.5, rng=rng,
                                 min_samples=20)
    sizes = sorted(len(p) for p in partitions)
    print(f"{NODES} wearable users, non-IID partitions "
          f"(smallest {sizes[0]}, largest {sizes[-1]} samples)\n")

    gossip_config = GossipConfig(wake_interval_s=10.0, local_steps=4,
                                 learning_rate=0.3)
    fed_config = FederatedConfig(round_interval_s=30.0, client_fraction=0.5,
                                 local_steps=4, learning_rate=0.3)

    # -- phase 1: reliable network ----------------------------------------------
    print("phase 1 — reliable network")
    gossip = GossipTrainer(model_factory, partitions, test, gossip_config,
                           seed=1).run(DURATION_S, EVAL_EVERY_S)
    fed = FederatedTrainer(model_factory, partitions, test, fed_config,
                           seed=1).run(DURATION_S, EVAL_EVERY_S)
    print_history("gossip (mean node model)", gossip.history)
    print_history("federated (server model)", fed.history)
    print(f"  traffic: gossip {gossip.bytes_delivered:,} B total, "
          f"heaviest node {gossip.max_node_bytes:,} B "
          f"({gossip.max_node_bytes / gossip.bytes_delivered:.1%})")
    print(f"  traffic: federated {fed.bytes_delivered:,} B total, "
          f"server carries {fed.server_bytes:,} B "
          f"({min(1.0, fed.server_bytes / fed.bytes_delivered):.1%})\n")

    # -- phase 2: the coordinator is as unreliable as everyone else ---------------
    print("phase 2 — 50% availability churn, coordinator included")
    churn = ChurnModel.from_availability(0.5, mean_online_s=60.0)
    gossip_churn = GossipTrainer(
        model_factory, partitions, test, gossip_config, seed=2, churn=churn,
    ).run(DURATION_S, EVAL_EVERY_S)
    fed_churn = FederatedTrainer(
        model_factory, partitions, test, fed_config, seed=2,
        churn=ChurnModel.from_availability(0.5, mean_online_s=60.0),
        server_subject_to_churn=True,
    ).run(DURATION_S, EVAL_EVERY_S)
    print_history("gossip (mean node model)", gossip_churn.history)
    print_history("federated (server model)", fed_churn.history)
    print(f"  gossip online-node accuracy: "
          f"{gossip_churn.final_online_score:.3f}, "
          f"{gossip_churn.messages_dropped:,} messages dropped")
    print(f"  federated rounds completed: {fed_churn.rounds_completed} "
          f"(vs {fed.rounds_completed} with a reliable server)")

    print("\nconclusion: with a reliable, well-provisioned coordinator the "
          "two protocols are comparable;")
    print("remove that assumption and gossip degrades gracefully while "
          "FedAvg's round pipeline stalls —")
    print("the decentralization argument of paper Section III-C.")


if __name__ == "__main__":
    main()
