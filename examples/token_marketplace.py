"""Token-denominated rewards, data deeds, and workload expiry.

Section III-A selects ERC-20 for rewards and ERC-721 for data/workload
assets.  This example drives those mechanisms at the chain level:

1. the platform mints an ERC-20 reward token and an ERC-721 deed registry;
2. a provider registers a dataset and receives a deed NFT committing to its
   content hash;
3. a consumer funds a workload escrow *in tokens* (approve + pull);
4. the happy path pays providers/executors in tokens, conserving supply;
5. a second workload finds no providers and hits its deadline — anyone
   expires it, refunding the consumer's tokens.

Run with::

    python examples/token_marketplace.py
"""

from __future__ import annotations

import numpy as np

from repro.chain.blockchain import Blockchain, Wallet
from repro.chain.consensus import ProofOfAuthority
from repro.chain.contract import default_registry
from repro.chain.vm import VM
from repro.governance import register_governance_contracts


def main() -> None:
    rng = np.random.default_rng(17)
    registry = default_registry()
    register_governance_contracts(registry)
    chain = Blockchain(
        ProofOfAuthority.with_generated_validators(3, rng),
        registry=registry,
    )
    platform = Wallet.generate(chain, rng, "platform")
    consumer = Wallet.generate(chain, rng, "consumer")
    provider = Wallet.generate(chain, rng, "provider")
    executor = Wallet.generate(chain, rng, "executor")
    for wallet in (platform, consumer, provider, executor):
        chain.state.credit(wallet.address, 10**12)

    # -- 1. the platform's token plumbing -------------------------------------
    token = platform.deploy_and_mine("erc20", name="PDS2 Reward",
                                     symbol="PDS", initial_supply=0,
                                     minter=platform.address)
    platform.call_and_mine(token, "mint", recipient=consumer.address,
                           amount=1_000_000)
    deed_minter = VM.contract_address_for(
        platform.address, chain.state.nonce_of(platform.address) + 1
    )
    nft_tx = platform.deploy("erc721", name="PDS2 Data Deed", symbol="DEED",
                             minter=deed_minter)
    chain.mine_block()
    nft = platform.deployed_address(nft_tx)
    data_registry = platform.deploy_and_mine("data_registry",
                                             deed_token=nft)
    print(f"reward token {token[:10]}…, deed registry {data_registry[:10]}…")

    # -- 2. dataset registration mints a deed -----------------------------------
    receipt = provider.call_and_mine(
        data_registry, "register_dataset", record_id="heart-rate-2026",
        content_hash="ab" * 32, annotation_hash="cd" * 32,
        size_bytes=48_000,
    )
    deed_id = receipt.return_value
    print(f"provider registered dataset, deed NFT #{deed_id} owned by "
          f"{provider.view(nft, 'owner_of', token_id=deed_id)[:10]}…")

    # -- 3+4. a token-funded workload, end to end ---------------------------------
    workload_address = VM.contract_address_for(
        consumer.address, chain.state.nonce_of(consumer.address) + 1
    )
    consumer.call(token, "approve", spender=workload_address,
                  amount=100_000)
    workload_tx = consumer.deploy(
        "workload", spec_hash="11" * 32, code_measurement="22" * 32,
        min_providers=1, min_samples=10, infra_share_bps=1_000,
        required_confirmations=1, reward_token=token,
        reward_amount=100_000,
    )
    chain.mine_block()
    workload = consumer.deployed_address(workload_tx)
    print(f"\nworkload escrowed 100,000 PDS at {workload[:10]}… "
          f"(contract token balance: "
          f"{consumer.view(token, 'balance_of', owner=workload):,})")

    executor.call_and_mine(workload, "register_executor",
                           claimed_measurement="22" * 32)
    executor.call_and_mine(workload, "submit_participation",
                           provider=provider.address,
                           certificate_hash="c1", data_root="ab" * 32,
                           item_count=50)
    consumer.call_and_mine(workload, "start_execution")
    executor.call_and_mine(workload, "submit_result",
                           result_hash="rr" * 16,
                           provider_weights_bps={provider.address: 10_000})
    print("after completion:")
    for name, wallet in (("provider", provider), ("executor", executor),
                         ("consumer", consumer)):
        balance = consumer.view(token, "balance_of", owner=wallet.address)
        print(f"  {name:<9} {balance:>9,} PDS")
    print(f"  total supply conserved: "
          f"{consumer.view(token, 'total_supply'):,} PDS")

    # -- 5. deadline expiry refunds an unserved workload ----------------------------
    second_address = VM.contract_address_for(
        consumer.address, chain.state.nonce_of(consumer.address) + 1
    )
    consumer.call(token, "approve", spender=second_address, amount=50_000)
    second_tx = consumer.deploy(
        "workload", spec_hash="33" * 32, code_measurement="44" * 32,
        min_providers=5, min_samples=1_000, reward_token=token,
        reward_amount=50_000, deadline_blocks=3,
    )
    chain.mine_block()
    second = consumer.deployed_address(second_tx)
    before = consumer.view(token, "balance_of", owner=consumer.address)
    for _ in range(3):
        chain.mine_block()
    executor.call_and_mine(second, "expire")  # anyone may trigger it
    after = consumer.view(token, "balance_of", owner=consumer.address)
    print(f"\nsecond workload found no providers; expired after deadline, "
          f"refunding {after - before:,} PDS")
    chain.verify_chain()
    print("chain verifies end to end.")


if __name__ == "__main__":
    main()
