"""Privacy-leak control: measuring and mitigating training leakage.

Paper Section IV-D: workload outputs can leak provider data, executors
should assess the risk and apply mitigations.  This example walks the full
loop on a deliberately dangerous workload:

1. the static risk analyzer flags an overparameterized full-model release;
2. a membership-inference attack measures the actual leak of the
   non-private model;
3. DP-SGD retrains at several epsilon budgets, showing the attack advantage
   collapse toward zero as epsilon tightens, at a measurable accuracy cost.

Run with::

    python examples/private_training.py
"""

from __future__ import annotations

import numpy as np

from repro.ml.datasets import make_binary_classification
from repro.ml.models import MLPClassifier
from repro.privacy.attacks import membership_inference_attack
from repro.privacy.dpsgd import (
    DPSGDConfig,
    noise_multiplier_for_epsilon,
    train_dpsgd,
)
from repro.privacy.leakage import (
    OutputKind,
    WorkloadRiskProfile,
    assess_workload,
)

MEMBERS = 60
STEPS = 400
BATCH = 12  # small sampling rate keeps tight epsilons reachable


def attack(model, members, nonmembers):
    return membership_inference_attack(
        model, members.features, members.targets.astype(int),
        nonmembers.features, nonmembers.targets.astype(int),
    )


def main() -> None:
    rng = np.random.default_rng(77)
    # Heavy label noise forces memorization — the worst case for leakage.
    data = make_binary_classification(4 * MEMBERS, 8, rng, noise=4.0)
    members = data.subset(np.arange(0, MEMBERS))
    nonmembers = data.subset(np.arange(MEMBERS, 2 * MEMBERS))
    test = data.subset(np.arange(2 * MEMBERS, 4 * MEMBERS))

    def fresh_model():
        return MLPClassifier(8, 64, 2, init_rng=np.random.default_rng(1))

    # -- 1. static risk assessment --------------------------------------------
    profile = WorkloadRiskProfile(
        model_parameters=fresh_model().num_params,
        training_samples=MEMBERS,
        num_providers=4,
        output_kind=OutputKind.FULL_MODEL,
    )
    verdict = assess_workload(profile)
    print("static analysis of the workload (Section IV-D):")
    print(f"  params/sample capacity score: {verdict.capacity_score:.2f}")
    print(f"  output richness score:        {verdict.output_score:.2f}")
    print(f"  provider concentration score: {verdict.concentration_score:.2f}")
    print(f"  total risk {verdict.risk_score:.2f} -> recommended mitigation:"
          f" {verdict.mitigation.value}\n")

    # -- 2. the non-private baseline actually leaks -----------------------------
    baseline = fresh_model()
    baseline.train_steps(members.features, members.targets.astype(int),
                         steps=2000, learning_rate=0.3, batch_size=MEMBERS,
                         rng=np.random.default_rng(2))
    leak = attack(baseline, members, nonmembers)
    base_acc = baseline.score(test.features, test.targets.astype(int))
    print("membership-inference attack on the non-private model:")
    print(f"  attack AUC {leak.auc:.3f}, advantage {leak.advantage:.3f}, "
          f"test accuracy {base_acc:.3f}")
    print(f"  member mean loss {leak.member_mean_loss:.4f} vs non-member "
          f"{leak.nonmember_mean_loss:.4f}\n")

    # -- 3. DP-SGD mitigation sweep ----------------------------------------------
    print("DP-SGD retraining (the REQUIRE_DP mitigation):")
    print(f"  {'target eps':>10} {'noise':>8} {'attack adv':>11} "
          f"{'attack AUC':>11} {'test acc':>9}")
    sampling_rate = BATCH / MEMBERS
    for target_epsilon in (8.0, 4.0, 2.0, 1.0, 0.5):
        noise = noise_multiplier_for_epsilon(target_epsilon, sampling_rate,
                                             STEPS)
        model = fresh_model()
        result = train_dpsgd(
            model, members.features, members.targets.astype(int),
            DPSGDConfig(clip_norm=1.0, noise_multiplier=noise,
                        learning_rate=0.3, batch_size=BATCH, steps=STEPS),
            np.random.default_rng(3),
        )
        dp_leak = attack(model, members, nonmembers)
        accuracy = model.score(test.features, test.targets.astype(int))
        print(f"  {result.epsilon:>10.2f} {noise:>8.2f} "
              f"{dp_leak.advantage:>11.3f} {dp_leak.auc:>11.3f} "
              f"{accuracy:>9.3f}")

    print("\ntightening epsilon drives the attacker toward coin-flipping "
          "(advantage ~0, AUC ~0.5),")
    print("trading away accuracy on this memorization-only task — the "
          "Section IV-D trade-off.")


if __name__ == "__main__":
    main()
