"""Quickstart: one workload through the full PDS2 marketplace.

Builds a marketplace with eight wearable-device providers, one research-lab
consumer, and two TEE executors, then runs the complete Fig. 2 lifecycle:
contract deployment, semantic matching, attestation, encrypted data
submission with participation certificates, enclave training, quorum result
confirmation, reward payout, and a trustless audit.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import Marketplace, ModelSpec, TrainingSpec, WorkloadSpec
from repro.ml.datasets import (
    HAR_ACTIVITIES,
    make_iot_activity,
    split_dirichlet,
    train_test_split,
)
from repro.storage.semantic import ConceptRequirement, SemanticAnnotation


def main() -> None:
    rng = np.random.default_rng(2026)

    # -- the data: activity windows from personal wearables ------------------
    data = make_iot_activity(2400, rng)
    train, validation = train_test_split(data, 0.25, rng)
    partitions = split_dirichlet(train, 8, alpha=1.0, rng=rng,
                                 min_samples=30)

    # -- the marketplace ------------------------------------------------------
    market = Marketplace(seed=42)
    for index, partition in enumerate(partitions):
        market.add_provider(
            name=f"wearable-user-{index}",
            dataset=partition,
            annotation=SemanticAnnotation("heart_rate",
                                          {"rate_hz": 1.0, "region": "EU"}),
        )
    consumer = market.add_consumer("research-lab", validation=validation)
    for index in range(2):
        market.add_executor(f"executor-{index}")

    # -- the workload contract -------------------------------------------------
    spec = WorkloadSpec(
        workload_id="activity-recognition-v1",
        description="Train an activity classifier on wearable sensor data",
        requirement=ConceptRequirement("physiological"),
        model=ModelSpec(family="softmax", num_features=6,
                        num_classes=len(HAR_ACTIVITIES)),
        training=TrainingSpec(steps=200, learning_rate=0.3, batch_size=32),
        reward_pool=1_000_000,
        min_providers=5,
        min_samples=500,
        infra_share_bps=1_000,
        required_confirmations=2,
    )

    print(f"submitting workload {spec.workload_id!r} "
          f"(spec hash {spec.spec_hash[:16]}…)")
    report = market.run_workload(consumer, spec)

    print(f"\nworkload contract: {report.workload_address}")
    print(f"participants:      {len(report.participants)} providers")
    print(f"model accuracy:    {report.consumer_score:.3f} "
          "(consumer validation set)")
    print(f"result hash:       {report.result_hash[:16]}…")
    print(f"gas consumed:      {report.gas_used:,} over "
          f"{report.blocks_mined} blocks")

    print("\nreward payouts:")
    for address, amount in sorted(report.payouts.items(),
                                  key=lambda item: -item[1]):
        share = amount / spec.reward_pool
        print(f"  {address[:10]}…  {amount:>9,} tokens  ({share:6.2%})")
    print(f"  total            {report.total_paid:>9,} tokens")

    audit = report.audit
    print(f"\naudit: clean={audit.clean} chain_valid={audit.chain_valid} "
          f"rewards_conserved={audit.rewards_conserved} "
          f"certificates={audit.certificates}")


if __name__ == "__main__":
    main()
