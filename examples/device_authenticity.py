"""Data authenticity and trustless audit (paper Sections IV-B, II-E).

A fleet of manufacturer-certified IoT sensors streams signed readings while
an adversary injects forgeries, tampered values and duplicate resales.  The
executor-side verifier must reject every attack while accepting every honest
reading.  The second half demonstrates the user-centered storage options of
Fig. 3: the same data held on the owner's encrypted hardware, a decentralized
swarm, and an untrusted cloud with key-keeper escrow — with confidentiality
checked at each.

Run with::

    python examples/device_authenticity.py
"""

from __future__ import annotations

import numpy as np

from repro.identity.authenticity import (
    AuthenticityVerifier,
    simulate_adversarial_stream,
)
from repro.identity.device import Manufacturer, ManufacturerRegistry
from repro.storage.cloud import CloudStore
from repro.storage.local import LocalEncryptedStore
from repro.storage.swarm import SwarmStore


def authenticity_demo(rng) -> None:
    print("=== authenticity: certified devices vs an active adversary ===")
    registry = ManufacturerRegistry()
    trusted = Manufacturer("sensorcorp", b"sensorcorp-root",
                           trust_score=0.95)
    registry.register(trusted)

    verifier = AuthenticityVerifier(registry)
    total_honest = 0
    total_attacks = 0
    for device_index in range(5):
        device = trusted.build_device(f"SC-{device_index:04d}")
        stream = simulate_adversarial_stream(
            device, honest_count=100, attack_rate=0.3, rng=rng,
            start_time=device_index * 1000.0,
        )
        total_honest += sum(1 for _, is_attack in stream if not is_attack)
        total_attacks += sum(1 for _, is_attack in stream if is_attack)
        verifier.verify_batch(
            [(reading, device.certificate) for reading, _ in stream]
        )
    print(f"honest readings: {total_honest}, attacks injected: "
          f"{total_attacks}")
    print(f"accepted: {verifier.stats.accepted}, rejected: "
          f"{verifier.stats.total_rejected}")
    for reason, count in sorted(verifier.stats.rejected.items()):
        print(f"  rejected as {reason}: {count}")
    detected = verifier.stats.total_rejected == total_attacks
    clean = verifier.stats.accepted == total_honest
    print(f"perfect precision/recall: {detected and clean}")

    # Devices from an unregistered manufacturer are refused wholesale.
    knockoff = Manufacturer("knockoff-inc", b"knockoff-root")
    fake_device = knockoff.build_device("KO-1")
    reading = fake_device.produce_reading({"t": 20.0}, timestamp=1.0)
    try:
        verifier.verify(reading, fake_device.certificate)
    except Exception as exc:  # noqa: BLE001 - demo output
        print(f"knockoff device rejected: {exc}\n")


def storage_demo(rng) -> None:
    print("=== storage: the three Fig. 3 hardware configurations ===")
    owner = "0x" + "ab" * 20
    executor = "0x" + "cd" * 20
    payload = b'{"acc_mean":0.43,"heart_rate":96.0,"label":"walking"}' * 50

    local = LocalEncryptedStore(owner, rng)
    object_id = local.put(payload, owner)
    print(f"(a) owner hardware: stored {len(payload)} B, at-rest bytes are "
          f"ciphertext: {local.verify_at_rest_confidentiality(object_id)}")
    local.grant(object_id, owner, executor)
    print(f"    granted executor read: "
          f"{local.get(object_id, executor) == payload}")

    swarm = SwarmStore(num_nodes=12, rng=rng, replication=3, chunk_size=256)
    swarm_id = swarm.put(payload, owner)
    swarm.grant(swarm_id, owner, executor)
    swarm.fail_nodes(3, rng)
    print(f"(b) swarm: {len(payload)} B over 12 nodes (3 failed), "
          f"retrievable: {swarm.get(swarm_id, executor) == payload}, "
          f"chunk availability {swarm.chunk_availability(swarm_id):.0%}")

    cloud = CloudStore(keepers=5, threshold=3, rng=rng)
    cloud_id = cloud.put(payload, owner)
    cloud.grant(cloud_id, owner, executor)
    visible = cloud.cloud_visible_bytes(cloud_id)
    print(f"(c) cloud + key keepers: operator stores {len(visible)} B of "
          f"ciphertext, plaintext hidden: {payload[:20] not in visible}")
    cloud.fail_keepers(2)
    print(f"    2 of 5 keepers down, executor still reads: "
          f"{cloud.get(cloud_id, executor) == payload}")
    cloud.fail_keepers(3)
    try:
        cloud.get(cloud_id, executor)
    except Exception as exc:  # noqa: BLE001 - demo output
        print(f"    below keeper threshold: {type(exc).__name__}")


def main() -> None:
    rng = np.random.default_rng(99)
    authenticity_demo(rng)
    storage_demo(rng)


if __name__ == "__main__":
    main()
