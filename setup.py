"""Legacy setup shim.

Allows ``pip install -e . --no-use-pep517`` in environments without the
``wheel`` package (such as offline benchmark machines); all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
