"""Exception hierarchy for the PDS2 reproduction.

Every subsystem raises exceptions derived from :class:`PDS2Error`, so callers
can catch platform failures without catching unrelated Python errors.  The
hierarchy mirrors the subsystem layout: crypto, chain, governance, tee,
storage, ml, privacy, rewards, identity and core each have a dedicated branch.
"""

from __future__ import annotations


class PDS2Error(Exception):
    """Base class for every error raised by the PDS2 platform."""


# ---------------------------------------------------------------------------
# Cryptographic substrate
# ---------------------------------------------------------------------------


class CryptoError(PDS2Error):
    """Base class for failures in the cryptographic substrate."""


class InvalidSignatureError(CryptoError):
    """A signature failed verification against the claimed public key."""


class InvalidKeyError(CryptoError):
    """A key is malformed, out of range, or inconsistent with its curve."""


class DecryptionError(CryptoError):
    """Ciphertext could not be decrypted (wrong key, tampered payload)."""


class SecretSharingError(CryptoError):
    """Secret shares are inconsistent, insufficient, or malformed."""


class MerkleProofError(CryptoError):
    """A Merkle inclusion proof does not verify against the stated root."""


# ---------------------------------------------------------------------------
# Blockchain substrate
# ---------------------------------------------------------------------------


class ChainError(PDS2Error):
    """Base class for blockchain-substrate failures."""


class InvalidTransactionError(ChainError):
    """A transaction is malformed, unsigned, or replayed (bad nonce)."""


class InsufficientBalanceError(ChainError):
    """An account cannot cover a transfer value plus gas."""


class OutOfGasError(ChainError):
    """Contract execution exceeded the transaction gas limit."""


class ContractError(ChainError):
    """A contract call reverted.

    Mirrors Solidity's ``revert``: all state changes from the call are rolled
    back and the message explains the violated rule.
    """


class InvalidBlockError(ChainError):
    """A block fails structural or consensus validation."""


class UnknownContractError(ChainError):
    """A call targets an address with no deployed contract."""


# ---------------------------------------------------------------------------
# Governance layer
# ---------------------------------------------------------------------------


class GovernanceError(PDS2Error):
    """Base class for governance-layer rule violations."""


class WorkloadStateError(GovernanceError):
    """An operation is illegal in the workload's current lifecycle state."""


class CertificateError(GovernanceError):
    """A participation certificate is invalid, expired, or mis-signed."""


class AuditError(GovernanceError):
    """The audit trail is inconsistent with the recorded chain state."""


# ---------------------------------------------------------------------------
# Trusted execution environments
# ---------------------------------------------------------------------------


class TEEError(PDS2Error):
    """Base class for TEE failures."""


class AttestationError(TEEError):
    """An enclave quote failed remote attestation."""


class SealingError(TEEError):
    """Sealed data could not be unsealed (wrong enclave measurement)."""


class EnclaveViolationError(TEEError):
    """Code attempted an operation forbidden inside the enclave."""


# ---------------------------------------------------------------------------
# Storage subsystem
# ---------------------------------------------------------------------------


class StorageError(PDS2Error):
    """Base class for storage-subsystem failures."""


class ObjectNotFoundError(StorageError):
    """No object exists under the requested content address or key."""


class AccessDeniedError(StorageError):
    """The caller is not authorized to read the requested object."""


class IntegrityError(StorageError):
    """Stored bytes do not match their content address or checksum."""


# ---------------------------------------------------------------------------
# Machine learning / network substrate
# ---------------------------------------------------------------------------


class MLError(PDS2Error):
    """Base class for decentralized-ML failures."""


class ModelCompatibilityError(MLError):
    """Two models cannot be merged (different shapes or families)."""


class SimulationError(PDS2Error):
    """The discrete-event network simulation reached an invalid state."""


# ---------------------------------------------------------------------------
# Privacy
# ---------------------------------------------------------------------------


class PrivacyError(PDS2Error):
    """Base class for differential-privacy failures."""


class PrivacyBudgetExceededError(PrivacyError):
    """An operation would exceed the accountant's (epsilon, delta) budget."""


# ---------------------------------------------------------------------------
# Rewards
# ---------------------------------------------------------------------------


class RewardError(PDS2Error):
    """Base class for reward-scheme failures."""


# ---------------------------------------------------------------------------
# Identity / authenticity
# ---------------------------------------------------------------------------


class IdentityError(PDS2Error):
    """Base class for device-identity and data-authenticity failures."""


class AuthenticityError(IdentityError):
    """A data point failed authenticity verification (forgery, replay)."""


# ---------------------------------------------------------------------------
# Marketplace core
# ---------------------------------------------------------------------------


class MarketplaceError(PDS2Error):
    """Base class for marketplace-core failures."""


class MatchingError(MarketplaceError):
    """No valid provider/executor assignment satisfies the workload spec."""


class WorkloadSpecError(MarketplaceError):
    """A workload specification is malformed or self-contradictory."""
