"""Exception hierarchy for the PDS2 reproduction.

Every subsystem raises exceptions derived from :class:`PDS2Error`, so callers
can catch platform failures without catching unrelated Python errors.  The
hierarchy mirrors the subsystem layout: crypto, chain, governance, tee,
storage, ml, privacy, rewards, identity and core each have a dedicated branch.
"""

from __future__ import annotations


class PDS2Error(Exception):
    """Base class for every error raised by the PDS2 platform."""


# ---------------------------------------------------------------------------
# Cryptographic substrate
# ---------------------------------------------------------------------------


class CryptoError(PDS2Error):
    """Base class for failures in the cryptographic substrate."""


class InvalidSignatureError(CryptoError):
    """A signature failed verification against the claimed public key."""


class InvalidKeyError(CryptoError):
    """A key is malformed, out of range, or inconsistent with its curve."""


class DecryptionError(CryptoError):
    """Ciphertext could not be decrypted (wrong key, tampered payload)."""


class SecretSharingError(CryptoError):
    """Secret shares are inconsistent, insufficient, or malformed."""


class MerkleProofError(CryptoError):
    """A Merkle inclusion proof does not verify against the stated root."""


# ---------------------------------------------------------------------------
# Blockchain substrate
# ---------------------------------------------------------------------------


class ChainError(PDS2Error):
    """Base class for blockchain-substrate failures."""


class InvalidTransactionError(ChainError):
    """A transaction is malformed, unsigned, or replayed (bad nonce)."""


class DuplicateTransactionError(InvalidTransactionError):
    """A transaction with this hash is already pooled or already mined."""


class UnderpricedReplacementError(InvalidTransactionError):
    """A same-nonce replacement did not raise the gas price enough."""


class InsufficientBalanceError(ChainError):
    """An account cannot cover a transfer value plus gas."""


class OutOfGasError(ChainError):
    """Contract execution exceeded the transaction gas limit."""


class ContractError(ChainError):
    """A contract call reverted.

    Mirrors Solidity's ``revert``: all state changes from the call are rolled
    back and the message explains the violated rule.
    """


class InvalidBlockError(ChainError):
    """A block fails structural or consensus validation."""


class ChainAuditError(ChainError):
    """The continuous invariant auditor found a violation (strict mode)."""


class UnknownContractError(ChainError):
    """A call targets an address with no deployed contract."""


# ---------------------------------------------------------------------------
# Governance layer
# ---------------------------------------------------------------------------


class GovernanceError(PDS2Error):
    """Base class for governance-layer rule violations."""


class WorkloadStateError(GovernanceError):
    """An operation is illegal in the workload's current lifecycle state."""


class CertificateError(GovernanceError):
    """A participation certificate is invalid, expired, or mis-signed."""


class AuditError(GovernanceError):
    """The audit trail is inconsistent with the recorded chain state."""


# ---------------------------------------------------------------------------
# Trusted execution environments
# ---------------------------------------------------------------------------


class TEEError(PDS2Error):
    """Base class for TEE failures."""


class AttestationError(TEEError):
    """An enclave quote failed remote attestation."""


class SealingError(TEEError):
    """Sealed data could not be unsealed (wrong enclave measurement)."""


class EnclaveViolationError(TEEError):
    """Code attempted an operation forbidden inside the enclave."""


# ---------------------------------------------------------------------------
# Storage subsystem
# ---------------------------------------------------------------------------


class StorageError(PDS2Error):
    """Base class for storage-subsystem failures."""


class ObjectNotFoundError(StorageError):
    """No object exists under the requested content address or key."""


class AccessDeniedError(StorageError):
    """The caller is not authorized to read the requested object."""


class IntegrityError(StorageError):
    """Stored bytes do not match their content address or checksum."""


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


class TelemetryError(PDS2Error):
    """Misuse of the telemetry layer (metric type/label conflicts,
    label-cardinality explosions, malformed exports)."""


# ---------------------------------------------------------------------------
# Machine learning / network substrate
# ---------------------------------------------------------------------------


class MLError(PDS2Error):
    """Base class for decentralized-ML failures."""


class ModelCompatibilityError(MLError):
    """Two models cannot be merged (different shapes or families)."""


class SimulationError(PDS2Error):
    """The discrete-event network simulation reached an invalid state."""


# ---------------------------------------------------------------------------
# Privacy
# ---------------------------------------------------------------------------


class PrivacyError(PDS2Error):
    """Base class for differential-privacy failures."""


class PrivacyBudgetExceededError(PrivacyError):
    """An operation would exceed the accountant's (epsilon, delta) budget."""


# ---------------------------------------------------------------------------
# Rewards
# ---------------------------------------------------------------------------


class RewardError(PDS2Error):
    """Base class for reward-scheme failures."""


# ---------------------------------------------------------------------------
# Identity / authenticity
# ---------------------------------------------------------------------------


class IdentityError(PDS2Error):
    """Base class for device-identity and data-authenticity failures."""


class AuthenticityError(IdentityError):
    """A data point failed authenticity verification (forgery, replay)."""


# ---------------------------------------------------------------------------
# Marketplace core
# ---------------------------------------------------------------------------


class MarketplaceError(PDS2Error):
    """Base class for marketplace-core failures."""


class MatchingError(MarketplaceError):
    """No valid provider/executor assignment satisfies the workload spec."""


class WorkloadSpecError(MarketplaceError):
    """A workload specification is malformed or self-contradictory."""


# ---------------------------------------------------------------------------
# Workload lifecycle engine
# ---------------------------------------------------------------------------


class CheckpointError(MarketplaceError):
    """A session checkpoint cannot be produced, parsed, or restored.

    Raised on format/version mismatches, on spec-hash divergence between a
    checkpoint and the workload kind it is restored against, and when a
    checkpoint references actors or contracts the target marketplace does
    not know (the signature of rehydrating against the wrong market)."""


# ---------------------------------------------------------------------------
# Batch control plane
# ---------------------------------------------------------------------------


class ControlPlaneError(PDS2Error):
    """Base class for batch control-plane failures."""


class JobsDBError(ControlPlaneError):
    """The jobs database journal or index is malformed or inconsistent."""


class BatchError(ControlPlaneError):
    """A batch execution reached an invalid state (bad transition,
    unknown job, exhausted retry budget, operator kill)."""


class LifecycleError(MarketplaceError):
    """A workload lifecycle phase failed.

    Carries a ``snapshot`` of the session at the moment of failure (session
    id, phase, workload address, participants, gas so far), so callers and
    the adversary harness can inspect exactly where a run died without
    parsing the message.  One subclass exists per lifecycle phase.
    """

    #: The lifecycle phase this error class belongs to.
    phase: str = ""

    def __init__(self, message: str, snapshot: dict | None = None):
        super().__init__(message)
        self.snapshot: dict = dict(snapshot or {})


class TransitionError(LifecycleError):
    """The engine attempted a transition the phase table does not allow."""


class DeployFailure(LifecycleError):
    """Deploying the workload contract (or validating the run) failed."""

    phase = "deploy"


class MatchFailure(LifecycleError, MatchingError):
    """Provider matching found fewer willing providers than required."""

    phase = "match"


class RegistrationFailure(LifecycleError):
    """Executor enclave launch or on-chain registration failed."""

    phase = "register_executors"


class SubmissionFailure(LifecycleError):
    """Attestation or certified data submission failed."""

    phase = "attest_and_submit"


class StartFailure(LifecycleError):
    """The consumer could not start execution."""

    phase = "start_execution"


class ExecutionFailure(LifecycleError):
    """An enclave failed while executing the workload."""

    phase = "execute"


class AggregationFailure(LifecycleError):
    """Combining enclave outputs or casting result votes failed."""

    phase = "aggregate"


class SettlementFailure(LifecycleError):
    """The contract did not reach completion, or payout collection failed."""

    phase = "settle"


class AuditFailure(LifecycleError):
    """The post-completion audit could not be produced."""

    phase = "audit"


class SessionPaused(PDS2Error):
    """A phase-boundary hook stopped the session for checkpointing.

    Deliberately *not* a :class:`LifecycleError`: pausing is not a phase
    failure, so it must never trigger the recovery policy or escrow
    release.  The session object stays resumable — serialize it with
    ``WorkloadSession.checkpoint()`` and continue via ``restore_session``.
    """

    def __init__(self, message: str, *, phase: str = "", next_phase: str = ""):
        super().__init__(message)
        self.phase = phase
        self.next_phase = next_phase


class InjectedFaultError(LifecycleError):
    """A fault injected by the resilience harness fired.

    Carries enough structure for a recovery policy to pick the right
    remedy without parsing the message: ``point`` is the named injection
    point, ``transient`` marks faults a plain retry can clear, and
    ``dead_executor`` / ``provider`` name the actor the fault took down
    (addresses, empty when not applicable).
    """

    def __init__(self, message: str, snapshot: dict | None = None, *,
                 point: str = "", transient: bool = False,
                 dead_executor: str = "", provider: str = ""):
        super().__init__(message, snapshot=snapshot)
        self.point = point
        self.transient = transient
        self.dead_executor = dead_executor
        self.provider = provider
