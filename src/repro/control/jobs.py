"""Job specifications and results: the unit of work the control plane moves.

A :class:`JobSpec` is a *self-contained, deterministic* description of one
workload session: seed, workload handler name, handler parameters, and the
fault-injection rate.  Self-contained matters — any worker process (or the
single-process baseline) must be able to rebuild the exact same marketplace
and fault plan from the spec alone, which is what makes sharding, dead-worker
re-queue and replay-based resume sound.  Fault plans derive from the spec id
via :func:`repro.core.resilience.job_fault_seed`, never from process state.

A :class:`JobResult` is the terminal record a handler returns: the outcome
class, a canonical ``result_digest`` over every seed-determined settlement
field (the byte-identity witness the E21 acceptance criterion compares
across sharded and baseline runs), and accounting counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from hashlib import sha256
from typing import Any, Mapping

from repro.errors import JobsDBError
from repro.utils.serialization import canonical_json_bytes

#: Job outcomes.  ``settled``/``settled_degraded`` are successes; ``failed``
#: is a *deterministic* lifecycle failure (e.g. an unrecoverable injected
#: fault) — expected for intentionally-faulted jobs; ``error`` is an
#: unexpected handler/infrastructure failure and always fails the batch.
JOB_SETTLED = "settled"
JOB_SETTLED_DEGRADED = "settled_degraded"
JOB_FAILED = "failed"
JOB_ERROR = "error"
JOB_OUTCOMES = (JOB_SETTLED, JOB_SETTLED_DEGRADED, JOB_FAILED, JOB_ERROR)


@dataclass(frozen=True)
class JobSpec:
    """One deterministic unit of batch work."""

    job_id: str
    seed: int
    #: Handler name in the supervisor registry (see ``repro.control
    #: .supervisor``); the default handler runs one ML training lifecycle.
    workload: str = "ml-train"
    #: Handler-specific parameters (provider/executor counts, samples,
    #: steps…).  Must be canonically serializable.
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Per-actor fault probability; 0 disables injection.  The plan is
    #: drawn from ``job_fault_seed(job_id)`` so it is shard-invariant.
    fault_rate: float = 0.0
    #: Arm the recovery policy (False reproduces the fail-fast baseline).
    recover: bool = True
    #: W3C-style traceparent the coordinator stamps at assignment time so
    #: the worker's spans join the batch trace.  Observability metadata,
    #: not identity: excluded from :meth:`spec_digest` (a traced and an
    #: untraced run of the same work are the same content) and from
    #: ``to_dict`` when empty, so submitted ``specs.jsonl`` bytes and all
    #: existing digests are unchanged.
    trace_parent: str = ""

    def __post_init__(self) -> None:
        if not self.job_id:
            raise JobsDBError("job_id must be non-empty")
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> dict:
        record = {
            "job_id": self.job_id,
            "seed": self.seed,
            "workload": self.workload,
            "params": dict(self.params),
            "fault_rate": self.fault_rate,
            "recover": self.recover,
        }
        if self.trace_parent:
            record["trace_parent"] = self.trace_parent
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "JobSpec":
        try:
            return cls(
                job_id=record["job_id"],
                seed=int(record["seed"]),
                workload=record.get("workload", "ml-train"),
                params=record.get("params", {}),
                fault_rate=float(record.get("fault_rate", 0.0)),
                recover=bool(record.get("recover", True)),
                trace_parent=str(record.get("trace_parent", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JobsDBError(f"malformed job spec: {exc}") from exc

    def with_trace_parent(self, trace_parent: str) -> "JobSpec":
        """A copy carrying trace context (same ``spec_digest``)."""
        return replace(self, trace_parent=trace_parent)

    def spec_digest(self) -> str:
        """Canonical content address of this spec (trace context excluded:
        the digest names the *work*, not how it is observed)."""
        payload = self.to_dict()
        payload.pop("trace_parent", None)
        return sha256(canonical_json_bytes(payload)).hexdigest()


@dataclass
class JobResult:
    """What one job terminated as (written to the journal and manifest)."""

    job_id: str
    outcome: str
    #: SHA-256 over the canonical settlement summary (see the supervisor's
    #: ``result_digest_of``): equal digests mean two runs of this job
    #: settled byte-identically.
    result_digest: str = ""
    session_id: str = ""
    gas_used: int = 0
    blocks_mined: int = 0
    faults_injected: int = 0
    recoveries: int = 0
    boundaries: int = 0
    #: Boundary index replay-verification resumed past (attempt > 1 only).
    resumed_boundary: int = -1
    attempt: int = 1
    worker: str = ""
    wall_s: float = 0.0
    error: str = ""

    def __post_init__(self) -> None:
        if self.outcome not in JOB_OUTCOMES:
            raise JobsDBError(f"unknown job outcome {self.outcome!r}")

    @property
    def ok(self) -> bool:
        return self.outcome in (JOB_SETTLED, JOB_SETTLED_DEGRADED)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "outcome": self.outcome,
            "result_digest": self.result_digest,
            "session_id": self.session_id,
            "gas_used": self.gas_used,
            "blocks_mined": self.blocks_mined,
            "faults_injected": self.faults_injected,
            "recoveries": self.recoveries,
            "boundaries": self.boundaries,
            "resumed_boundary": self.resumed_boundary,
            "attempt": self.attempt,
            "worker": self.worker,
            "wall_s": self.wall_s,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "JobResult":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in record.items() if k in known})
