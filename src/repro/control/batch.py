"""Batch execution: shard thousands of job specs across a worker pool.

The state machine (journaled into the batch's :class:`JobsDB`)::

    PENDING --start--> RUNNING --+--> DONE            all jobs settled
                                 +--> PARTIAL_FAILED  every failure is a
                                 |                    deterministic lifecycle
                                 |                    failure of a job that
                                 |                    had faults armed
                                 +--> FAILED          any unexpected error,
                                 |                    divergence, or attempt
                                 |                    exhaustion
                                 +--> FAILED          operator KILL sentinel

Crash-safety posture: the *only* shared IPC is each worker's private task
queue, with the coordinator as sole producer and that worker as sole
consumer — a SIGKILL can lose at most the victim's own in-flight job, which
the coordinator already tracks and re-queues.  Results do not travel over a
queue at all: workers journal ``done`` records into their own shard files
(flushed per line) and the coordinator *tails* the journal for complete
lines.  Dead workers are detected by ``Process.is_alive`` plus heartbeat
staleness (hung-but-alive); their jobs are re-queued with ``attempt + 1``
and the boundary digests the dead attempt journaled, so the replacement
attempt replay-verifies determinism as it resumes (see the supervisor).
Replacement workers get fresh ids — and therefore fresh journal shards —
so a half-written shard is never appended to by two writers.

Calling :func:`batch_execute` on a directory with prior progress *resumes*
it: settled jobs are skipped, unfinished jobs re-queued from their
journaled checkpoints.
"""

from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Callable, Optional, Sequence

from repro import telemetry
from repro.control.jobs import JOB_ERROR, JobResult, JobSpec
from repro.control.jobs_db import (
    BATCH_DONE,
    BATCH_FAILED,
    BATCH_PARTIAL_FAILED,
    BATCH_RUNNING,
    JobsDB,
)
from repro.control.supervisor import JobContext, run_job
from repro.errors import BatchError
from repro.telemetry.distributed import (
    TRACE_ANNOUNCE_RECORD,
    TRACE_EVENT_RECORD,
    CoordinatorSpanExporter,
    batch_trace_context,
)
from repro.utils.serialization import canonical_json_bytes

_JOBS_TOTAL = telemetry.counter(
    "pds2_batch_jobs_total", "Batch jobs by terminal outcome",
    labelnames=("outcome",))
_WORKER_DEATHS = telemetry.counter(
    "pds2_batch_worker_deaths_total", "Workers lost during batch execution",
    labelnames=("reason",))
_REQUEUES = telemetry.counter(
    "pds2_batch_requeues_total", "Jobs re-queued after losing their worker")
_BATCHES = telemetry.counter(
    "pds2_batch_batches_total", "Batch executions by terminal state",
    labelnames=("status",))

#: Queue poll / supervision cadence (seconds).
_POLL_S = 0.05
_HEARTBEAT_MIN_INTERVAL_S = 0.5


def submit_batch(root: str, specs: Sequence[JobSpec]) -> JobsDB:
    """Create a batch directory in the PENDING state."""
    return JobsDB.create(root, specs)


@contextmanager
def _exporting(span_tracer, exporter):
    """Attach a span exporter for the duration of the block (always
    detached, so a failed batch never leaks an exporter onto the
    process-wide tracer)."""
    span_tracer.add_exporter(exporter)
    try:
        yield
    finally:
        span_tracer.remove_exporter(exporter)


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_main(root: str, worker_id: str, task_queue) -> None:
    """Worker loop: pull (spec, attempt, resume digests), run, journal.

    All output goes through this worker's own journal shard; the terminal
    ``done`` record is the result hand-off.  Exits on the ``None`` sentinel.
    """
    # The fork inherits the coordinator's tracer *with its exporter
    # attached* (and the coordinator's open sidecar handle).  Drop it:
    # this process must only ever export through its own JobSpanExporter
    # into its own shard, or two processes interleave one file.
    telemetry.tracer().exporters.clear()
    db = JobsDB.open(root)
    last_beat = [0.0]

    def heartbeat(payload: dict) -> None:
        now = time.monotonic()
        if now - last_beat[0] >= _HEARTBEAT_MIN_INTERVAL_S:
            last_beat[0] = now
            db.heartbeat(worker_id, dict(payload, pid=os.getpid()))

    db.heartbeat(worker_id, {"status": "idle", "pid": os.getpid()})
    while True:
        item = task_queue.get()
        if item is None:
            break
        spec_record, attempt, resume_digests = item
        spec = JobSpec.from_dict(spec_record)
        db.heartbeat(worker_id, {"status": "busy", "job_id": spec.job_id,
                                 "pid": os.getpid()})
        last_beat[0] = time.monotonic()
        ctx = JobContext(
            db=db, shard=worker_id, worker=worker_id, attempt=attempt,
            resume_digests={int(k): v for k, v in resume_digests.items()},
            heartbeat=heartbeat,
            span_sink=db.span_writer(worker_id).append,
        )
        run_job(spec, ctx)
        db.heartbeat(worker_id, {"status": "idle", "pid": os.getpid()})
        last_beat[0] = time.monotonic()
    db.close()


class _JournalTail:
    """Incremental reader over the journal shards: only complete lines.

    A line missing its trailing newline is an in-progress (or torn) write;
    it is left pending and re-examined on the next poll.  Offsets only ever
    advance past ``\\n``, so a SIGKILLed writer's torn tail is simply never
    consumed.
    """

    def __init__(self, journal_dir: str):
        self.journal_dir = journal_dir
        self._offsets: dict[str, int] = {}

    def poll(self) -> list[dict]:
        records: list[dict] = []
        if not os.path.isdir(self.journal_dir):
            return records
        for name in sorted(os.listdir(self.journal_dir)):
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(self.journal_dir, name)
            offset = self._offsets.get(name, 0)
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read()
            end = data.rfind(b"\n")
            if end < 0:
                continue
            self._offsets[name] = offset + end + 1
            for line in data[:end + 1].splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:  # pragma: no cover - defensive
                    continue
        return records


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


@dataclass
class _Worker:
    worker_id: str
    process: object
    queue: object
    #: (spec, attempt, resume_digests) currently assigned, or None (idle).
    assigned: Optional[tuple] = None
    assigned_at: float = 0.0


@dataclass
class BatchReport:
    """What one :func:`batch_execute` call did."""

    status: str
    counts: dict[str, int]
    results: dict[str, JobResult]
    jobs: int
    workers: int
    worker_deaths: int
    requeues: int
    wall_s: float
    manifest_path: str = ""
    #: sha256 over the canonical {job_id: result_digest} mapping — two
    #: batch runs (or a batch and the single-process baseline) that agree
    #: here settled every session byte-identically.
    batch_digest: str = ""
    divergent: list[dict] = field(default_factory=list)
    aborted: bool = False
    #: Deterministic distributed-trace id (a digest of the spec digests).
    trace_id: str = ""


def batch_digest_of(results: dict[str, JobResult]) -> str:
    digests = {job_id: result.result_digest
               for job_id, result in results.items()}
    return sha256(canonical_json_bytes(digests)).hexdigest()


def batch_execute(root: str, workers: int = 4, *,
                  max_attempts: int = 3,
                  heartbeat_timeout_s: float = 60.0,
                  kill_after: Sequence[int] = (),
                  progress: Optional[Callable[[int, int], None]] = None,
                  ) -> BatchReport:
    """Run (or resume) every unfinished job in the batch at ``root``.

    ``kill_after`` is the chaos hook the CI smoke and E21 benchmark use:
    after the n-th result lands, one busy worker is SIGKILLed, exercising
    the dead-worker re-queue and replay-resume paths under realistic loss.
    """
    import multiprocessing

    if workers < 1:
        raise BatchError("batch_execute needs at least one worker")
    db = JobsDB.open(root)
    db.clear_kill()  # an explicit (re)start supersedes any older kill
    specs = {spec.job_id: spec for spec in db.specs()}
    index = db.compact(write=False)

    results: dict[str, JobResult] = db.results(index)
    checkpoints: dict[str, dict[int, str]] = {
        job_id: db.checkpoints_for(job_id, index) for job_id in specs
    }
    attempts: dict[str, int] = {
        job_id: entry.get("attempts", 0)
        for job_id, entry in index["jobs"].items()
    }
    pending = [job_id for job_id in specs if job_id not in results]
    total = len(specs)
    started = time.perf_counter()
    # The batch trace id digests the submitted spec digests, so workers
    # and offline assemblers derive the identical id from content alone.
    trace = batch_trace_context(
        spec.spec_digest() for spec in specs.values())
    db.append({"type": "batch", "status": BATCH_RUNNING, "jobs": total,
               "pending": len(pending), "workers": workers})
    db.append({"type": TRACE_ANNOUNCE_RECORD, "trace_id": trace.trace_id,
               "root_span_id": trace.span_id})

    mp = multiprocessing.get_context("fork")
    tail = _JournalTail(db.journal_dir)
    tail.poll()  # skip history: only records from this run onward
    pool: dict[str, _Worker] = {}
    next_worker = 0
    worker_deaths = 0
    requeues = 0
    done_this_run = 0
    reported_done = -1
    kill_thresholds = sorted(set(kill_after))
    aborted = False

    def spawn_worker() -> _Worker:
        nonlocal next_worker
        worker_id = f"w{next_worker}"
        next_worker += 1
        queue = mp.Queue()
        process = mp.Process(target=_worker_main, args=(root, worker_id, queue),
                             daemon=True)
        process.start()
        worker = _Worker(worker_id=worker_id, process=process, queue=queue)
        pool[worker_id] = worker
        return worker

    def assign(worker: _Worker, job_id: str) -> None:
        attempt = attempts.get(job_id, 0) + 1
        attempts[job_id] = attempt
        resume = {str(k): v for k, v in checkpoints.get(job_id, {}).items()}
        # Stamp trace context at assignment time (spec_digest unchanged).
        spec_record = (specs[job_id]
                       .with_trace_parent(trace.to_traceparent())
                       .to_dict())
        task = (spec_record, attempt, resume)
        worker.assigned = (job_id, attempt)
        worker.assigned_at = time.monotonic()
        db.append({"type": "job", "job_id": job_id, "status": "queued",
                   "attempt": attempt, "worker": worker.worker_id})
        worker.queue.put(task)

    def reap(worker: _Worker, reason: str) -> None:
        """A worker is gone: account for it and rescue its job."""
        nonlocal worker_deaths, requeues
        worker_deaths += 1
        deaths = _WORKER_DEATHS.labels(reason=reason)
        deaths.inc()
        deaths.set_exemplar(trace_id=trace.trace_id)
        span_sink({"type": TRACE_EVENT_RECORD, "name": "worker.lost",
                   "trace_id": trace.trace_id, "worker": worker.worker_id,
                   "reason": reason,
                   "job_id": worker.assigned[0] if worker.assigned else "",
                   "attempt": worker.assigned[1] if worker.assigned else 0})
        if worker.process.is_alive():  # hung, not dead: put it down
            os.kill(worker.process.pid, signal.SIGKILL)
        worker.process.join(timeout=5.0)
        worker.queue.close()
        del pool[worker.worker_id]
        if worker.assigned is not None:
            job_id, attempt = worker.assigned
            if job_id in results:
                return  # its done record landed before it died
            if attempt >= max_attempts:
                result = JobResult(
                    job_id=job_id, outcome=JOB_ERROR, attempt=attempt,
                    worker=worker.worker_id,
                    error=f"worker {worker.worker_id} lost ({reason}); "
                          f"attempt limit {max_attempts} reached",
                )
                db.append({"type": "job", "job_id": job_id, "status": "done",
                           "attempt": attempt, "worker": worker.worker_id,
                           "result": result.to_dict()})
                results[job_id] = result
                jobs_child = _JOBS_TOTAL.labels(outcome=JOB_ERROR)
                jobs_child.inc()
                jobs_child.set_exemplar(trace_id=trace.trace_id)
            else:
                requeues += 1
                _REQUEUES.inc()
                _REQUEUES.set_exemplar(trace_id=trace.trace_id)
                db.append({"type": "job", "job_id": job_id,
                           "status": "requeued", "attempt": attempt,
                           "worker": worker.worker_id})
                span_sink({"type": TRACE_EVENT_RECORD,
                           "name": "job.requeued",
                           "trace_id": trace.trace_id,
                           "worker": worker.worker_id,
                           "job_id": job_id, "attempt": attempt})
                pending.insert(0, job_id)

    span_sink = db.span_writer("coordinator").append
    exporter = CoordinatorSpanExporter(trace, span_sink)
    with _exporting(telemetry.tracer(), exporter), \
            telemetry.tracer().span("batch.execute", root=root, jobs=total,
                                    workers=workers,
                                    trace_id=trace.trace_id):
        for _ in range(min(workers, len(pending))):
            spawn_worker()
        try:
            while True:
                # 1. Ingest journal growth: results and fresh checkpoints.
                for record in tail.poll():
                    if record.get("type") != "job":
                        continue
                    job_id = record.get("job_id", "")
                    if record.get("status") == "checkpoint":
                        checkpoints.setdefault(job_id, {})[
                            int(record.get("boundary", 0))
                        ] = record.get("digest", "")
                    elif (record.get("status") == "done"
                          and job_id not in results):
                        result = JobResult.from_dict(record["result"])
                        results[job_id] = result
                        done_this_run += 1
                        jobs_child = _JOBS_TOTAL.labels(
                            outcome=result.outcome)
                        jobs_child.inc()
                        jobs_child.set_exemplar(trace_id=trace.trace_id)
                        for worker in pool.values():
                            if (worker.assigned is not None
                                    and worker.assigned[0] == job_id):
                                worker.assigned = None
                        if result.outcome == JOB_ERROR:
                            # Unexpected failure: no point burning the rest
                            # of the sweep; drain and report FAILED.
                            pending.clear()

                # 2. Chaos hook: SIGKILL one busy worker per threshold.
                while kill_thresholds and done_this_run >= kill_thresholds[0]:
                    victim = next((w for w in pool.values()
                                   if w.assigned is not None), None)
                    if victim is None:
                        break  # nobody busy right now; try again next poll
                    kill_thresholds.pop(0)
                    os.kill(victim.process.pid, signal.SIGKILL)
                    victim.process.join(timeout=5.0)
                    reap(victim, reason="chaos")

                # 3. Operator kill sentinel aborts the whole batch.
                if db.kill_requested() is not None:
                    aborted = True
                    break

                # 4. Dead or hung workers.
                beats = None
                for worker in list(pool.values()):
                    if not worker.process.is_alive():
                        reap(worker, reason="crash")
                        continue
                    if worker.assigned is not None:
                        if beats is None:
                            beats = db.read_heartbeats()
                        beat = beats.get(worker.worker_id, {})
                        seen = max(beat.get("ts", 0.0), 0.0)
                        busy_for = time.monotonic() - worker.assigned_at
                        if (busy_for > heartbeat_timeout_s
                                and time.time() - seen > heartbeat_timeout_s):
                            reap(worker, reason="hung")

                # 5. Keep the pool at strength while there is work left.
                outstanding = len(pending) + sum(
                    1 for w in pool.values() if w.assigned is not None)
                while pending and len(pool) < min(workers, outstanding):
                    spawn_worker()
                for worker in pool.values():
                    if worker.assigned is None and pending:
                        assign(worker, pending.pop(0))

                if progress is not None:
                    done_total = len(results)
                    if done_total != reported_done:
                        reported_done = done_total
                        progress(done_total, total)
                if not pending and all(w.assigned is None
                                       for w in pool.values()):
                    break
                time.sleep(_POLL_S)
        finally:
            for worker in pool.values():
                if worker.process.is_alive():
                    try:
                        worker.queue.put(None)
                    except (ValueError, OSError):  # pragma: no cover
                        pass
            for worker in pool.values():
                worker.process.join(timeout=10.0)
                if worker.process.is_alive():
                    os.kill(worker.process.pid, signal.SIGKILL)
                    worker.process.join(timeout=5.0)
                worker.queue.close()
            pool.clear()

    # -- settle the batch state machine -------------------------------------
    index = db.compact(write=True)
    status = _terminal_status(specs, results, aborted,
                              missing=[j for j in specs if j not in results])
    batches_child = _BATCHES.labels(status=status)
    batches_child.inc()
    batches_child.set_exemplar(trace_id=trace.trace_id)
    wall_s = time.perf_counter() - started
    counts: dict[str, int] = {}
    for result in results.values():
        counts[result.outcome] = counts.get(result.outcome, 0) + 1
    db.append({"type": "batch", "status": status, "jobs": total,
               "done": len(results), "worker_deaths": worker_deaths,
               "requeues": requeues, "wall_s": wall_s})
    db.compact(write=True)
    digest = batch_digest_of(results)
    manifest_path = db.write_manifest({
        "status": status,
        "trace_id": trace.trace_id,
        "jobs": total,
        "counts": counts,
        "worker_deaths": worker_deaths,
        "requeues": requeues,
        "workers": workers,
        "wall_s": wall_s,
        "batch_digest": digest,
        "divergent": index["divergent"],
        "results": {job_id: result.to_dict()
                    for job_id, result in sorted(results.items())},
    })
    sidecar = os.path.join(root, "manifest.metrics.json")
    with open(sidecar, "w", encoding="utf-8") as handle:
        json.dump(telemetry.snapshot(telemetry.REGISTRY), handle,
                  sort_keys=True, indent=2)
        handle.write("\n")
    db.close()
    return BatchReport(
        status=status, counts=counts, results=results, jobs=total,
        workers=workers, worker_deaths=worker_deaths, requeues=requeues,
        wall_s=wall_s, manifest_path=manifest_path, batch_digest=digest,
        divergent=list(index["divergent"]), aborted=aborted,
        trace_id=trace.trace_id,
    )


def _terminal_status(specs: dict[str, JobSpec],
                     results: dict[str, JobResult],
                     aborted: bool, missing: Sequence[str]) -> str:
    """PARTIAL_FAILED only when every failure was an *expected* one: a
    deterministic lifecycle failure of a job that had fault injection
    armed.  Anything else — handler errors, divergence, lost attempts,
    unfinished jobs, operator abort — is FAILED."""
    if aborted or missing:
        return BATCH_FAILED
    failures = [r for r in results.values() if not r.ok]
    if not failures:
        return BATCH_DONE
    for result in failures:
        spec = specs.get(result.job_id)
        if result.outcome != "failed" or spec is None or spec.fault_rate <= 0:
            return BATCH_FAILED
    return BATCH_PARTIAL_FAILED
