"""Job supervisor: handler registry + checkpointed single-job execution.

A *handler* turns one :class:`~repro.control.jobs.JobSpec` into one
:class:`~repro.control.jobs.JobResult`, building its entire world (market,
actors, fault plan) from the spec's seed so any process produces the same
bytes.  The built-in ``ml-train`` handler runs one lean training lifecycle —
the unit of work the E21 10k-session sweep shards.

:func:`run_job` wraps a handler with the control-plane contract:

* telemetry isolation — ``telemetry.reset()`` per job, because session-id
  context labels would otherwise blow the registry's ``MAX_LABEL_SETS``
  cardinality guard thousands of jobs into a sweep;
* boundary checkpoints — an ``on_phase_boundary`` hook journals the
  session's :meth:`SessionCheckpoint.digest` at every phase boundary;
* replay-verified resume — a re-queued attempt replays the job from its
  seed and *verifies* each boundary digest against what the dead worker
  journaled (live enclave/chain state dies with a process, so cross-process
  resume is deterministic replay, not state transplant).  A mismatch is a
  determinism violation and raises :class:`ControlPlaneError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Callable, Optional

import numpy as np

from repro import telemetry
from repro.control.jobs import JOB_ERROR, JobResult, JobSpec
from repro.control.jobs_db import JobsDB
from repro.errors import ControlPlaneError
from repro.utils.serialization import canonical_json_bytes

#: Handler registry: workload name -> callable(spec, ctx) -> JobResult.
HANDLERS: dict[str, Callable[["JobSpec", "JobContext"], JobResult]] = {}


def handler(name: str):
    """Register a workload handler under ``name`` (decorator)."""
    def register(func):
        HANDLERS[name] = func
        return func
    return register


@dataclass
class JobContext:
    """What the control plane threads into a handler invocation."""

    #: Journal destination; ``None`` runs the job bare (the single-process
    #: baseline path used for digest comparison).
    db: Optional[JobsDB] = None
    shard: str = ""
    worker: str = ""
    attempt: int = 1
    #: Boundary index -> digest journaled by a previous attempt; replay
    #: must reproduce these byte-for-byte before running past them.
    resume_digests: dict[int, str] = field(default_factory=dict)
    #: Liveness callback, invoked at each boundary (throttled by caller).
    heartbeat: Optional[Callable[[dict], None]] = None
    #: Where exported span records go (one dict per finished span); the
    #: worker points this at its ``spans/<worker>.jsonl`` sidecar.  None
    #: keeps tracing in-process only (the bare baseline path).
    span_sink: Optional[Callable[[dict], None]] = None

    def journal(self, record: dict) -> None:
        if self.db is not None:
            payload = dict(record)
            payload.setdefault("type", "job")
            payload.setdefault("worker", self.worker)
            payload.setdefault("attempt", self.attempt)
            self.db.append(payload, shard=self.shard or "coordinator")


class BoundaryRecorder:
    """The ``on_phase_boundary`` hook for one job attempt.

    Counts boundaries (the phase sequence is seed-deterministic, so the
    running index is a stable coordinate across attempts), journals each
    checkpoint digest, and cross-checks any digest a prior attempt already
    journaled at the same boundary.
    """

    def __init__(self, spec: JobSpec, ctx: JobContext):
        self.spec = spec
        self.ctx = ctx
        self.boundaries = 0
        self.resumed_boundary = -1

    def __call__(self, session, next_phase: str) -> None:
        from repro.core.checkpoint import checkpoint_session

        boundary = self.boundaries
        self.boundaries += 1
        digest = checkpoint_session(session).digest()
        expected = self.ctx.resume_digests.get(boundary)
        if expected is not None:
            if digest != expected:
                raise ControlPlaneError(
                    f"job {self.spec.job_id} diverged on replay at boundary "
                    f"{boundary} ({session.state} -> {next_phase}): "
                    f"journaled {expected[:12]}…, replayed {digest[:12]}…"
                )
            self.resumed_boundary = max(self.resumed_boundary, boundary)
        self.ctx.journal({
            "job_id": self.spec.job_id, "status": "checkpoint",
            "boundary": boundary, "phase": next_phase,
            "state": session.state, "digest": digest,
        })
        if self.ctx.heartbeat is not None:
            self.ctx.heartbeat({"job_id": self.spec.job_id,
                                "boundary": boundary})


def result_digest_of(outcome) -> str:
    """Canonical digest over every seed-determined settlement field.

    Equal digests between a sharded run and the single-process baseline is
    the E21 byte-identity acceptance criterion; wall clocks and worker
    identity deliberately excluded.
    """
    report = outcome.report
    summary = {
        "session_id": outcome.session_id,
        "outcome": outcome.outcome,
        "session_state": outcome.session_state,
        "contract_state": outcome.contract_state,
        "result_hash": "" if report is None else report.result_hash,
        "params": (None if report is None
                   else np.asarray(report.final_params, dtype=float)),
        "consumer_score": None if report is None else report.consumer_score,
        "weights_bps": {} if report is None else dict(report.weights_bps),
        "payouts": dict(outcome.payouts),
        "refunded": outcome.refunded,
        "degraded": outcome.degraded,
        "blacklisted": sorted(outcome.blacklisted),
        "dropped_providers": sorted(outcome.dropped_providers),
        "recoveries": outcome.recoveries,
        "injected": outcome.injected,
        "gas_used": outcome.gas_used,
        "blocks_mined": outcome.blocks_mined,
        "audit_clean": None if report is None else bool(report.audit.clean),
        "error": outcome.error,
    }
    return sha256(canonical_json_bytes(summary)).hexdigest()


# ---------------------------------------------------------------------------
# Built-in handler: one lean ML-training lifecycle per job
# ---------------------------------------------------------------------------

#: Calibrated for sweep throughput (~tens of ms/job): minimal quorum, one
#: validator, no deed minting, no private validation set.
ML_TRAIN_DEFAULTS = {
    "providers": 2,
    "executors": 2,
    "samples": 240,
    "steps": 12,
    "reward_pool": 600_000,
    "min_providers": 2,
    "min_samples": 20,
    "confirmations": 1,
    "validators": 1,
}


def build_ml_market(spec: JobSpec):
    """Deterministically rebuild the job's marketplace from its spec."""
    from repro.core import Marketplace, ModelSpec, TrainingSpec, WorkloadSpec
    from repro.ml.datasets import make_iot_activity, split_dirichlet
    from repro.storage.semantic import ConceptRequirement, SemanticAnnotation

    params = dict(ML_TRAIN_DEFAULTS)
    params.update(spec.params)
    rng = np.random.default_rng(spec.seed)
    data = make_iot_activity(int(params["samples"]), rng)
    parts = split_dirichlet(data, int(params["providers"]), 1.0, rng,
                            min_samples=15)
    market = Marketplace(seed=spec.seed, validators=int(params["validators"]),
                         mint_deeds=False)
    provider_names = tuple(f"u{i}" for i in range(int(params["providers"])))
    executor_names = tuple(f"e{i}" for i in range(int(params["executors"])))
    for index, part in enumerate(parts):
        market.add_provider(provider_names[index], part,
                            SemanticAnnotation("heart_rate", {}))
    consumer = market.add_consumer("c")
    for name in executor_names:
        market.add_executor(name)
    workload = WorkloadSpec(
        workload_id=f"wl-{spec.job_id}",
        requirement=ConceptRequirement("physiological"),
        model=ModelSpec(family="softmax", num_features=6, num_classes=5),
        training=TrainingSpec(steps=int(params["steps"]), learning_rate=0.3),
        reward_pool=int(params["reward_pool"]),
        min_providers=int(params["min_providers"]),
        min_samples=int(params["min_samples"]),
        required_confirmations=int(params["confirmations"]),
    )
    return market, consumer, workload, executor_names, provider_names


@handler("ml-train")
def run_ml_train(spec: JobSpec, ctx: JobContext) -> JobResult:
    """One full lifecycle session; faults drawn from the job's own seed."""
    from repro.core import FaultPlan, run_with_faults

    market, consumer, workload, executor_names, provider_names = (
        build_ml_market(spec)
    )
    plan = FaultPlan.for_job(spec.job_id, spec.fault_rate,
                             executor_names, provider_names)
    recorder = BoundaryRecorder(spec, ctx)
    outcome = run_with_faults(market, consumer, workload, plan,
                              recover=spec.recover,
                              on_phase_boundary=recorder)
    return JobResult(
        job_id=spec.job_id,
        outcome=outcome.outcome,
        result_digest=result_digest_of(outcome),
        session_id=outcome.session_id,
        gas_used=outcome.gas_used,
        blocks_mined=outcome.blocks_mined,
        faults_injected=len(outcome.injected),
        recoveries=len(outcome.recoveries),
        boundaries=recorder.boundaries,
        resumed_boundary=recorder.resumed_boundary,
        error=outcome.error,
    )


# ---------------------------------------------------------------------------
# The supervisor entry point
# ---------------------------------------------------------------------------


def run_job(spec: JobSpec, ctx: Optional[JobContext] = None) -> JobResult:
    """Execute one job under the control-plane contract.

    Never raises: an unknown workload or a handler exception (including
    replay divergence) terminates as outcome ``error``, which the batch
    state machine treats as fatal.  The terminal record is journaled here
    so a result survives even if the worker dies immediately after.
    """
    from repro.errors import TelemetryError
    from repro.telemetry.distributed import JobSpanExporter, TraceContext

    ctx = ctx if ctx is not None else JobContext()
    telemetry.reset()
    # Re-anchor the tracer's sim clock too: ``reset()`` leaves it bound to
    # the *previous* job's marketplace, so this job's root span would open
    # at whatever sim time that run ended on — making its sim_duration
    # depend on worker scheduling.  Zeroed here (and re-bound by the
    # handler's own Marketplace), the span's sim window is a pure function
    # of the job, which the critical-path determinism guarantee needs.
    telemetry.tracer().sim_clock = lambda: 0.0
    spec_digest = spec.spec_digest()
    trace: Optional[TraceContext] = None
    if spec.trace_parent:
        try:
            trace = TraceContext.from_traceparent(spec.trace_parent)
        except TelemetryError:
            trace = None  # a malformed traceparent must never fail the job
    exporter = None
    span_tracer = telemetry.tracer()
    if trace is not None and ctx.span_sink is not None:
        # telemetry.reset() restarts the tracer's local id counter, so the
        # exported span ids are pure functions of (trace, spec, attempt).
        exporter = JobSpanExporter(trace, spec.job_id, spec_digest,
                                   ctx.attempt, ctx.span_sink)
        span_tracer.add_exporter(exporter)
    started = time.perf_counter()
    ctx.journal({"job_id": spec.job_id, "status": "started",
                 "spec_digest": spec_digest})
    job_handler = HANDLERS.get(spec.workload)
    try:
        if trace is not None:
            span_tracer.context["trace_id"] = trace.trace_id
        if job_handler is None:
            raise ControlPlaneError(
                f"no handler registered for workload {spec.workload!r}"
            )
        with span_tracer.span("batch.job", job_id=spec.job_id,
                              workload=spec.workload, attempt=ctx.attempt):
            result = job_handler(spec, ctx)
    except Exception as exc:  # noqa: BLE001 - the journal is the report
        result = JobResult(job_id=spec.job_id, outcome=JOB_ERROR,
                           error=f"{type(exc).__name__}: {exc}")
    finally:
        if exporter is not None:
            span_tracer.remove_exporter(exporter)
        span_tracer.context.pop("trace_id", None)
    result.worker = ctx.worker
    result.attempt = ctx.attempt
    result.wall_s = time.perf_counter() - started
    ctx.journal({"job_id": spec.job_id, "status": "done",
                 "result": result.to_dict()})
    return result
