"""Trace assembly and the live ops plane over one batch directory.

Two consumers share this module:

* ``repro batch trace ROOT`` — offline assembly: merge the span sidecars,
  the jobs journal, and heartbeat evidence into one causally-linked tree
  (:func:`assemble_batch_trace`), render the deterministic critical-path
  report, and optionally export Chrome trace-event JSON.
* ``repro top ROOT`` — the live view: per-worker job states and heartbeat
  ages, per-job retry counts, outcome tallies, and SLO burn rates
  (:func:`ops_snapshot` / :func:`render_top`).  Everything reads the same
  torn-tail-tolerant files the coordinator writes, so ``top`` can watch a
  batch that is mid-flight — or post-mortem one whose coordinator died.

SLO burn convention (error-budget consumption, dimensionless):

* settled burn = (1 - settled_fraction) / (1 - objective) — how much of
  the failure budget the batch has eaten (1.0 = exactly at objective);
* latency burn = p95(job wall seconds) / objective seconds.

The p95 comes from a *local* :class:`MetricsRegistry` histogram rebuilt
from the journal on every snapshot, so the ops plane never mutates the
process-wide registry it is observing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.control.jobs_db import JobsDB
from repro.telemetry.distributed import (
    AssembledTrace,
    assemble_trace,
)
from repro.telemetry.metrics import LATENCY_BUCKETS_S, MetricsRegistry

#: Default SLO objectives for the burn gauges (overridable from the CLI).
DEFAULT_SETTLED_OBJECTIVE = 0.95
DEFAULT_P95_OBJECTIVE_S = 5.0

#: Heartbeat older than this is flagged stale in the top view (seconds).
STALE_HEARTBEAT_S = 15.0


def assemble_batch_trace(root: str) -> AssembledTrace:
    """Assemble the distributed trace of the batch at ``root``."""
    db = JobsDB.open(root)
    try:
        return assemble_trace(db.span_records(), db.journal_records(),
                              heartbeats=db.read_heartbeats())
    finally:
        db.close()


@dataclass
class OpsSnapshot:
    """One ``repro top`` refresh: everything the operator panel shows."""

    root: str
    batch_status: str
    trace_id: str
    jobs: int
    #: outcome/status -> count (settled, failed, running, queued, ...).
    counts: dict[str, int] = field(default_factory=dict)
    #: Jobs that needed more than one attempt: job_id -> attempts.
    retries: dict[str, int] = field(default_factory=dict)
    #: worker -> {status, job_id, age_s, stale, pid}.
    workers: dict[str, dict] = field(default_factory=dict)
    settled_fraction: float = 0.0
    p95_wall_s: float = 0.0
    #: Error-budget consumption (see module docstring); None until any
    #: job has settled or failed.
    settled_burn: Optional[float] = None
    p95_burn: Optional[float] = None
    worker_deaths: int = 0
    requeues: int = 0


def ops_snapshot(root: str, *,
                 settled_objective: float = DEFAULT_SETTLED_OBJECTIVE,
                 p95_objective_s: float = DEFAULT_P95_OBJECTIVE_S,
                 now: Optional[float] = None) -> OpsSnapshot:
    """Read the batch directory into one :class:`OpsSnapshot`."""
    now = time.time() if now is None else now
    db = JobsDB.open(root)
    try:
        index = db.compact(write=False)
        records = db.journal_records()
        beats = db.read_heartbeats()
    finally:
        db.close()

    trace_id = ""
    worker_deaths = 0
    requeues = 0
    for record in records:
        if record.get("type") == "trace":
            trace_id = record.get("trace_id", trace_id)
        elif record.get("type") == "batch":
            worker_deaths = int(record.get("worker_deaths", worker_deaths))
        elif (record.get("type") == "job"
                and record.get("status") == "requeued"):
            requeues += 1

    jobs = index.get("jobs", {})
    counts = dict(index.get("counts", {}))
    retries = {job_id: entry.get("attempts", 0)
               for job_id, entry in sorted(jobs.items())
               if entry.get("attempts", 0) > 1}

    # SLO burn: settled fraction over terminal jobs, p95 wall time over a
    # local registry histogram (never the process-wide one).
    registry = MetricsRegistry()
    wall_hist = registry.histogram(
        "pds2_ops_job_wall_seconds", "Job wall time (ops-plane local)",
        buckets=LATENCY_BUCKETS_S)
    terminal = 0
    settled = 0
    for entry in jobs.values():
        result = entry.get("result")
        if not result:
            continue
        terminal += 1
        if result.get("outcome") in ("settled", "settled_degraded"):
            settled += 1
        wall_hist.observe(float(result.get("wall_s", 0.0)))
    settled_fraction = settled / terminal if terminal else 0.0
    p95_wall_s = wall_hist.child().quantile(0.95)
    settled_burn = None
    p95_burn = None
    if terminal:
        budget = max(1e-9, 1.0 - settled_objective)
        settled_burn = (1.0 - settled_fraction) / budget
        p95_burn = p95_wall_s / max(1e-9, p95_objective_s)

    workers: dict[str, dict] = {}
    for worker, beat in sorted(beats.items()):
        age = max(0.0, now - float(beat.get("ts", 0.0)))
        workers[worker] = {
            "status": beat.get("status", "?"),
            "job_id": beat.get("job_id", ""),
            "age_s": age,
            "stale": age > STALE_HEARTBEAT_S,
            "pid": beat.get("pid", 0),
        }

    return OpsSnapshot(
        root=root,
        batch_status=index.get("batch", {}).get("status", "unknown"),
        trace_id=trace_id,
        jobs=len(jobs) or int(index.get("batch", {}).get("jobs", 0)),
        counts=counts,
        retries=retries,
        workers=workers,
        settled_fraction=settled_fraction,
        p95_wall_s=p95_wall_s,
        settled_burn=settled_burn,
        p95_burn=p95_burn,
        worker_deaths=worker_deaths,
        requeues=requeues,
    )


def _burn(value: Optional[float]) -> str:
    if value is None:
        return "-"
    flag = " !" if value > 1.0 else ""
    return f"{value:.2f}x{flag}"


def render_top(snap: OpsSnapshot) -> str:
    """Fixed-width text panel for one snapshot (the ``repro top`` body)."""
    lines = [
        f"batch {snap.root}  status={snap.batch_status}  jobs={snap.jobs}",
        f"trace {snap.trace_id or '(not announced)'}",
        "outcomes: " + (", ".join(
            f"{name}={snap.counts[name]}" for name in sorted(snap.counts))
            or "(none)"),
        (f"slo: settled={snap.settled_fraction:.3f} "
         f"burn={_burn(snap.settled_burn)}  "
         f"p95_wall={snap.p95_wall_s:.3f}s burn={_burn(snap.p95_burn)}"),
        (f"faults: worker_deaths={snap.worker_deaths} "
         f"requeues={snap.requeues}"),
    ]
    if snap.retries:
        tail = ", ".join(f"{job}x{attempts}" for job, attempts
                         in list(snap.retries.items())[:8])
        more = len(snap.retries) - 8
        if more > 0:
            tail += f" (+{more} more)"
        lines.append(f"retried jobs: {tail}")
    lines.append("workers:")
    if not snap.workers:
        lines.append("  (no heartbeats)")
    for worker, info in snap.workers.items():
        stale = "  STALE" if info["stale"] else ""
        job = info["job_id"] or "-"
        lines.append(f"  {worker:<8} {info['status']:<6} job={job:<12} "
                     f"beat={info['age_s']:.1f}s ago{stale}")
    return "\n".join(lines) + "\n"
