"""File-backed jobs database: append-only journal + compacted index.

One batch lives in one directory::

    <root>/
      specs.jsonl          # submitted JobSpecs, one per line (written once)
      journal/<shard>.jsonl# append-only progress records, one shard per
                           # writer process (no cross-process file locking)
      index.json           # compacted view, rebuilt atomically by compact()
      manifest.json        # final batch manifest (terminal states only)
      manifest.metrics.json# telemetry sidecar (coordinator registry)
      heartbeats/<id>.json # per-worker liveness beacons
      KILL                 # operator kill sentinel (``repro batch kill``)

The journal is the source of truth.  Every writer appends to its *own*
shard (stamped ``shard``/``seq``/``ts``), flushing per record, so a
SIGKILLed worker loses at most one torn final line — which the readers
tolerate, exactly like the event-trace JSONL format.  ``compact()`` merges
all shards in ``(ts, shard, seq)`` order into a queryable index: per-job
status, attempt counts, checkpoint digests per phase boundary, and any
*divergence* (two attempts of one deterministic job journaling different
digests for the same boundary — a determinism violation worth failing
loudly over).  The index is a cache: deleting ``index.json`` loses
nothing.
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, Any, Iterable, Optional

from repro.control.jobs import JobResult, JobSpec
from repro.errors import JobsDBError

INDEX_FORMAT = "pds2-batch-index/1"
MANIFEST_FORMAT = "pds2-batch-manifest/1"

#: Batch states (the ``batch_execute`` state machine).
BATCH_PENDING = "pending"
BATCH_RUNNING = "running"
BATCH_DONE = "done"
BATCH_FAILED = "failed"
BATCH_PARTIAL_FAILED = "partial_failed"
BATCH_STATES = (BATCH_PENDING, BATCH_RUNNING, BATCH_DONE, BATCH_FAILED,
                BATCH_PARTIAL_FAILED)
TERMINAL_BATCH_STATES = (BATCH_DONE, BATCH_FAILED, BATCH_PARTIAL_FAILED)


def _read_jsonl(path: str) -> list[dict]:
    """Torn-tail-tolerant JSONL reader (same contract as event traces)."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    records = []
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn tail from a killed writer
            raise JobsDBError(
                f"corrupt journal line {index + 1} in {path}"
            ) from None
    return records


def _atomic_write_json(path: str, payload: Any) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")
    os.replace(tmp, path)


class JournalShard:
    """One writer's append-only journal file (flushes every record)."""

    def __init__(self, path: str, shard: str):
        self.path = path
        self.shard = shard
        self._seq = 0
        self._handle: Optional[IO[str]] = None

    def append(self, record: dict) -> dict:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._seq += 1
        stamped = dict(record)
        stamped["shard"] = self.shard
        stamped["seq"] = self._seq
        stamped["ts"] = time.time()
        self._handle.write(json.dumps(stamped, sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()
        return stamped

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()


class JobsDB:
    """One batch directory: specs, sharded journal, index, liveness."""

    def __init__(self, root: str):
        self.root = root
        self.specs_path = os.path.join(root, "specs.jsonl")
        self.journal_dir = os.path.join(root, "journal")
        self.spans_dir = os.path.join(root, "spans")
        self.index_path = os.path.join(root, "index.json")
        self.manifest_path = os.path.join(root, "manifest.json")
        self.heartbeat_dir = os.path.join(root, "heartbeats")
        self.kill_path = os.path.join(root, "KILL")
        self._writers: dict[str, JournalShard] = {}
        self._span_writers: dict[str, JournalShard] = {}

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, root: str, specs: Iterable[JobSpec]) -> "JobsDB":
        """Initialize a batch directory and journal the PENDING state."""
        db = cls(root)
        if os.path.exists(db.specs_path):
            raise JobsDBError(f"batch already submitted at {root}")
        os.makedirs(db.journal_dir, exist_ok=True)
        os.makedirs(db.heartbeat_dir, exist_ok=True)
        specs = list(specs)
        if not specs:
            raise JobsDBError("a batch needs at least one job spec")
        seen: set[str] = set()
        for spec in specs:
            if spec.job_id in seen:
                raise JobsDBError(f"duplicate job id {spec.job_id!r}")
            seen.add(spec.job_id)
        tmp = f"{db.specs_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            for spec in specs:
                handle.write(json.dumps(spec.to_dict(), sort_keys=True))
                handle.write("\n")
        os.replace(tmp, db.specs_path)
        db.append({"type": "batch", "status": BATCH_PENDING,
                   "jobs": len(specs)})
        return db

    @classmethod
    def open(cls, root: str) -> "JobsDB":
        db = cls(root)
        if not os.path.exists(db.specs_path):
            raise JobsDBError(f"no batch at {root} (missing specs.jsonl)")
        os.makedirs(db.journal_dir, exist_ok=True)
        os.makedirs(db.heartbeat_dir, exist_ok=True)
        return db

    def close(self) -> None:
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        for writer in self._span_writers.values():
            writer.close()
        self._span_writers.clear()

    # -- specs --------------------------------------------------------------

    def specs(self) -> list[JobSpec]:
        return [JobSpec.from_dict(record)
                for record in _read_jsonl(self.specs_path)]

    # -- journal ------------------------------------------------------------

    def writer(self, shard: str = "coordinator") -> JournalShard:
        if shard not in self._writers:
            path = os.path.join(self.journal_dir, f"{shard}.jsonl")
            self._writers[shard] = JournalShard(path, shard)
        return self._writers[shard]

    def append(self, record: dict, shard: str = "coordinator") -> dict:
        return self.writer(shard).append(record)

    # -- span sidecars ------------------------------------------------------

    def span_writer(self, shard: str) -> JournalShard:
        """This writer's span sidecar (``spans/<shard>.jsonl``).

        Same discipline as the journal: one shard per writer process,
        append + flush per record, readers drop a torn final line.  Spans
        are kept out of the jobs journal so trace volume never slows the
        coordinator's tail-ingest of control records.
        """
        if shard not in self._span_writers:
            os.makedirs(self.spans_dir, exist_ok=True)
            path = os.path.join(self.spans_dir, f"{shard}.jsonl")
            self._span_writers[shard] = JournalShard(path, shard)
        return self._span_writers[shard]

    def span_records(self) -> list[dict]:
        """Every span-sidecar record across all shards, torn tails dropped,
        in ``(ts, shard, seq)`` best-effort global order."""
        from repro.telemetry.distributed import read_span_records

        records: list[dict] = []
        if os.path.isdir(self.spans_dir):
            for name in sorted(os.listdir(self.spans_dir)):
                if name.endswith(".jsonl"):
                    records.extend(read_span_records(
                        os.path.join(self.spans_dir, name)))
        records.sort(key=lambda r: (r.get("ts", 0.0), r.get("shard", ""),
                                    r.get("seq", 0)))
        return records

    def journal_records(self) -> list[dict]:
        """Every record across all shards, in global ``(ts, shard, seq)``
        order (per-shard order is exact; cross-shard order is wall-clock
        best-effort, which compaction only uses for tie-breaking)."""
        records: list[dict] = []
        if os.path.isdir(self.journal_dir):
            for name in sorted(os.listdir(self.journal_dir)):
                if name.endswith(".jsonl"):
                    records.extend(
                        _read_jsonl(os.path.join(self.journal_dir, name))
                    )
        records.sort(key=lambda r: (r.get("ts", 0.0), r.get("shard", ""),
                                    r.get("seq", 0)))
        return records

    # -- compaction ---------------------------------------------------------

    def compact(self, write: bool = True) -> dict:
        """Fold the journal into the queryable index (optionally persisted)."""
        jobs: dict[str, dict] = {}
        batch: dict = {"status": BATCH_PENDING}
        divergent: list[dict] = []
        for record in self.journal_records():
            kind = record.get("type")
            if kind == "batch":
                batch = {k: v for k, v in record.items()
                         if k not in ("type", "shard", "seq", "ts")}
            elif kind == "job":
                job_id = record.get("job_id", "")
                entry = jobs.setdefault(job_id, {
                    "status": "queued", "attempts": 0, "worker": "",
                    "checkpoints": {}, "result": None, "error": "",
                })
                status = record.get("status")
                attempt = int(record.get("attempt", 1))
                entry["attempts"] = max(entry["attempts"], attempt)
                if record.get("worker"):
                    entry["worker"] = record["worker"]
                if status == "checkpoint":
                    boundary = str(record.get("boundary", 0))
                    digest = record.get("digest", "")
                    previous = entry["checkpoints"].get(boundary)
                    if previous is not None and previous["digest"] != digest:
                        divergent.append({
                            "job_id": job_id, "boundary": int(boundary),
                            "digests": [previous["digest"], digest],
                        })
                    entry["checkpoints"][boundary] = {
                        "phase": record.get("phase", ""), "digest": digest,
                    }
                    entry["status"] = "running"
                elif status == "started":
                    entry["status"] = "running"
                elif status == "requeued":
                    entry["status"] = "queued"
                elif status == "done":
                    entry["status"] = "done"
                    entry["result"] = record.get("result")
                    if record.get("result", {}).get("error"):
                        entry["error"] = record["result"]["error"]
                elif status == "queued":
                    if entry["status"] not in ("running", "done"):
                        entry["status"] = "queued"
        counts: dict[str, int] = {}
        for entry in jobs.values():
            result = entry.get("result")
            outcome = result["outcome"] if result else entry["status"]
            counts[outcome] = counts.get(outcome, 0) + 1
        index = {
            "format": INDEX_FORMAT,
            "batch": batch,
            "jobs": jobs,
            "counts": counts,
            "divergent": divergent,
        }
        if write:
            _atomic_write_json(self.index_path, index)
        return index

    def load_index(self) -> dict:
        """The persisted index, or a fresh compaction when absent."""
        if os.path.exists(self.index_path):
            with open(self.index_path, encoding="utf-8") as handle:
                index = json.load(handle)
            if index.get("format") != INDEX_FORMAT:
                raise JobsDBError(
                    f"unknown index format {index.get('format')!r}"
                )
            return index
        return self.compact(write=False)

    def checkpoints_for(self, job_id: str,
                        index: Optional[dict] = None) -> dict[int, str]:
        """Boundary index -> checkpoint digest, for replay-verified resume."""
        index = index if index is not None else self.compact(write=False)
        entry = index["jobs"].get(job_id, {})
        return {int(boundary): record["digest"]
                for boundary, record in entry.get("checkpoints", {}).items()}

    def results(self, index: Optional[dict] = None) -> dict[str, JobResult]:
        index = index if index is not None else self.compact(write=False)
        out = {}
        for job_id, entry in index["jobs"].items():
            if entry.get("result"):
                out[job_id] = JobResult.from_dict(entry["result"])
        return out

    # -- liveness -----------------------------------------------------------

    def heartbeat(self, worker: str, payload: dict) -> None:
        stamped = dict(payload)
        stamped["ts"] = time.time()
        _atomic_write_json(
            os.path.join(self.heartbeat_dir, f"{worker}.json"), stamped
        )

    def read_heartbeats(self) -> dict[str, dict]:
        beats: dict[str, dict] = {}
        if not os.path.isdir(self.heartbeat_dir):
            return beats
        for name in os.listdir(self.heartbeat_dir):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.heartbeat_dir, name),
                          encoding="utf-8") as handle:
                    beats[name[:-5]] = json.load(handle)
            except (json.JSONDecodeError, OSError):  # mid-replace race
                continue
        return beats

    # -- operator kill ------------------------------------------------------

    def request_kill(self, reason: str = "operator") -> None:
        _atomic_write_json(self.kill_path,
                           {"reason": reason, "ts": time.time()})

    def kill_requested(self) -> Optional[dict]:
        if not os.path.exists(self.kill_path):
            return None
        try:
            with open(self.kill_path, encoding="utf-8") as handle:
                return json.load(handle)
        except (json.JSONDecodeError, OSError):
            return {"reason": "unreadable"}

    def clear_kill(self) -> None:
        if os.path.exists(self.kill_path):
            os.remove(self.kill_path)

    # -- manifest -----------------------------------------------------------

    def write_manifest(self, manifest: dict) -> str:
        payload = dict(manifest)
        payload.setdefault("format", MANIFEST_FORMAT)
        _atomic_write_json(self.manifest_path, payload)
        return self.manifest_path

    def read_manifest(self) -> Optional[dict]:
        if not os.path.exists(self.manifest_path):
            return None
        with open(self.manifest_path, encoding="utf-8") as handle:
            return json.load(handle)
