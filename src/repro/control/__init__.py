"""Batch control plane: sharded, crash-resumable execution at sweep scale.

Layer 2 of the checkpointable-sessions refactor.  The core gives one
session a serializable :class:`~repro.core.checkpoint.SessionCheckpoint`;
this package turns that into an operational capability: submit thousands
of deterministic :class:`JobSpec`\\ s into a file-backed :class:`JobsDB`,
shard them across a ``multiprocessing`` worker pool with
:func:`batch_execute`, survive worker SIGKILLs via journaled boundary
digests and replay-verified re-queue, and settle the batch into a
manifest whose ``batch_digest`` witnesses byte-identical settlement
against a single-process baseline.
"""

from repro.control.batch import (
    BatchReport,
    batch_digest_of,
    batch_execute,
    submit_batch,
)
from repro.control.jobs import (
    JOB_ERROR,
    JOB_FAILED,
    JOB_OUTCOMES,
    JOB_SETTLED,
    JOB_SETTLED_DEGRADED,
    JobResult,
    JobSpec,
)
from repro.control.jobs_db import (
    BATCH_DONE,
    BATCH_FAILED,
    BATCH_PARTIAL_FAILED,
    BATCH_PENDING,
    BATCH_RUNNING,
    BATCH_STATES,
    INDEX_FORMAT,
    MANIFEST_FORMAT,
    TERMINAL_BATCH_STATES,
    JobsDB,
    JournalShard,
)
from repro.control.supervisor import (
    HANDLERS,
    BoundaryRecorder,
    JobContext,
    build_ml_market,
    handler,
    result_digest_of,
    run_job,
)
from repro.control.trace_ops import (
    OpsSnapshot,
    assemble_batch_trace,
    ops_snapshot,
    render_top,
)

__all__ = [
    "BatchReport",
    "batch_digest_of",
    "batch_execute",
    "submit_batch",
    "JOB_ERROR",
    "JOB_FAILED",
    "JOB_OUTCOMES",
    "JOB_SETTLED",
    "JOB_SETTLED_DEGRADED",
    "JobResult",
    "JobSpec",
    "BATCH_DONE",
    "BATCH_FAILED",
    "BATCH_PARTIAL_FAILED",
    "BATCH_PENDING",
    "BATCH_RUNNING",
    "BATCH_STATES",
    "INDEX_FORMAT",
    "MANIFEST_FORMAT",
    "TERMINAL_BATCH_STATES",
    "JobsDB",
    "JournalShard",
    "HANDLERS",
    "BoundaryRecorder",
    "JobContext",
    "build_ml_market",
    "handler",
    "result_digest_of",
    "run_job",
    "OpsSnapshot",
    "assemble_batch_trace",
    "ops_snapshot",
    "render_top",
]
