"""Shapley-value data valuation (paper Section IV-A).

The paper proposes Shapley values to split a workload's reward among data
providers, and flags the open challenge: exact computation is exponential.
This module implements the full menu the literature offers:

* :func:`exact_shapley` — the 2^n enumeration (ground truth up to n ~ 16);
* :func:`monte_carlo_shapley` — permutation sampling (Castro et al.);
* :func:`truncated_monte_carlo_shapley` — TMC-Shapley (Ghorbani & Zou),
  which truncates permutation scans once marginal gains become negligible;
* :func:`leave_one_out` — the cheap baseline that famously mis-prices
  correlated data.

:class:`DataValuationTask` turns "train a model on a coalition of provider
datasets, score it on validation data" into a cached characteristic
function, which is how experiment E7 valuates providers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import RewardError
from repro.ml.datasets import Dataset
from repro.ml.models import Model

#: A coalition value function: frozenset of player indexes -> utility.
CharacteristicFunction = Callable[[frozenset], float]


class CachedValueFunction:
    """Memoizing wrapper: coalition evaluations are expensive (model fits)."""

    def __init__(self, value_fn: CharacteristicFunction):
        self._value_fn = value_fn
        self._cache: dict[frozenset, float] = {}
        self.evaluations = 0

    def __call__(self, coalition: frozenset) -> float:
        if coalition not in self._cache:
            self._cache[coalition] = float(self._value_fn(coalition))
            self.evaluations += 1
        return self._cache[coalition]


def exact_shapley(num_players: int,
                  value_fn: CharacteristicFunction) -> np.ndarray:
    """Exact Shapley values by complete subset enumeration.

    Cost is O(2^n * n) coalition evaluations; the exponential wall the paper
    warns about (E7 measures it).  Uses the direct weighted-marginal form

    ``phi_i = sum_{S not containing i} |S|!(n-|S|-1)!/n! [v(S+i) - v(S)]``.
    """
    if num_players < 1:
        raise RewardError("need at least one player")
    if num_players > 20:
        raise RewardError("exact Shapley beyond 20 players is infeasible")
    value = CachedValueFunction(value_fn)
    import math

    n = num_players
    factorials = [math.factorial(k) for k in range(n + 1)]
    shapley = np.zeros(n)
    for mask in range(1 << n):
        members = frozenset(
            player for player in range(n) if mask & (1 << player)
        )
        size = len(members)
        base = value(members)
        weight = factorials[size] * factorials[n - size - 1] / factorials[n]
        for player in range(n):
            if player in members:
                continue
            with_player = frozenset(members | {player})
            shapley[player] += weight * (value(with_player) - base)
    return shapley


def monte_carlo_shapley(num_players: int, value_fn: CharacteristicFunction,
                        permutations: int,
                        rng: np.random.Generator) -> np.ndarray:
    """Permutation-sampling estimate of the Shapley values.

    Each sampled permutation contributes one marginal for every player;
    the estimate is unbiased with O(1/sqrt(permutations)) error.
    """
    if permutations < 1:
        raise RewardError("need at least one permutation")
    value = CachedValueFunction(value_fn)
    totals = np.zeros(num_players)
    for _ in range(permutations):
        order = rng.permutation(num_players)
        coalition: frozenset = frozenset()
        previous = value(coalition)
        for player in order:
            coalition = frozenset(coalition | {int(player)})
            current = value(coalition)
            totals[int(player)] += current - previous
            previous = current
    return totals / permutations


def truncated_monte_carlo_shapley(num_players: int,
                                  value_fn: CharacteristicFunction,
                                  permutations: int,
                                  rng: np.random.Generator,
                                  tolerance: float = 0.01) -> np.ndarray:
    """TMC-Shapley: permutation sampling with performance truncation.

    Once a scan's running value is within ``tolerance`` of the grand
    coalition's value, remaining players in that permutation are assigned a
    zero marginal without evaluating the model — the Ghorbani & Zou
    optimization that makes Shapley affordable for ML.
    """
    if permutations < 1:
        raise RewardError("need at least one permutation")
    value = CachedValueFunction(value_fn)
    grand = value(frozenset(range(num_players)))
    totals = np.zeros(num_players)
    truncated_marginals = 0
    total_marginals = 0
    for _ in range(permutations):
        order = rng.permutation(num_players)
        coalition: frozenset = frozenset()
        previous = value(coalition)
        truncated = False
        for player in order:
            total_marginals += 1
            if truncated:
                truncated_marginals += 1
                continue  # zero marginal, no evaluation
            coalition = frozenset(coalition | {int(player)})
            current = value(coalition)
            totals[int(player)] += current - previous
            previous = current
            if abs(grand - current) < tolerance * max(abs(grand), 1e-12):
                truncated = True
    estimates = totals / permutations
    # Stash diagnostics on the function object for benchmark reporting.
    truncated_monte_carlo_shapley.last_truncation_fraction = (  # type: ignore[attr-defined]
        truncated_marginals / max(1, total_marginals)
    )
    truncated_monte_carlo_shapley.last_evaluations = value.evaluations  # type: ignore[attr-defined]
    return estimates


def leave_one_out(num_players: int,
                  value_fn: CharacteristicFunction) -> np.ndarray:
    """The LOO baseline: v(N) - v(N minus i) for each player."""
    value = CachedValueFunction(value_fn)
    grand_set = frozenset(range(num_players))
    grand = value(grand_set)
    return np.array([
        grand - value(frozenset(grand_set - {player}))
        for player in range(num_players)
    ])


# ---------------------------------------------------------------------------
# Data valuation: coalitions of provider datasets
# ---------------------------------------------------------------------------


@dataclass
class DataValuationTask:
    """Characteristic function "train on a coalition, score on validation".

    ``v(empty)`` is the majority-class (or zero) baseline score, so Shapley
    values measure improvement over knowing nothing.  Training is
    deterministic under the task seed: every coalition trains from the same
    initialization with the same step schedule.
    """

    model_factory: Callable[[], Model]
    provider_datasets: list[Dataset]
    validation: Dataset
    train_steps: int = 200
    learning_rate: float = 0.2
    batch_size: int = 32
    seed: int = 0
    _cache: dict[frozenset, float] = field(default_factory=dict, repr=False)

    @property
    def num_players(self) -> int:
        return len(self.provider_datasets)

    def _coalition_data(self, coalition: frozenset) -> tuple[np.ndarray, np.ndarray]:
        parts = [self.provider_datasets[i] for i in sorted(coalition)]
        features = np.concatenate([p.features for p in parts])
        targets = np.concatenate([p.targets for p in parts])
        return features, targets

    def _baseline_score(self) -> float:
        """Score of an untrained (zero-parameter) model — the v(empty)."""
        model = self.model_factory()
        return model.score(self.validation.features, self.validation.targets)

    def __call__(self, coalition: frozenset) -> float:
        key = frozenset(coalition)
        if key in self._cache:
            return self._cache[key]
        if not key:
            score = self._baseline_score()
        else:
            from repro.utils.rng import derive_rng

            model = self.model_factory()
            features, targets = self._coalition_data(key)
            label = "-".join(str(i) for i in sorted(key))
            model.train_steps(
                features, targets, steps=self.train_steps,
                learning_rate=self.learning_rate,
                batch_size=self.batch_size,
                rng=derive_rng(self.seed, f"valuation-{label}"),
            )
            score = model.score(self.validation.features,
                                self.validation.targets)
        self._cache[key] = float(score)
        return self._cache[key]


def normalize_to_payouts(shapley_values: np.ndarray,
                         clip_negative: bool = True) -> np.ndarray:
    """Convert raw Shapley values into non-negative payout fractions.

    Negative values (data that *hurt* the model) are clipped to zero by
    default — a provider cannot owe money — then the vector is normalized
    to sum to 1.  An all-nonpositive vector yields equal shares.
    """
    values = np.asarray(shapley_values, dtype=float)
    if clip_negative:
        values = np.maximum(values, 0.0)
    total = values.sum()
    if total <= 0:
        return np.full(len(values), 1.0 / len(values))
    return values / total
