"""Reward schemes (paper Section IV-A).

Shapley-value data valuation (exact, Monte-Carlo and truncated-MC),
model-based pricing with noise injection, and exact-sum reward
distribution across providers and infrastructure actors.
"""

from repro.rewards.economics import (
    ExecutorCostModel,
    ViabilityAnalysis,
    sweep_infra_share,
)
from repro.rewards.distribution import (
    RewardSplit,
    distribute_rewards,
    largest_remainder_allocation,
)
from repro.rewards.pricing import (
    ModelPricingScheme,
    PriceTier,
    verify_arbitrage_free,
)
from repro.rewards.shapley import (
    CachedValueFunction,
    DataValuationTask,
    exact_shapley,
    leave_one_out,
    monte_carlo_shapley,
    normalize_to_payouts,
    truncated_monte_carlo_shapley,
)

__all__ = [
    "ExecutorCostModel",
    "ViabilityAnalysis",
    "sweep_infra_share",
    "RewardSplit",
    "distribute_rewards",
    "largest_remainder_allocation",
    "ModelPricingScheme",
    "PriceTier",
    "verify_arbitrage_free",
    "CachedValueFunction",
    "DataValuationTask",
    "exact_shapley",
    "leave_one_out",
    "monte_carlo_shapley",
    "normalize_to_payouts",
    "truncated_monte_carlo_shapley",
]
