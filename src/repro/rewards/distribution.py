"""Reward distribution: splitting a workload's pool among all actors.

Section II-B requires that providers are paid for the value their data
created and that infrastructure actors (executors, validators) "be
incentivized with a share of the rewards".  This module converts valuation
fractions into exact integer token payouts:

* an ``infra_share`` fraction is carved out for executors/validators;
* the provider remainder is split proportionally to contribution weights
  (typically normalized Shapley values);
* integer rounding uses the largest-remainder method, so the payout sums
  *exactly* to the pool — no token is minted or burned by rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RewardError


def largest_remainder_allocation(pool: int,
                                 fractions: np.ndarray) -> np.ndarray:
    """Split integer ``pool`` by ``fractions`` with exact-sum rounding."""
    if pool < 0:
        raise RewardError("reward pool must be non-negative")
    fractions = np.asarray(fractions, dtype=float)
    if len(fractions) == 0:
        raise RewardError("cannot allocate to zero recipients")
    if np.any(fractions < 0):
        raise RewardError("allocation fractions must be non-negative")
    total = fractions.sum()
    if total <= 0:
        fractions = np.full(len(fractions), 1.0 / len(fractions))
    else:
        fractions = fractions / total
    raw = fractions * pool
    floors = np.floor(raw).astype(int)
    shortfall = pool - int(floors.sum())
    remainders = raw - floors
    # Give the leftover units to the largest remainders (ties: lower index).
    order = np.lexsort((np.arange(len(raw)), -remainders))
    for slot in order[:shortfall]:
        floors[slot] += 1
    return floors


#: Basis points in one whole (the chain-wide weight denominator).
WEIGHT_BPS = 10_000


def normalize_weights_bps(weights: dict[str, float],
                          total: int = WEIGHT_BPS) -> dict[str, int]:
    """Normalize raw contribution weights to integer shares summing to ``total``.

    Built on :func:`largest_remainder_allocation`, so remainder units go to
    the largest fractional parts instead of being dumped on whichever key
    happens to sort last — the latter gives the lexicographically-last
    recipient a systematically skewed share.  Keys are processed in sorted
    order so the result is deterministic.
    """
    if not weights:
        raise RewardError("cannot normalize an empty weight map")
    keys = sorted(weights)
    amounts = largest_remainder_allocation(
        total, np.array([weights[key] for key in keys], dtype=float)
    )
    return {key: int(amount) for key, amount in zip(keys, amounts)}


@dataclass(frozen=True)
class RewardSplit:
    """The final payout table for one workload."""

    provider_payouts: dict[str, int]
    executor_payouts: dict[str, int]
    total: int

    def payout_of(self, address: str) -> int:
        return (self.provider_payouts.get(address, 0)
                + self.executor_payouts.get(address, 0))


def distribute_rewards(pool: int, provider_weights: dict[str, float],
                       executors: list[str],
                       infra_share: float = 0.1) -> RewardSplit:
    """Compute the full payout table for one completed workload.

    ``provider_weights`` maps provider addresses to contribution weights
    (any non-negative scale — they are normalized internally).  Executors
    split the infrastructure share equally, as the paper leaves their
    pricing to the market.
    """
    if not 0 <= infra_share < 1:
        raise RewardError("infra share must be in [0, 1)")
    if not provider_weights:
        raise RewardError("at least one provider must be rewarded")
    infra_pool = int(round(pool * infra_share)) if executors else 0
    provider_pool = pool - infra_pool

    providers = sorted(provider_weights)
    weights = np.array([provider_weights[p] for p in providers])
    provider_amounts = largest_remainder_allocation(provider_pool, weights)
    provider_payouts = {
        address: int(amount)
        for address, amount in zip(providers, provider_amounts)
    }

    executor_payouts: dict[str, int] = {}
    if executors:
        amounts = largest_remainder_allocation(
            infra_pool, np.ones(len(executors))
        )
        executor_payouts = {
            address: int(amount)
            for address, amount in zip(sorted(executors), amounts)
        }
    return RewardSplit(
        provider_payouts=provider_payouts,
        executor_payouts=executor_payouts,
        total=pool,
    )
