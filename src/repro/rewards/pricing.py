"""Model-based pricing with noise injection (paper Section IV-A).

Chen, Koutris & Kumar propose pricing *models* instead of data: one optimal
instance is trained, and buyers with smaller budgets receive versions
degraded with Gaussian parameter noise — more budget, less noise, more
accuracy.  This module implements that scheme with the property the original
paper requires: **arbitrage-freeness**, i.e. the noise variance (and hence
expected error) is monotone non-increasing in price, so no buyer can combine
cheap models to beat an expensive one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RewardError
from repro.ml.datasets import Dataset
from repro.ml.models import Model


@dataclass(frozen=True)
class PriceTier:
    """One point on the price/quality curve."""

    price: float
    noise_std: float
    expected_score: float


@dataclass
class ModelPricingScheme:
    """Prices a trained model by Gaussian-noise degradation.

    ``noise_std(price) = base_noise_std * (min_price / price) ** decay``:
    the buyer paying ``min_price`` gets the noisiest version; noise decays
    polynomially toward zero as price grows to ``max_price`` (where the
    exact model is sold).
    """

    model: Model
    validation: Dataset
    min_price: float = 1.0
    max_price: float = 100.0
    base_noise_std: float = 1.0
    decay: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.min_price < self.max_price:
            raise RewardError("need 0 < min_price < max_price")
        if self.base_noise_std < 0 or self.decay <= 0:
            raise RewardError("invalid noise parameters")

    def noise_std_for_price(self, price: float) -> float:
        """The parameter-noise standard deviation sold at ``price``."""
        if price < self.min_price:
            raise RewardError(
                f"price {price} is below the minimum {self.min_price}"
            )
        if price >= self.max_price:
            return 0.0
        return self.base_noise_std * (self.min_price / price) ** self.decay

    def model_for_budget(self, budget: float,
                         rng: np.random.Generator) -> Model:
        """A fresh noised copy of the optimal model, priced at ``budget``."""
        noise_std = self.noise_std_for_price(budget)
        instance = self.model.clone()
        if noise_std > 0:
            params = instance.params
            instance.set_params(
                params + rng.normal(0.0, noise_std, params.shape)
            )
        return instance

    def expected_score(self, price: float, rng: np.random.Generator,
                       trials: int = 16) -> float:
        """Mean validation score over ``trials`` independent noisings."""
        if trials < 1:
            raise RewardError("need at least one trial")
        scores = []
        for _ in range(trials):
            noised = self.model_for_budget(price, rng)
            scores.append(
                noised.score(self.validation.features,
                             self.validation.targets)
            )
        return float(np.mean(scores))

    def price_curve(self, prices: list[float], rng: np.random.Generator,
                    trials: int = 16) -> list[PriceTier]:
        """Evaluate the scheme at each price, enforcing monotone quality.

        Scores are estimated by Monte Carlo, so raw estimates can wiggle;
        the returned curve applies an isotonic (running-max) correction so
        the published offer is arbitrage-free by construction.
        """
        tiers: list[PriceTier] = []
        best_so_far = -np.inf
        for price in sorted(prices):
            raw = self.expected_score(price, rng, trials=trials)
            best_so_far = max(best_so_far, raw)
            tiers.append(PriceTier(
                price=float(price),
                noise_std=self.noise_std_for_price(price),
                expected_score=float(best_so_far),
            ))
        return tiers


def verify_arbitrage_free(tiers: list[PriceTier]) -> bool:
    """Check monotonicity: higher price never buys lower expected quality."""
    ordered = sorted(tiers, key=lambda tier: tier.price)
    for earlier, later in zip(ordered, ordered[1:]):
        if later.expected_score < earlier.expected_score - 1e-9:
            return False
        if later.noise_std > earlier.noise_std + 1e-9:
            return False
    return True
