"""Executor economics: is running PDS2 infrastructure viable? (Section VI)

"The executors need to be compensated for their computational costs, which
must be sustainable and competitive compared to existing solutions."  This
module turns that sentence into arithmetic:

* :class:`ExecutorCostModel` — the cost of executing one workload on TEE
  hardware: amortized capital, electricity, and a fixed per-job overhead;
* :class:`ViabilityAnalysis` — revenue (the infra share of a reward pool,
  split across executors) against cost, the break-even infra share, and a
  competitiveness ratio versus a reference cloud price.

All money is in abstract currency units (set ``token_value`` to anchor them
to the reward token); defaults approximate a consumer SGX-capable machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RewardError
from repro.tee.cost_model import CostModel, ExecutionBackend, WorkloadProfile


@dataclass(frozen=True)
class ExecutorCostModel:
    """Cost structure of one executor machine.

    Defaults: a 1,200-unit machine amortized over 3 years, drawing 80 W at
    0.25 units/kWh, plus a small fixed cost per job (provisioning,
    attestation round-trips, bookkeeping).
    """

    hardware_cost: float = 1200.0
    amortization_s: float = 3 * 365 * 24 * 3600.0
    power_watts: float = 80.0
    electricity_per_kwh: float = 0.25
    fixed_cost_per_job: float = 0.002
    utilization: float = 0.5  # fraction of amortized time actually billed

    def __post_init__(self) -> None:
        if self.amortization_s <= 0 or not 0 < self.utilization <= 1:
            raise RewardError("invalid amortization or utilization")

    @property
    def capital_cost_per_s(self) -> float:
        """Amortized hardware cost per *billed* second."""
        return self.hardware_cost / (self.amortization_s * self.utilization)

    @property
    def energy_cost_per_s(self) -> float:
        return self.power_watts / 1000.0 * self.electricity_per_kwh / 3600.0

    def cost_of_job(self, seconds: float) -> float:
        """Total cost of occupying the machine for ``seconds``."""
        if seconds < 0:
            raise RewardError("job duration must be non-negative")
        per_second = self.capital_cost_per_s + self.energy_cost_per_s
        return self.fixed_cost_per_job + seconds * per_second


@dataclass(frozen=True)
class ViabilityAnalysis:
    """Revenue-vs-cost analysis for one workload class."""

    workload: WorkloadProfile
    reward_pool: float
    infra_share: float
    num_executors: int
    executor_costs: ExecutorCostModel = ExecutorCostModel()
    performance: CostModel = CostModel()
    token_value: float = 1.0
    cloud_price_per_s: float = 0.0001  # reference on-demand vCPU-second

    def __post_init__(self) -> None:
        if not 0 <= self.infra_share < 1:
            raise RewardError("infra share must be in [0, 1)")
        if self.num_executors < 1:
            raise RewardError("need at least one executor")
        if self.reward_pool < 0:
            raise RewardError("reward pool must be non-negative")

    @property
    def job_seconds(self) -> float:
        """TEE execution time for this workload per executor."""
        return self.performance.estimate_seconds(ExecutionBackend.TEE,
                                                 self.workload)

    @property
    def revenue_per_executor(self) -> float:
        """Each executor's slice of the infra share, in currency units."""
        pool_value = self.reward_pool * self.token_value
        return pool_value * self.infra_share / self.num_executors

    @property
    def cost_per_executor(self) -> float:
        return self.executor_costs.cost_of_job(self.job_seconds)

    @property
    def profit_per_executor(self) -> float:
        return self.revenue_per_executor - self.cost_per_executor

    @property
    def is_viable(self) -> bool:
        """True when executors at least break even."""
        return self.profit_per_executor >= 0

    def break_even_infra_share(self) -> float:
        """The smallest infra share at which executors break even.

        Raises when even a 100% share cannot cover costs (the workload's
        reward pool is simply too small).
        """
        pool_value = self.reward_pool * self.token_value
        if pool_value <= 0:
            raise RewardError("cannot break even on a zero reward pool")
        needed = (self.cost_per_executor * self.num_executors) / pool_value
        if needed >= 1.0:
            raise RewardError(
                "reward pool too small: executors cannot break even"
            )
        return needed

    def competitiveness_vs_cloud(self) -> float:
        """Executor revenue per second divided by the cloud price per second.

        > 1 means running PDS2 infrastructure pays better than renting the
        same seconds out to a cloud; the paper requires the compensation be
        "competitive compared to existing solutions".
        """
        if self.job_seconds <= 0:
            raise RewardError("workload has no execution time")
        revenue_per_s = self.revenue_per_executor / self.job_seconds
        return revenue_per_s / self.cloud_price_per_s


def sweep_infra_share(base: ViabilityAnalysis,
                      shares: list[float]) -> list[tuple[float, float, bool]]:
    """Profitability across candidate infra shares.

    Returns ``(share, profit_per_executor, viable)`` rows for reporting.
    """
    from dataclasses import replace

    rows = []
    for share in shares:
        analysis = replace(base, infra_share=share)
        rows.append((share, analysis.profit_per_executor,
                     analysis.is_viable))
    return rows
