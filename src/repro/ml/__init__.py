"""Decentralized machine learning (paper Section III-C).

Numpy models with a flat-parameter interface, synthetic IoT datasets and
non-IID partitioners, merge strategies, the gossip learning protocol the
paper selects, and the FedAvg baseline it compares against.
"""

from repro.ml.compression import (
    CompressedUpdate,
    CompressionConfig,
    CompressionKind,
    compress,
    compression_ratio,
    decompress_dense,
    merge_compressed_into,
)
from repro.ml.datasets import (
    Dataset,
    HAR_ACTIVITIES,
    label_distribution,
    make_binary_classification,
    make_blobs_classification,
    make_energy_consumption,
    make_iot_activity,
    make_linear_regression,
    split_by_label,
    split_dirichlet,
    split_iid,
    train_test_split,
)
from repro.ml.federated import (
    FederatedClient,
    FederatedConfig,
    FederatedResult,
    FederatedServer,
    FederatedTrainer,
    SERVER_ADDRESS,
)
from repro.ml.gossip import (
    GossipConfig,
    GossipNode,
    GossipResult,
    GossipTrainer,
    ModelMessage,
)
from repro.ml.matrix_factorization import (
    ItemFactorModel,
    make_ratings_problem,
    rmse_per_user,
)
from repro.ml.merge import (
    MergeStrategy,
    TrackedModel,
    federated_average,
    merge_into,
    merge_parameter_vectors,
)
from repro.ml.models import (
    LinearRegressionModel,
    LogisticRegressionModel,
    MLPClassifier,
    Model,
    SoftmaxRegressionModel,
)

__all__ = [
    "CompressedUpdate",
    "CompressionConfig",
    "CompressionKind",
    "compress",
    "compression_ratio",
    "decompress_dense",
    "merge_compressed_into",
    "Dataset",
    "HAR_ACTIVITIES",
    "label_distribution",
    "make_binary_classification",
    "make_blobs_classification",
    "make_energy_consumption",
    "make_iot_activity",
    "make_linear_regression",
    "split_by_label",
    "split_dirichlet",
    "split_iid",
    "train_test_split",
    "FederatedClient",
    "FederatedConfig",
    "FederatedResult",
    "FederatedServer",
    "FederatedTrainer",
    "SERVER_ADDRESS",
    "GossipConfig",
    "GossipNode",
    "GossipResult",
    "GossipTrainer",
    "ModelMessage",
    "ItemFactorModel",
    "make_ratings_problem",
    "rmse_per_user",
    "MergeStrategy",
    "TrackedModel",
    "federated_average",
    "merge_into",
    "merge_parameter_vectors",
    "LinearRegressionModel",
    "LogisticRegressionModel",
    "MLPClassifier",
    "Model",
    "SoftmaxRegressionModel",
]
