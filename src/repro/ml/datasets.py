"""Synthetic IoT-flavored datasets and non-IID partitioners.

The paper's motivating workload is ML training over data produced by fleets
of smart devices.  Real traces are not shipped here, so these generators
produce the synthetic equivalents the gossip-learning literature evaluates
on: separable multi-class sensor data, noisy regressions, and a HAR-style
activity dataset with per-channel summary statistics.

The partitioners control the provider heterogeneity axis of E5/E6:
``split_iid`` (uniform), ``split_dirichlet`` (label-skewed, the standard
non-IID benchmark) and ``split_by_label`` (pathological single-label
providers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MLError


@dataclass(frozen=True)
class Dataset:
    """Features plus targets, with named feature columns for annotations."""

    features: np.ndarray
    targets: np.ndarray
    feature_names: tuple[str, ...] = ()
    name: str = "dataset"

    def __post_init__(self) -> None:
        if len(self.features) != len(self.targets):
            raise MLError("features and targets disagree on length")

    def __len__(self) -> int:
        return len(self.features)

    def subset(self, index: np.ndarray) -> "Dataset":
        """The rows selected by ``index``."""
        return Dataset(
            features=self.features[index],
            targets=self.targets[index],
            feature_names=self.feature_names,
            name=self.name,
        )


def train_test_split(dataset: Dataset, test_fraction: float,
                     rng: np.random.Generator) -> tuple[Dataset, Dataset]:
    """Shuffle and split into train/test parts."""
    if not 0 < test_fraction < 1:
        raise MLError("test fraction must be in (0, 1)")
    n = len(dataset)
    order = rng.permutation(n)
    cut = int(round(n * (1 - test_fraction)))
    if cut == 0 or cut == n:
        raise MLError("split produced an empty side; adjust sizes")
    return dataset.subset(order[:cut]), dataset.subset(order[cut:])


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def make_blobs_classification(samples: int, features: int, classes: int,
                              rng: np.random.Generator,
                              separation: float = 2.0,
                              name: str = "blobs") -> Dataset:
    """Gaussian class clusters with controllable separation."""
    if classes < 2 or features < 1 or samples < classes:
        raise MLError("invalid blob generator sizes")
    centers = rng.normal(0.0, separation, (classes, features))
    labels = rng.integers(0, classes, samples)
    points = centers[labels] + rng.normal(0.0, 1.0, (samples, features))
    return Dataset(
        features=points,
        targets=labels.astype(int),
        feature_names=tuple(f"x{i}" for i in range(features)),
        name=name,
    )


def make_binary_classification(samples: int, features: int,
                               rng: np.random.Generator,
                               noise: float = 0.5,
                               name: str = "binary") -> Dataset:
    """A linearly separable-ish binary problem with label noise.

    Labels follow a logistic model over a random ground-truth hyperplane, so
    logistic regression is well-specified — ideal for convergence studies.
    """
    true_weights = rng.normal(0.0, 1.0, features)
    points = rng.normal(0.0, 1.0, (samples, features))
    logits = points @ true_weights + rng.normal(0.0, noise, samples)
    labels = (logits > 0).astype(int)
    return Dataset(
        features=points,
        targets=labels,
        feature_names=tuple(f"x{i}" for i in range(features)),
        name=name,
    )


def make_linear_regression(samples: int, features: int,
                           rng: np.random.Generator,
                           noise: float = 0.1,
                           name: str = "regression") -> Dataset:
    """A noisy linear regression problem."""
    true_weights = rng.normal(0.0, 1.0, features)
    bias = float(rng.normal(0.0, 1.0))
    points = rng.normal(0.0, 1.0, (samples, features))
    values = points @ true_weights + bias + rng.normal(0.0, noise, samples)
    return Dataset(
        features=points,
        targets=values,
        feature_names=tuple(f"x{i}" for i in range(features)),
        name=name,
    )


#: Activity classes of the HAR-style generator, in label order.
HAR_ACTIVITIES = ("sitting", "standing", "walking", "running", "cycling")

#: Per-activity (acc_mean, acc_var, gyro_mean, hr_mean) prototypes.
_HAR_PROTOTYPES = np.array([
    [0.05, 0.01, 0.02, 62.0],
    [0.08, 0.02, 0.03, 70.0],
    [0.45, 0.20, 0.25, 95.0],
    [0.95, 0.55, 0.50, 150.0],
    [0.70, 0.35, 0.65, 125.0],
])

_HAR_FEATURES = (
    "acc_mean", "acc_var", "gyro_mean", "heart_rate",
    "acc_mean_lag", "gyro_var",
)


def make_iot_activity(samples: int, rng: np.random.Generator,
                      noise: float = 0.15,
                      name: str = "iot-har") -> Dataset:
    """Human-activity-recognition-style data from wearable sensors.

    Six summary features per window (accelerometer / gyroscope statistics
    plus heart rate), five activity classes.  Feature scales are normalized
    so SGD behaves without per-experiment tuning.
    """
    labels = rng.integers(0, len(HAR_ACTIVITIES), samples)
    base = _HAR_PROTOTYPES[labels]
    acc_mean = base[:, 0] + rng.normal(0, noise, samples)
    acc_var = np.abs(base[:, 1] + rng.normal(0, noise / 2, samples))
    gyro_mean = base[:, 2] + rng.normal(0, noise, samples)
    heart = base[:, 3] + rng.normal(0, 8.0, samples)
    acc_lag = acc_mean + rng.normal(0, noise / 2, samples)
    gyro_var = np.abs(gyro_mean * 0.5 + rng.normal(0, noise / 2, samples))
    features = np.column_stack([
        acc_mean, acc_var, gyro_mean, (heart - 100.0) / 40.0, acc_lag,
        gyro_var,
    ])
    return Dataset(
        features=features,
        targets=labels.astype(int),
        feature_names=_HAR_FEATURES,
        name=name,
    )


def make_energy_consumption(samples: int, rng: np.random.Generator,
                            name: str = "energy") -> Dataset:
    """Household power-draw regression from weather/time features.

    Consumption = base + heating (cold) + cooling (hot) + occupancy cycles
  + noise; features: outdoor temperature, hour-of-day sin/cos, weekend flag,
    household size.
    """
    temperature = rng.normal(12.0, 9.0, samples)
    hour = rng.uniform(0, 24, samples)
    weekend = rng.integers(0, 2, samples).astype(float)
    household = rng.integers(1, 6, samples).astype(float)
    heating = np.maximum(0.0, 16.0 - temperature) * 0.12
    cooling = np.maximum(0.0, temperature - 24.0) * 0.09
    occupancy = 0.4 * np.sin((hour - 7.0) / 24.0 * 2 * np.pi) + 0.3 * weekend
    draw = (0.5 + heating + cooling + occupancy + 0.15 * household
            + rng.normal(0.0, 0.1, samples))
    features = np.column_stack([
        temperature / 10.0,
        np.sin(hour / 24.0 * 2 * np.pi),
        np.cos(hour / 24.0 * 2 * np.pi),
        weekend,
        household / 3.0,
    ])
    return Dataset(
        features=features,
        targets=draw,
        feature_names=("temp", "hour_sin", "hour_cos", "weekend",
                       "household"),
        name=name,
    )


# ---------------------------------------------------------------------------
# Partitioners
# ---------------------------------------------------------------------------


def split_iid(dataset: Dataset, parts: int,
              rng: np.random.Generator) -> list[Dataset]:
    """Uniformly random equal-ish partition into ``parts`` providers."""
    if parts < 1 or parts > len(dataset):
        raise MLError("invalid number of partitions")
    order = rng.permutation(len(dataset))
    return [dataset.subset(chunk) for chunk in np.array_split(order, parts)]


def split_dirichlet(dataset: Dataset, parts: int, alpha: float,
                    rng: np.random.Generator,
                    min_samples: int = 1) -> list[Dataset]:
    """Label-skewed partition: per-class Dirichlet(alpha) provider shares.

    ``alpha -> inf`` approaches IID; ``alpha -> 0`` approaches one-label
    providers.  Parts that come out below ``min_samples`` are topped up from
    the largest part so every provider has data.
    """
    if parts < 1:
        raise MLError("invalid number of partitions")
    if alpha <= 0:
        raise MLError("Dirichlet alpha must be positive")
    targets = np.asarray(dataset.targets)
    if targets.dtype.kind not in "iu":
        raise MLError("Dirichlet split needs integer class labels")
    assignments: list[list[int]] = [[] for _ in range(parts)]
    for label in np.unique(targets):
        index = np.flatnonzero(targets == label)
        rng.shuffle(index)
        shares = rng.dirichlet(np.full(parts, alpha))
        counts = np.floor(shares * len(index)).astype(int)
        # Distribute the rounding remainder to the largest shares.
        remainder = len(index) - counts.sum()
        for slot in np.argsort(-shares)[:remainder]:
            counts[slot] += 1
        start = 0
        for part, count in enumerate(counts):
            assignments[part].extend(index[start:start + count].tolist())
            start += count
    # Top up empty/starved parts from the largest one.
    for part in range(parts):
        while len(assignments[part]) < min_samples:
            donor = max(range(parts), key=lambda p: len(assignments[p]))
            if len(assignments[donor]) <= min_samples:
                raise MLError("not enough samples to satisfy min_samples")
            assignments[part].append(assignments[donor].pop())
    return [dataset.subset(np.array(sorted(rows))) for rows in assignments]


def split_by_label(dataset: Dataset, parts: int, labels_per_part: int,
                   rng: np.random.Generator) -> list[Dataset]:
    """Pathological non-IID: each provider sees only a few labels.

    Implements the classic "shards" scheme: the label-sorted data is cut
    into ``parts * labels_per_part`` shards and each provider draws
    ``labels_per_part`` shards.
    """
    targets = np.asarray(dataset.targets)
    if targets.dtype.kind not in "iu":
        raise MLError("label split needs integer class labels")
    num_shards = parts * labels_per_part
    if num_shards > len(dataset):
        raise MLError("more shards than samples")
    order = np.argsort(targets, kind="stable")
    shards = np.array_split(order, num_shards)
    shard_ids = rng.permutation(num_shards)
    out = []
    for part in range(parts):
        mine = shard_ids[part * labels_per_part:(part + 1) * labels_per_part]
        rows = np.concatenate([shards[s] for s in mine])
        out.append(dataset.subset(np.sort(rows)))
    return out


def label_distribution(dataset: Dataset, num_classes: int) -> np.ndarray:
    """Normalized label histogram (heterogeneity diagnostics)."""
    targets = np.asarray(dataset.targets, dtype=int)
    counts = np.bincount(targets, minlength=num_classes).astype(float)
    total = counts.sum()
    return counts / total if total else counts
