"""Numpy ML models with a flat-parameter interface.

Decentralized training protocols (gossip, federated) need to treat a model
as a vector: serialize it into a message, average vectors, measure their
size.  Every model here exposes ``params`` / ``set_params`` over a single
flat ``float64`` array, plus ``loss`` / ``gradient`` / ``predict`` /
``score``.  The families match the gossip-learning literature the paper
cites (linear models) plus a small MLP for the scaling experiments.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.errors import MLError, ModelCompatibilityError


def _as_2d(features: np.ndarray) -> np.ndarray:
    array = np.asarray(features, dtype=float)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise MLError("feature arrays must be 1- or 2-dimensional")
    return array


class Model(abc.ABC):
    """Base class: a differentiable model over a flat parameter vector."""

    def __init__(self, num_features: int):
        if num_features < 1:
            raise MLError("models need at least one feature")
        self.num_features = num_features
        self._params = np.zeros(self.num_params)

    # -- parameter vector interface ------------------------------------------------

    @property
    @abc.abstractmethod
    def num_params(self) -> int:
        """Length of the flat parameter vector."""

    @property
    def params(self) -> np.ndarray:
        """A copy of the flat parameter vector."""
        return self._params.copy()

    def params_buffer(self) -> np.ndarray:
        """The live flat parameter array (no copy, no shape check).

        Engine hot paths (the gossip trainers) mutate this in place through
        the stacked kernels in :mod:`repro.kernels.ops`; everyone else
        should prefer :attr:`params` / :meth:`set_params`.  The buffer is
        replaced (not resized) by :meth:`set_params`, so views must be
        re-acquired after any merge.
        """
        return self._params

    def set_params(self, params: np.ndarray) -> None:
        """Replace the parameter vector (shape-checked)."""
        params = np.asarray(params, dtype=float)
        if params.shape != (self.num_params,):
            raise ModelCompatibilityError(
                f"expected {self.num_params} parameters, got {params.shape}"
            )
        self._params = params.copy()

    def clone(self) -> "Model":
        """A new model of the same architecture with copied parameters."""
        twin = self.architecture_copy()
        twin.set_params(self._params)
        return twin

    @abc.abstractmethod
    def architecture_copy(self) -> "Model":
        """A freshly-initialized model with this model's architecture."""

    def compatible_with(self, other: "Model") -> bool:
        """True when parameter vectors may be averaged together."""
        return (type(self) is type(other)
                and self.num_params == other.num_params)

    @property
    def size_bytes(self) -> int:
        """Serialized size of the parameter vector (message accounting)."""
        return self._params.nbytes

    # -- learning interface -----------------------------------------------------------

    @abc.abstractmethod
    def loss(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss on a batch."""

    @abc.abstractmethod
    def gradient(self, features: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
        """Mean gradient of the loss, flattened to the parameter layout."""

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Model outputs (labels for classifiers, values for regressors)."""

    @abc.abstractmethod
    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Goodness on a test set: accuracy or R^2 (higher is better)."""

    def sgd_step(self, features: np.ndarray, targets: np.ndarray,
                 learning_rate: float) -> None:
        """One full-batch gradient step on the given data."""
        grad = self.gradient(features, targets)
        self._params = self._params - learning_rate * grad

    def train_steps(self, features: np.ndarray, targets: np.ndarray,
                    steps: int, learning_rate: float,
                    batch_size: int, rng: np.random.Generator) -> None:
        """Run ``steps`` minibatch SGD steps over the local dataset."""
        features = _as_2d(features)
        targets = np.asarray(targets)
        n = len(features)
        if n == 0:
            return
        for _ in range(steps):
            take = min(batch_size, n)
            index = rng.choice(n, size=take, replace=False)
            self.sgd_step(features[index], targets[index], learning_rate)


class LinearRegressionModel(Model):
    """Least-squares linear regression with optional L2 regularization."""

    def __init__(self, num_features: int, l2: float = 0.0):
        self.l2 = l2
        super().__init__(num_features)

    @property
    def num_params(self) -> int:
        return self.num_features + 1  # weights + bias

    def architecture_copy(self) -> "LinearRegressionModel":
        return LinearRegressionModel(self.num_features, l2=self.l2)

    def _split(self) -> tuple[np.ndarray, float]:
        return self._params[:-1], float(self._params[-1])

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = _as_2d(features)
        weights, bias = self._split()
        return features @ weights + bias

    def loss(self, features: np.ndarray, targets: np.ndarray) -> float:
        residual = self.predict(features) - np.asarray(targets, dtype=float)
        weights, _ = self._split()
        return float(np.mean(residual**2) / 2
                     + self.l2 * np.dot(weights, weights) / 2)

    def gradient(self, features: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
        features = _as_2d(features)
        residual = self.predict(features) - np.asarray(targets, dtype=float)
        weights, _ = self._split()
        grad_w = features.T @ residual / len(features) + self.l2 * weights
        grad_b = float(np.mean(residual))
        return np.concatenate([grad_w, [grad_b]])

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination R^2."""
        targets = np.asarray(targets, dtype=float)
        predictions = self.predict(features)
        total = float(np.sum((targets - targets.mean()) ** 2))
        if total == 0.0:
            return 0.0
        residual = float(np.sum((targets - predictions) ** 2))
        return 1.0 - residual / total


class LogisticRegressionModel(Model):
    """Binary logistic regression (labels in {0, 1})."""

    def __init__(self, num_features: int, l2: float = 0.0):
        self.l2 = l2
        super().__init__(num_features)

    @property
    def num_params(self) -> int:
        return self.num_features + 1

    def architecture_copy(self) -> "LogisticRegressionModel":
        return LogisticRegressionModel(self.num_features, l2=self.l2)

    def _split(self) -> tuple[np.ndarray, float]:
        return self._params[:-1], float(self._params[-1])

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        features = _as_2d(features)
        weights, bias = self._split()
        return features @ weights + bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        logits = np.clip(self.decision_function(features), -30.0, 30.0)
        return 1.0 / (1.0 + np.exp(-logits))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(int)

    def loss(self, features: np.ndarray, targets: np.ndarray) -> float:
        probs = np.clip(self.predict_proba(features), 1e-12, 1 - 1e-12)
        targets = np.asarray(targets, dtype=float)
        nll = -np.mean(targets * np.log(probs)
                       + (1 - targets) * np.log(1 - probs))
        weights, _ = self._split()
        return float(nll + self.l2 * np.dot(weights, weights) / 2)

    def gradient(self, features: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
        features = _as_2d(features)
        error = self.predict_proba(features) - np.asarray(targets, dtype=float)
        weights, _ = self._split()
        grad_w = features.T @ error / len(features) + self.l2 * weights
        grad_b = float(np.mean(error))
        return np.concatenate([grad_w, [grad_b]])

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Classification accuracy."""
        return float(np.mean(self.predict(features) == np.asarray(targets)))


class SoftmaxRegressionModel(Model):
    """Multinomial logistic regression (labels in {0..classes-1})."""

    def __init__(self, num_features: int, num_classes: int, l2: float = 0.0):
        if num_classes < 2:
            raise MLError("softmax regression needs at least 2 classes")
        self.num_classes = num_classes
        self.l2 = l2
        super().__init__(num_features)

    @property
    def num_params(self) -> int:
        return (self.num_features + 1) * self.num_classes

    def architecture_copy(self) -> "SoftmaxRegressionModel":
        return SoftmaxRegressionModel(self.num_features, self.num_classes,
                                      l2=self.l2)

    def _matrices(self) -> tuple[np.ndarray, np.ndarray]:
        cut = self.num_features * self.num_classes
        weights = self._params[:cut].reshape(self.num_features,
                                             self.num_classes)
        bias = self._params[cut:]
        return weights, bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = _as_2d(features)
        weights, bias = self._matrices()
        logits = features @ weights + bias
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    def loss(self, features: np.ndarray, targets: np.ndarray) -> float:
        probs = self.predict_proba(features)
        targets = np.asarray(targets, dtype=int)
        picked = np.clip(probs[np.arange(len(targets)), targets], 1e-12, 1.0)
        weights, _ = self._matrices()
        return float(-np.mean(np.log(picked))
                     + self.l2 * np.sum(weights**2) / 2)

    def gradient(self, features: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
        features = _as_2d(features)
        targets = np.asarray(targets, dtype=int)
        probs = self.predict_proba(features)
        probs[np.arange(len(targets)), targets] -= 1.0
        probs /= len(features)
        weights, _ = self._matrices()
        grad_w = features.T @ probs + self.l2 * weights
        grad_b = probs.sum(axis=0)
        return np.concatenate([grad_w.ravel(), grad_b])

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        return float(np.mean(self.predict(features) == np.asarray(targets)))


class MLPClassifier(Model):
    """One-hidden-layer tanh MLP with a softmax head."""

    def __init__(self, num_features: int, hidden_units: int,
                 num_classes: int, l2: float = 0.0,
                 init_rng: Optional[np.random.Generator] = None):
        if hidden_units < 1:
            raise MLError("MLP needs at least one hidden unit")
        if num_classes < 2:
            raise MLError("MLP classifier needs at least 2 classes")
        self.hidden_units = hidden_units
        self.num_classes = num_classes
        self.l2 = l2
        super().__init__(num_features)
        if init_rng is not None:
            self.initialize(init_rng)

    def initialize(self, rng: np.random.Generator) -> None:
        """Glorot-style random initialization (deterministic under a seed)."""
        w1_scale = np.sqrt(2.0 / (self.num_features + self.hidden_units))
        w2_scale = np.sqrt(2.0 / (self.hidden_units + self.num_classes))
        w1 = rng.normal(0.0, w1_scale,
                        (self.num_features, self.hidden_units))
        w2 = rng.normal(0.0, w2_scale,
                        (self.hidden_units, self.num_classes))
        b1 = np.zeros(self.hidden_units)
        b2 = np.zeros(self.num_classes)
        self._params = np.concatenate(
            [w1.ravel(), b1, w2.ravel(), b2]
        )

    @property
    def num_params(self) -> int:
        return (self.num_features * self.hidden_units + self.hidden_units
                + self.hidden_units * self.num_classes + self.num_classes)

    def architecture_copy(self) -> "MLPClassifier":
        return MLPClassifier(self.num_features, self.hidden_units,
                             self.num_classes, l2=self.l2)

    def _matrices(self):
        f, h, c = self.num_features, self.hidden_units, self.num_classes
        offset = 0
        w1 = self._params[offset:offset + f * h].reshape(f, h)
        offset += f * h
        b1 = self._params[offset:offset + h]
        offset += h
        w2 = self._params[offset:offset + h * c].reshape(h, c)
        offset += h * c
        b2 = self._params[offset:offset + c]
        return w1, b1, w2, b2

    def _forward(self, features: np.ndarray):
        w1, b1, w2, b2 = self._matrices()
        hidden = np.tanh(features @ w1 + b1)
        logits = hidden @ w2 + b2
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        probs = exp / exp.sum(axis=1, keepdims=True)
        return hidden, probs

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return self._forward(_as_2d(features))[1]

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    def loss(self, features: np.ndarray, targets: np.ndarray) -> float:
        probs = self.predict_proba(features)
        targets = np.asarray(targets, dtype=int)
        picked = np.clip(probs[np.arange(len(targets)), targets], 1e-12, 1.0)
        w1, _, w2, _ = self._matrices()
        reg = self.l2 * (np.sum(w1**2) + np.sum(w2**2)) / 2
        return float(-np.mean(np.log(picked)) + reg)

    def gradient(self, features: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
        features = _as_2d(features)
        targets = np.asarray(targets, dtype=int)
        w1, b1, w2, b2 = self._matrices()
        hidden, probs = self._forward(features)
        delta_out = probs
        delta_out[np.arange(len(targets)), targets] -= 1.0
        delta_out /= len(features)
        grad_w2 = hidden.T @ delta_out + self.l2 * w2
        grad_b2 = delta_out.sum(axis=0)
        delta_hidden = (delta_out @ w2.T) * (1.0 - hidden**2)
        grad_w1 = features.T @ delta_hidden + self.l2 * w1
        grad_b1 = delta_hidden.sum(axis=0)
        return np.concatenate(
            [grad_w1.ravel(), grad_b1, grad_w2.ravel(), grad_b2]
        )

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        return float(np.mean(self.predict(features) == np.asarray(targets)))
