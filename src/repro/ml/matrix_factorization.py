"""Low-rank matrix factorization as a gossip-learnable model.

The paper's gossip-learning citations include Hegedűs et al.'s "Robust
Decentralized Low-Rank Matrix Decomposition" — recommendation-style
workloads where each provider holds the ratings of *one user* and the
*item factor matrix* is what gossips between nodes (user factors stay
private at the provider, which is the privacy point).

:class:`ItemFactorModel` implements that split:

* the flat parameter vector (what travels / merges) is the item-factor
  matrix ``V`` (items x rank);
* ``loss`` / ``gradient`` / ``score`` take rating triples and internally
  solve the *local* user factor ``u`` by ridge regression before
  differentiating with respect to ``V`` — the standard alternating
  formulation, collapsed so the model fits the :class:`~repro.ml.models.Model`
  interface used by :class:`~repro.ml.gossip.GossipTrainer`.

Ratings are encoded as feature rows ``(item_index, rating)`` so the
existing ``Dataset`` plumbing works unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.datasets import Dataset
from repro.ml.models import Model


def make_ratings_problem(num_users: int, num_items: int, rank: int,
                         ratings_per_user: int,
                         rng: np.random.Generator,
                         noise: float = 0.1) -> tuple[list[Dataset], Dataset]:
    """Generate a synthetic low-rank ratings problem.

    Returns one :class:`Dataset` per user (their private rating rows,
    features = ``[item_index, rating]``) plus a held-out global test set
    with the same encoding.
    """
    if ratings_per_user > num_items:
        raise MLError("cannot rate more items than exist")
    true_users = rng.normal(0.0, 1.0, (num_users, rank)) / np.sqrt(rank)
    true_items = rng.normal(0.0, 1.0, (num_items, rank)) / np.sqrt(rank)
    per_user: list[Dataset] = []
    test_rows = []
    for user in range(num_users):
        items = rng.choice(num_items, size=ratings_per_user, replace=False)
        values = (true_users[user] @ true_items[items].T
                  + rng.normal(0.0, noise, ratings_per_user))
        split = max(1, int(0.8 * ratings_per_user))
        train_features = np.column_stack([
            items[:split].astype(float), values[:split],
        ])
        per_user.append(Dataset(
            features=train_features,
            targets=values[:split],
            feature_names=("item", "rating"),
            name=f"user-{user}",
        ))
        for item, value in zip(items[split:], values[split:]):
            test_rows.append((float(item), float(value)))
    test_features = np.array([[item, value] for item, value in test_rows])
    return per_user, Dataset(
        features=test_features,
        targets=test_features[:, 1],
        feature_names=("item", "rating"),
        name="ratings-test",
    )


class ItemFactorModel(Model):
    """The shared item-factor half of a low-rank factorization.

    Parameters: the row-major flattening of ``V`` (num_items x rank).
    Each call re-fits the local user vector by ridge regression over the
    given rating rows, then evaluates/differentiates the reconstruction
    error with respect to ``V`` only.
    """

    def __init__(self, num_items: int, rank: int = 4, l2: float = 0.1,
                 init_rng: np.random.Generator | None = None):
        if num_items < 1 or rank < 1:
            raise MLError("need at least one item and rank >= 1")
        self.num_items = num_items
        self.rank = rank
        self.l2 = l2
        super().__init__(num_features=2)  # rows are (item, rating)
        if init_rng is not None:
            self.initialize(init_rng)

    def initialize(self, rng: np.random.Generator) -> None:
        """Small random item factors (deterministic under a seed)."""
        factors = rng.normal(0.0, 1.0 / np.sqrt(self.rank),
                             (self.num_items, self.rank))
        self._params = factors.ravel()

    @property
    def num_params(self) -> int:
        return self.num_items * self.rank

    def architecture_copy(self) -> "ItemFactorModel":
        return ItemFactorModel(self.num_items, self.rank, l2=self.l2)

    # -- internals ------------------------------------------------------------

    def _factors(self) -> np.ndarray:
        return self._params.reshape(self.num_items, self.rank)

    @staticmethod
    def _decode_rows(features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        items = features[:, 0].astype(int)
        ratings = features[:, 1]
        return items, ratings

    def _solve_user(self, items: np.ndarray,
                    ratings: np.ndarray) -> np.ndarray:
        """Ridge solve for the local user vector given current ``V``."""
        sub = self._factors()[items]
        gram = sub.T @ sub + self.l2 * np.eye(self.rank)
        return np.linalg.solve(gram, sub.T @ ratings)

    # -- Model interface -------------------------------------------------------

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Reconstructed ratings for the rows' (user-implicit) items."""
        items, ratings = self._decode_rows(features)
        if not len(items):
            return np.zeros(0)
        if items.max() >= self.num_items:
            raise MLError("item index out of range")
        user = self._solve_user(items, ratings)
        return self._factors()[items] @ user

    def loss(self, features: np.ndarray, targets: np.ndarray) -> float:
        items, ratings = self._decode_rows(features)
        predictions = self.predict(features)
        reg = self.l2 * float(np.sum(self._factors()[items] ** 2))
        return float(np.mean((predictions - ratings) ** 2) / 2
                     + reg / max(1, len(items)))

    def gradient(self, features: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
        items, ratings = self._decode_rows(features)
        if items.max() >= self.num_items:
            raise MLError("item index out of range")
        user = self._solve_user(items, ratings)
        sub = self._factors()[items]
        residual = sub @ user - ratings
        grad = np.zeros_like(self._factors())
        # d/dV_i of 1/2n sum (v_i.u - r)^2 + l2/n |v_i|^2.
        contributions = (np.outer(residual, user)
                         + self.l2 * sub) / len(items)
        np.add.at(grad, items, contributions)
        return grad.ravel()

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Negative RMSE over per-user blocks (higher is better).

        The test set interleaves many users; rows are grouped into blocks
        of consecutive identical-user chunks implicitly via local solves
        over the full set, which is a slight simplification recorded here:
        each call solves ONE user vector for the given rows, so callers
        should score per provider and average for strict fidelity.
        """
        predictions = self.predict(features)
        _, ratings = self._decode_rows(features)
        rmse = float(np.sqrt(np.mean((predictions - ratings) ** 2)))
        return -rmse


def rmse_per_user(model: ItemFactorModel,
                  user_datasets: list[Dataset]) -> float:
    """Mean per-user RMSE (the strict evaluation for gossip MF)."""
    errors = []
    for data in user_datasets:
        predictions = model.predict(data.features)
        errors.append(
            float(np.sqrt(np.mean((predictions - data.targets) ** 2)))
        )
    return float(np.mean(errors))
