"""Federated learning (FedAvg) — the centralized baseline of Section III-C.

McMahan et al.'s FedAvg over the same discrete-event network the gossip
implementation uses: a coordinator samples clients each round, broadcasts
the global model, clients train locally and upload updates, and the server
replaces the global model with the sample-weighted average.

The implementation deliberately exposes the failure modes the paper
attributes to centralization: all traffic transits the server's uplink
(bandwidth bottleneck), a round only aggregates the updates that actually
arrive (churn sensitivity), and the server is a single point of failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import MLError
from repro.ml.datasets import Dataset
from repro.ml.gossip import MESSAGE_OVERHEAD_BYTES
from repro.ml.merge import merge_parameter_vectors
from repro.ml.models import Model
from repro.net.churn import ChurnModel
from repro.net.simulator import Network, Simulator
from repro.utils.rng import derive_rng

SERVER_ADDRESS = "fed-server"


@dataclass
class FederatedConfig:
    """FedAvg hyperparameters."""

    round_interval_s: float = 30.0
    client_fraction: float = 0.5
    local_steps: int = 4
    batch_size: int = 16
    learning_rate: float = 0.1

    def __post_init__(self) -> None:
        if self.round_interval_s <= 0:
            raise MLError("round interval must be positive")
        if not 0 < self.client_fraction <= 1:
            raise MLError("client fraction must be in (0, 1]")
        if self.local_steps < 1:
            raise MLError("local steps must be >= 1")


@dataclass
class _GlobalModelMessage:
    """Server -> client: the current global parameters."""

    params: np.ndarray
    round_number: int

    @property
    def size_bytes(self) -> int:
        return self.params.nbytes + MESSAGE_OVERHEAD_BYTES


@dataclass
class _UpdateMessage:
    """Client -> server: locally trained parameters plus sample count."""

    params: np.ndarray
    samples: int
    round_number: int

    @property
    def size_bytes(self) -> int:
        return self.params.nbytes + MESSAGE_OVERHEAD_BYTES


class FederatedClient:
    """One data-holding client that trains on request."""

    def __init__(self, address: str, model: Model, data: Dataset,
                 config: FederatedConfig, network: Network,
                 rng: np.random.Generator):
        self.address = address
        self.model = model
        self.data = data
        self.config = config
        self.network = network
        self.rng = rng
        self.rounds_participated = 0

    def on_message(self, sender: str, message: _GlobalModelMessage) -> None:
        """Receive the global model, train locally, send the update back."""
        self.model.set_params(message.params)
        if len(self.data):
            self.model.train_steps(
                self.data.features, self.data.targets,
                steps=self.config.local_steps,
                learning_rate=self.config.learning_rate,
                batch_size=self.config.batch_size,
                rng=self.rng,
            )
        self.rounds_participated += 1
        update = _UpdateMessage(
            params=self.model.params,
            samples=len(self.data),
            round_number=message.round_number,
        )
        self.network.send(self.address, sender, update, update.size_bytes)


class FederatedServer:
    """The coordinator: samples clients, aggregates their updates."""

    def __init__(self, model: Model, config: FederatedConfig,
                 simulator: Simulator, network: Network,
                 client_addresses: list[str], rng: np.random.Generator):
        self.model = model
        self.config = config
        self.simulator = simulator
        self.network = network
        self.client_addresses = list(client_addresses)
        self.rng = rng
        self.round_number = 0
        self.rounds_completed = 0
        self.rounds_empty = 0
        self._inbox: list[_UpdateMessage] = []

    def start(self) -> None:
        """Kick off the periodic round driver."""
        self.simulator.schedule(self.config.round_interval_s, self._round)

    def _round(self) -> None:
        self.simulator.schedule(self.config.round_interval_s, self._round)
        if not self.network.is_online(SERVER_ADDRESS):
            return
        self._aggregate()
        self.round_number += 1
        online = [
            address for address in self.client_addresses
            if self.network.is_online(address)
        ]
        if not online:
            return
        count = max(1, int(round(len(online) * self.config.client_fraction)))
        chosen_idx = self.rng.choice(len(online), size=min(count, len(online)),
                                     replace=False)
        message = _GlobalModelMessage(params=self.model.params,
                                      round_number=self.round_number)
        for index in np.sort(chosen_idx):
            self.network.send(SERVER_ADDRESS, online[int(index)], message,
                              message.size_bytes)

    def _aggregate(self) -> None:
        """Close the previous round: average whatever updates arrived."""
        if not self._inbox:
            if self.round_number > 0:
                self.rounds_empty += 1
            return
        vectors = [update.params for update in self._inbox]
        weights = [float(max(1, update.samples)) for update in self._inbox]
        self.model.set_params(merge_parameter_vectors(vectors, weights))
        self._inbox.clear()
        self.rounds_completed += 1

    def on_message(self, sender: str, message: _UpdateMessage) -> None:
        """Collect a client update for the current round."""
        if message.round_number == self.round_number:
            self._inbox.append(message)
        # Stale updates (from a previous round) are discarded, as in
        # synchronous FedAvg.


@dataclass
class FederatedResult:
    """Outcome of one FedAvg run."""

    history: list[tuple[float, float]]
    final_score: float
    bytes_delivered: int
    messages_delivered: int
    messages_dropped: int
    server_bytes: int                 # total bytes through the coordinator
    rounds_completed: int
    rounds_empty: int = 0


class FederatedTrainer:
    """Builds and runs a FedAvg deployment on the simulated network."""

    def __init__(self, model_factory: Callable[[], Model],
                 partitions: list[Dataset], test_set: Dataset,
                 config: Optional[FederatedConfig] = None, seed: int = 0,
                 churn: Optional[ChurnModel] = None,
                 mean_latency_s: float = 0.05,
                 client_upload_bytes_per_s: float = 1_250_000.0,
                 server_upload_bytes_per_s: float = 12_500_000.0,
                 server_subject_to_churn: bool = False):
        if len(partitions) < 1:
            raise MLError("federated learning needs at least one client")
        self.config = config if config is not None else FederatedConfig()
        self.test_set = test_set
        self.simulator = Simulator()
        self.network = Network(self.simulator,
                               default_latency_s=mean_latency_s)
        self.server = FederatedServer(
            model=model_factory(), config=self.config,
            simulator=self.simulator, network=self.network,
            client_addresses=[], rng=derive_rng(seed, "fed-server"),
        )
        self.network.attach(SERVER_ADDRESS, self.server,
                            upload_bytes_per_s=server_upload_bytes_per_s)
        self.clients: list[FederatedClient] = []
        for index, part in enumerate(partitions):
            address = f"fed-client-{index}"
            client = FederatedClient(
                address=address, model=model_factory(), data=part,
                config=self.config, network=self.network,
                rng=derive_rng(seed, f"fed-client-{index}"),
            )
            self.clients.append(client)
            self.network.attach(address, client,
                                upload_bytes_per_s=client_upload_bytes_per_s)
            self.server.client_addresses.append(address)
        if churn is not None:
            churned = [client.address for client in self.clients]
            if server_subject_to_churn:
                churned.append(SERVER_ADDRESS)
            churn.install(self.simulator, self.network, churned,
                          derive_rng(seed, "fed-churn"))

    def run(self, duration_s: float,
            eval_interval_s: float = 50.0) -> FederatedResult:
        """Run FedAvg for ``duration_s`` of simulated time."""
        self.server.start()
        history: list[tuple[float, float]] = []
        checkpoints = np.arange(eval_interval_s, duration_s + 1e-9,
                                eval_interval_s)
        for checkpoint in checkpoints:
            self.simulator.run_until(float(checkpoint))
            score = self.server.model.score(self.test_set.features,
                                            self.test_set.targets)
            history.append((float(checkpoint), score))
        server_state = self.network.node_state(SERVER_ADDRESS)
        return FederatedResult(
            history=history,
            final_score=self.server.model.score(self.test_set.features,
                                                self.test_set.targets),
            bytes_delivered=self.network.stats.bytes_delivered,
            messages_delivered=self.network.stats.messages_delivered,
            messages_dropped=self.network.stats.messages_dropped,
            server_bytes=server_state.bytes_sent + server_state.bytes_received,
            rounds_completed=self.server.rounds_completed,
            rounds_empty=self.server.rounds_empty,
        )
