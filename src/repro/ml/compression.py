"""Communication-efficient model exchange for constrained devices.

Section III-C cites Giaretta & Girdzijauskas ("Gossip learning: off the
beaten path") on making gossip work "in constrained and highly heterogeneous
environments".  The practical lever is shrinking the model messages.  Two
standard compressors are implemented, both *merge-compatible* (a receiver
can fold a compressed update into its local model):

* **parameter subsampling** — send a random coordinate subset each round
  (the gossip analogue of federated dropout / sparsification);
* **uniform quantization** — send parameters at reduced bit width.

Compressed payloads carry exact byte-size accounting so the E15 ablation can
chart accuracy against bytes on the wire.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import MLError, ModelCompatibilityError
from repro.kernels.ops import (
    convex_combine_rows,
    dequantize_rows,
    quantize_rows,
)
from repro.ml.merge import MergeStrategy, TrackedModel


class CompressionKind(enum.Enum):
    """Available message compressors."""

    NONE = "none"
    SUBSAMPLE = "subsample"
    QUANTIZE = "quantize"


@dataclass(frozen=True)
class CompressionConfig:
    """How a gossip node compresses its outgoing model messages.

    ``subsample_fraction`` is the fraction of coordinates sent per message
    (SUBSAMPLE); ``quantize_bits`` the per-parameter bit width (QUANTIZE).
    """

    kind: CompressionKind = CompressionKind.NONE
    subsample_fraction: float = 0.25
    quantize_bits: int = 8

    def __post_init__(self) -> None:
        if not 0 < self.subsample_fraction <= 1:
            raise MLError("subsample fraction must be in (0, 1]")
        if not 2 <= self.quantize_bits <= 32:
            raise MLError("quantization width must be in [2, 32] bits")


@dataclass(frozen=True)
class CompressedUpdate:
    """A wire-format model update.

    Exactly one of the representations is populated, matching ``kind``:
    dense ``values`` (NONE), sparse ``(indices, values)`` (SUBSAMPLE), or
    quantized ``(codes, scale_min, scale_max)`` (QUANTIZE).
    """

    kind: CompressionKind
    num_params: int
    age: int
    samples: int
    values: np.ndarray | None = None
    indices: np.ndarray | None = None
    codes: np.ndarray | None = None
    scale_min: float = 0.0
    scale_max: float = 0.0
    quantize_bits: int = 8

    @property
    def size_bytes(self) -> int:
        """Honest wire size of this update (plus a 64-byte envelope)."""
        overhead = 64
        if self.kind is CompressionKind.NONE:
            return overhead + self.values.nbytes
        if self.kind is CompressionKind.SUBSAMPLE:
            return overhead + self.indices.nbytes + self.values.nbytes
        payload_bits = self.num_params * self.quantize_bits
        return overhead + 16 + math.ceil(payload_bits / 8)


def compress(params: np.ndarray, age: int, samples: int,
             config: CompressionConfig,
             rng: np.random.Generator) -> CompressedUpdate:
    """Build the wire update for one outgoing gossip message."""
    params = np.asarray(params, dtype=float)
    if config.kind is CompressionKind.NONE:
        return CompressedUpdate(
            kind=config.kind, num_params=len(params), age=age,
            samples=samples, values=params.copy(),
        )
    if config.kind is CompressionKind.SUBSAMPLE:
        count = max(1, int(round(len(params) * config.subsample_fraction)))
        indices = np.sort(rng.choice(len(params), size=count,
                                     replace=False)).astype(np.int32)
        return CompressedUpdate(
            kind=config.kind, num_params=len(params), age=age,
            samples=samples, indices=indices,
            values=params[indices].copy(),
        )
    # Uniform quantization over the parameter range.  Routed through the
    # shared row kernel so the vectorized gossip engine (which quantizes a
    # whole round of messages at once) is bit-identical by construction.
    codes, low, high = quantize_rows(params[None, :], config.quantize_bits)
    return CompressedUpdate(
        kind=config.kind, num_params=len(params), age=age, samples=samples,
        codes=codes[0], scale_min=float(low[0]), scale_max=float(high[0]),
        quantize_bits=config.quantize_bits,
    )


def decompress_dense(update: CompressedUpdate) -> np.ndarray:
    """Reconstruct a dense vector from a NONE or QUANTIZE update."""
    if update.kind is CompressionKind.NONE:
        return update.values.copy()
    if update.kind is CompressionKind.QUANTIZE:
        return dequantize_rows(
            update.codes[None, :],
            np.asarray([update.scale_min]),
            np.asarray([update.scale_max]),
            update.quantize_bits,
        )[0]
    raise MLError("subsampled updates have no dense reconstruction; "
                  "merge them with merge_compressed_into")


def merge_compressed_into(local: TrackedModel, update: CompressedUpdate,
                          strategy: MergeStrategy) -> None:
    """Fold a compressed update into a local model in place.

    Dense/quantized updates merge like ordinary vectors.  Subsampled
    updates merge *coordinate-wise*: only the transmitted coordinates move,
    each toward the remote value with the strategy's weighting — the
    standard partitioned-merge rule for sparsified gossip.
    """
    if update.num_params != local.model.num_params:
        raise ModelCompatibilityError("update has incompatible shape")
    if update.kind in (CompressionKind.NONE, CompressionKind.QUANTIZE):
        remote = decompress_dense(update)
        weights = _strategy_weights(local, update, strategy)
        # Elementwise pairwise combine shared with the kernel engine (see
        # repro.kernels.ops for why this form, not a dgemv, is used).
        merged = convex_combine_rows(local.model.params, remote,
                                     weights[0], weights[1])
        local.model.set_params(merged)
    else:
        params = local.model.params
        weights = _strategy_weights(local, update, strategy)
        total = weights[0] + weights[1]
        local_coeff = weights[0] / total
        remote_coeff = weights[1] / total
        params[update.indices] = (local_coeff * params[update.indices]
                                  + remote_coeff * update.values)
        local.model.set_params(params)
    local.age = max(local.age, update.age)


def _strategy_weights(local: TrackedModel, update: CompressedUpdate,
                      strategy: MergeStrategy) -> list[float]:
    if strategy is MergeStrategy.AVERAGE:
        return [1.0, 1.0]
    if strategy is MergeStrategy.SAMPLE_WEIGHTED:
        return [float(max(1, local.samples)), float(max(1, update.samples))]
    return [float(max(1, local.age)), float(max(1, update.age))]


def compression_ratio(update: CompressedUpdate) -> float:
    """Wire size relative to the uncompressed (float64) message."""
    dense_bytes = 64 + update.num_params * 8
    return update.size_bytes / dense_bytes
