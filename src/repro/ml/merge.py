"""Model-merge strategies for decentralized aggregation.

Gossip learning's core operation is merging a received model with the local
one.  The paper cites Ormándi et al., whose best variant weights merges by
model *age* (number of updates absorbed); FedAvg weights by sample count.
All three rules are implemented so the merge ablation (E14) can compare
them under identical schedules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import MLError, ModelCompatibilityError
from repro.kernels.ops import convex_combine_rows
from repro.ml.models import Model


class MergeStrategy(enum.Enum):
    """How two (or more) models combine into one."""

    AVERAGE = "average"              # plain parameter mean
    SAMPLE_WEIGHTED = "sample"       # weighted by training-set size
    AGE_WEIGHTED = "age"             # weighted by model age (gossip learning)


@dataclass
class TrackedModel:
    """A model plus the merge-relevant bookkeeping.

    ``age`` counts absorbed updates (grows on every local step and is
    max-combined on merge, following the gossip-learning rule); ``samples``
    is the size of the data the model was trained on.
    """

    model: Model
    age: int = 0
    samples: int = 0


def merge_parameter_vectors(vectors: list[np.ndarray],
                            weights: list[float]) -> np.ndarray:
    """Convex combination of parameter vectors."""
    if len(vectors) != len(weights) or not vectors:
        raise MLError("need equal, non-empty vectors and weights")
    total = float(sum(weights))
    if total <= 0:
        raise MLError("merge weights must sum to a positive value")
    stacked = np.stack(vectors)
    coeffs = np.asarray(weights, dtype=float) / total
    return coeffs @ stacked


def merge_into(local: TrackedModel, remote_params: np.ndarray,
               remote_age: int, remote_samples: int,
               strategy: MergeStrategy) -> None:
    """Merge a received parameter vector into ``local`` in place.

    Updates the local age to ``max(local, remote)`` (so age keeps meaning
    "updates absorbed by the freshest ancestor") and accumulates a sample
    estimate for sample-weighted merging.
    """
    if remote_params.shape != (local.model.num_params,):
        raise ModelCompatibilityError("remote model has incompatible shape")
    if strategy is MergeStrategy.AVERAGE:
        weights = [1.0, 1.0]
    elif strategy is MergeStrategy.SAMPLE_WEIGHTED:
        weights = [float(max(1, local.samples)),
                   float(max(1, remote_samples))]
    elif strategy is MergeStrategy.AGE_WEIGHTED:
        weights = [float(max(1, local.age)), float(max(1, remote_age))]
    else:  # pragma: no cover - exhaustive enum
        raise MLError(f"unknown merge strategy {strategy}")
    # Elementwise pairwise combine (shared with the vectorized kernel
    # engine) rather than merge_parameter_vectors' dgemv: the elementwise
    # form is what stays bit-identical under row stacking.
    merged = convex_combine_rows(
        local.model.params, remote_params, weights[0], weights[1]
    )
    local.model.set_params(merged)
    local.age = max(local.age, remote_age)


def federated_average(models: list[Model],
                      sample_counts: list[int]) -> np.ndarray:
    """FedAvg: sample-count-weighted mean of client parameter vectors."""
    if len(models) != len(sample_counts) or not models:
        raise MLError("need equal, non-empty model and count lists")
    reference = models[0]
    for model in models[1:]:
        if not reference.compatible_with(model):
            raise ModelCompatibilityError("cannot average unlike models")
    return merge_parameter_vectors(
        [model.params for model in models],
        [float(max(0, count)) for count in sample_counts],
    )
