"""Gossip learning (paper Section III-C, the selected aggregation method).

Implements the Ormándi-style protocol: every node periodically wakes, merges
the models that arrived in its mailbox, trains on local data, and pushes the
parameters to a random overlay neighbor.  There is no coordinator, no global
barrier — the properties the paper values for PDS2 (no bottleneck, no
aggregation black box, churn tolerance).

Two engines implement the identical protocol, selected via
``GossipConfig(engine=...)``:

* ``"objects"`` — one :class:`GossipNode` per participant on the
  discrete-event :class:`~repro.net.simulator.Network` (this module);
* ``"kernel"``  — flat-array round kernels over the whole population
  (:class:`repro.kernels.gossip_kernel.GossipKernelTrainer`), byte-identical
  to the object engine at matched seeds and ≥10× faster at hundreds of
  nodes.

Determinism discipline (shared by both engines, enforced by
``tests/kernels``):

* **mailbox semantics** — received models are queued and merged at the
  receiver's next wake, not on receipt; a message sent from its sender's
  wake ``k`` is only mergeable at a receiver wake with index ``> k`` *and*
  time after its delivery.  This removes intra-round cross-node data
  dependencies, which is what lets the kernel engine compute a whole round
  as stacked matrix ops;
* **single-draw streams** — each online wake consumes exactly one
  ``rng.random(D)`` vector (``D = (merges + local_steps) * take +
  push_count``) covering minibatch indices (floor-sampled with
  replacement) and peer picks, plus one ``rng.normal`` block when DP noise
  is on.  Both engines issue the same calls at the same stream positions;
* wake timelines, link latencies, churn toggles, and evaluation sampling
  all come from shared helpers (:mod:`repro.kernels.ops`,
  :func:`repro.net.topology.edge_latencies`,
  :meth:`repro.net.churn.ChurnModel.precompute_timeline`).

:class:`GossipTrainer` wires either engine, runs the protocol for simulated
time, and records an accuracy-versus-time history plus full traffic
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.errors import MLError
from repro.kernels.ops import (
    clamped_floor_indices,
    family_of,
    sample_eval_indices,
    wake_schedule,
)
from repro.ml.compression import (
    CompressedUpdate,
    CompressionConfig,
    compress,
    merge_compressed_into,
)
from repro.ml.datasets import Dataset
from repro.ml.merge import MergeStrategy, TrackedModel
from repro.ml.models import Model
from repro.net.churn import ChurnModel
from repro.net.simulator import Network, Simulator
from repro.net.topology import (
    assign_latencies,
    neighbors_map,
    random_regular_overlay,
)
from repro.telemetry import metrics as _tm
from repro.telemetry.profiler import profiled_function
from repro.telemetry.tracing import tracer as _tracer
from repro.utils.rng import derive_rng

#: Fixed per-message envelope overhead (headers, age, sample count).
MESSAGE_OVERHEAD_BYTES = 64

#: Engines selectable via :attr:`GossipConfig.engine`.
ENGINES = ("objects", "kernel")

_WAKES = _tm.counter(
    "pds2_gossip_wakes_total", "Gossip node wake cycles that ran"
)
_MERGES = _tm.counter(
    "pds2_gossip_merges_total", "Model merges performed at wake time"
)
_PUSH_BYTES = _tm.histogram(
    "pds2_gossip_push_bytes", "Serialized size of pushed model messages",
    buckets=_tm.BYTES_BUCKETS,
)


@dataclass
class GossipConfig:
    """Protocol hyperparameters."""

    wake_interval_s: float = 10.0
    local_steps: int = 4
    batch_size: int = 16
    learning_rate: float = 0.1
    merge_strategy: MergeStrategy = MergeStrategy.AGE_WEIGHTED
    push_count: int = 1
    overlay_degree: int = 4
    compression: CompressionConfig = field(
        default_factory=CompressionConfig
    )
    dp_noise_std: float = 0.0  # Gaussian noise on every *shared* model
    engine: str = "objects"    # "objects" | "kernel"

    def __post_init__(self) -> None:
        if self.wake_interval_s <= 0:
            raise MLError("wake interval must be positive")
        if self.local_steps < 1 or self.push_count < 1:
            raise MLError("local steps and push count must be >= 1")
        if self.dp_noise_std < 0:
            raise MLError("dp noise std must be non-negative")
        if self.engine not in ENGINES:
            raise MLError(f"engine must be one of {ENGINES}")


@dataclass
class ModelMessage:
    """An uncompressed gossip payload (kept for API compatibility)."""

    params: np.ndarray
    age: int
    samples: int

    @property
    def size_bytes(self) -> int:
        return self.params.nbytes + MESSAGE_OVERHEAD_BYTES


class GossipEnvelope:
    """A wire message: the compressed update plus its sender's wake index.

    The wake index implements the round-tag eligibility rule (see module
    docstring): receivers only merge envelopes whose ``sender_round`` is
    strictly less than their own current wake index.
    """

    __slots__ = ("update", "sender_round")

    def __init__(self, update: CompressedUpdate, sender_round: int) -> None:
        self.update = update
        self.sender_round = sender_round


class GossipNode:
    """One gossip participant: local data, a tracked model, a wake loop."""

    def __init__(self, address: str, model: Model, data: Dataset,
                 config: GossipConfig, simulator: Simulator,
                 network: Network, peers: list[str],
                 rng: np.random.Generator):
        self.address = address
        self.tracked = TrackedModel(model=model, age=0, samples=len(data))
        self.data = data
        self.config = config
        self.simulator = simulator
        self.network = network
        self.peers = list(peers)
        self.rng = rng
        self.merges_performed = 0
        self.wakes = 0
        #: (delivery_time, envelope) pairs in delivery order.
        self.mailbox: list[tuple[float, GossipEnvelope]] = []
        self.family = family_of(model)
        self._features = np.asarray(data.features, dtype=float)
        self._targets = (np.asarray(data.targets, dtype=np.int64)
                         if self.family is not None
                         else np.asarray(data.targets))
        self._take = min(config.batch_size, len(data))
        self._limits = np.full(self._take, len(data), dtype=np.int64)

    # -- protocol --------------------------------------------------------------

    def on_message(self, sender: str, message: GossipEnvelope) -> None:
        """Queue the delivered model for the next wake (mailbox semantics)."""
        self.mailbox.append((self.simulator.now, message))

    @profiled_function("gossip.wake")
    def on_wake(self, wake_index: int) -> None:
        """One wake cycle: merge eligible mail, train locally, push."""
        if not self.network.is_online(self.address):
            return  # consumes no randomness; mailbox is kept for later
        now = self.simulator.now
        self.wakes += 1
        _WAKES.inc()
        config = self.config
        eligible: list[GossipEnvelope] = []
        if self.mailbox:
            keep = []
            for entry in self.mailbox:
                if (entry[0] < now
                        and entry[1].sender_round < wake_index):
                    eligible.append(entry[1])
                else:
                    keep.append(entry)
            self.mailbox = keep
        take = self._take
        # The single per-wake uniform draw: batch indices for every merge
        # correction and local step, then one peer pick per push.
        draws = self.rng.random(
            (len(eligible) + config.local_steps) * take + config.push_count
        )
        cursor = 0
        for envelope in eligible:
            merge_compressed_into(self.tracked, envelope.update,
                                  config.merge_strategy)
            self.merges_performed += 1
            _MERGES.inc()
            if take:
                cursor = self._sgd_step(draws, cursor)
                self.tracked.age += 1
        if take:
            for _ in range(config.local_steps):
                cursor = self._sgd_step(draws, cursor)
            self.tracked.age += config.local_steps
        noise = None
        if config.dp_noise_std > 0:
            # Local DP: only a noised view of the model ever leaves the
            # node, bounding what any recipient learns about local data.
            noise = self.rng.normal(
                0.0, config.dp_noise_std,
                (config.push_count, self.tracked.model.num_params),
            )
        degree = len(self.peers)
        for push in range(config.push_count):
            pick = draws[cursor]
            cursor += 1
            if not degree:
                continue
            peer_index = int(pick * degree)
            if peer_index >= degree:
                peer_index = degree - 1
            peer = self.peers[peer_index]
            shared_params = self.tracked.model.params
            if noise is not None:
                shared_params = shared_params + noise[push]
            update = compress(
                shared_params,
                age=self.tracked.age,
                samples=self.tracked.samples,
                config=config.compression,
                rng=self.rng,
            )
            _PUSH_BYTES.observe(update.size_bytes)
            self.network.send(self.address, peer,
                              GossipEnvelope(update, wake_index),
                              update.size_bytes)

    def _sgd_step(self, draws: np.ndarray, cursor: int) -> int:
        """One minibatch step from the pre-drawn uniform vector."""
        take = self._take
        index = clamped_floor_indices(draws[cursor:cursor + take],
                                      self._limits)
        batch_x = self._features[index]
        batch_y = self._targets[index]
        if self.family is not None:
            # The shared stacked kernel with G == 1: bit-identical to the
            # kernel engine's whole-population call.
            params = self.tracked.model.params_buffer()[None, :]
            self.family.sgd_step(params, batch_x[None, :, :],
                                 batch_y[None, :],
                                 self.config.learning_rate)
        else:
            self.tracked.model.sgd_step(batch_x, batch_y,
                                        self.config.learning_rate)
        return cursor + take


@dataclass
class GossipResult:
    """Outcome of one gossip run."""

    history: list[tuple[float, float]]          # (sim time, mean accuracy)
    final_mean_score: float
    final_online_score: float                   # mean over online nodes only
    bytes_delivered: int
    messages_delivered: int
    messages_dropped: int
    max_node_bytes: int                          # heaviest single node load
    per_node_scores: list[float] = field(default_factory=list)
    events_processed: int = 0                    # simulator events that ran
    wakes: int = 0                               # online wake cycles
    merges: int = 0                              # models merged at wakes


class GossipTrainer:
    """Builds and runs a full gossip-learning deployment.

    ``config.engine`` selects the implementation: ``"objects"`` builds one
    :class:`GossipNode` per participant on the event-driven network;
    ``"kernel"`` delegates to the flat-array
    :class:`~repro.kernels.gossip_kernel.GossipKernelTrainer`.
    """

    def __init__(self, model_factory: Callable[[], Model],
                 partitions: list[Dataset], test_set: Dataset,
                 config: Optional[GossipConfig] = None, seed: int = 0,
                 churn: Optional[ChurnModel] = None,
                 mean_latency_s: float = 0.05,
                 upload_bytes_per_s: "float | list[float]" = 1_250_000.0):
        """``upload_bytes_per_s`` may be a single rate or one per node —
        the heterogeneous-devices setting of Section III-C."""
        if len(partitions) < 2:
            raise MLError("gossip needs at least two providers")
        if isinstance(upload_bytes_per_s, (int, float)):
            uplinks = [float(upload_bytes_per_s)] * len(partitions)
        else:
            uplinks = [float(rate) for rate in upload_bytes_per_s]
            if len(uplinks) != len(partitions):
                raise MLError("need one uplink rate per provider")
        self.config = config if config is not None else GossipConfig()
        self.test_set = test_set
        self.seed = seed
        self._kernel = None
        if self.config.engine == "kernel":
            # Local import: the kernel module imports this one for the
            # config/result types, so the dependency must stay one-way at
            # import time.
            from repro.kernels.gossip_kernel import GossipKernelTrainer

            self._kernel = GossipKernelTrainer(
                model_factory, partitions, test_set, self.config,
                seed=seed, churn=churn, mean_latency_s=mean_latency_s,
                uplinks=uplinks,
            )
            self.family = self._kernel.family
            return
        self.simulator = Simulator()
        self.network = Network(self.simulator,
                               default_latency_s=mean_latency_s)
        topo_rng = derive_rng(seed, "gossip-topology")
        overlay = random_regular_overlay(
            len(partitions),
            min(self.config.overlay_degree, len(partitions) - 1),
            topo_rng,
        )
        address_of = self._address_of
        self.nodes: list[GossipNode] = []
        for index, part in enumerate(partitions):
            address = address_of(index)
            node_rng = derive_rng(seed, f"gossip-node-{index}")
            model = model_factory()
            node = GossipNode(
                address=address, model=model, data=part, config=self.config,
                simulator=self.simulator, network=self.network,
                peers=[], rng=node_rng,
            )
            self.nodes.append(node)
            self.network.attach(address, node,
                                upload_bytes_per_s=uplinks[index])
        peer_map = neighbors_map(overlay, address_of)
        for index, node in enumerate(self.nodes):
            node.peers = peer_map[address_of(index)]
        assign_latencies(self.network, overlay, address_of, topo_rng,
                         mean_latency_s=mean_latency_s)
        if churn is not None:
            churn.install(self.simulator, self.network,
                          [node.address for node in self.nodes],
                          derive_rng(seed, "gossip-churn"))
        self.family = self.nodes[0].family
        self._test_features = np.asarray(test_set.features, dtype=float)
        self._test_targets = (
            np.asarray(test_set.targets, dtype=np.int64)
            if self.family is not None else np.asarray(test_set.targets)
        )

    @staticmethod
    def _address_of(index: int) -> str:
        return f"gossip-{index}"

    # -- evaluation ---------------------------------------------------------------

    def _node_scores(self, indices: np.ndarray) -> np.ndarray:
        """Test scores for the given node indices, one stacked matmul when
        the model family supports it."""
        if self.family is not None:
            params = np.stack([
                self.nodes[i].tracked.model.params_buffer()
                for i in indices
            ])
            return self.family.scores(params, self._test_features,
                                      self._test_targets)
        return np.asarray([
            self.nodes[i].tracked.model.score(self.test_set.features,
                                              self.test_set.targets)
            for i in indices
        ])

    def mean_score(self, sample_nodes: int = 16) -> float:
        """Mean test score over a seeded sample of ``sample_nodes`` nodes.

        Sampling is deterministic via ``derive_rng(seed, "gossip-eval")``,
        shared with the kernel engine so accuracy histories match.
        """
        if self._kernel is not None:
            return self._kernel.mean_score(sample_nodes)
        indices = sample_eval_indices(self.seed, len(self.nodes),
                                      sample_nodes)
        return float(np.mean(self._node_scores(indices)))

    def final_params(self) -> np.ndarray:
        """The ``(nodes, params)`` parameter matrix (differential testing)."""
        if self._kernel is not None:
            return self._kernel.final_params()
        return np.stack([node.tracked.model.params for node in self.nodes])

    def final_ages(self) -> np.ndarray:
        """Per-node model ages (differential testing)."""
        if self._kernel is not None:
            return self._kernel.final_ages()
        return np.asarray([node.tracked.age for node in self.nodes],
                          dtype=np.int64)

    def run(self, duration_s: float,
            eval_interval_s: float = 50.0) -> GossipResult:
        """Run the protocol for ``duration_s`` of simulated time."""
        if self._kernel is not None:
            return self._kernel.run(duration_s, eval_interval_s)
        tracer = _tracer()
        saved_clock = tracer.sim_clock
        # Gossip runs on the discrete-event simulator's clock, not the
        # marketplace lifecycle clock; rebind for the duration of the run so
        # span sim-durations line up with ``history`` timestamps.
        tracer.sim_clock = lambda: self.simulator.now
        try:
            with tracer.span("gossip.run", nodes=len(self.nodes),
                             duration_s=duration_s) as root:
                for node in self.nodes:
                    # First draw on each node stream: the random wake phase
                    # (desynchronization).  The whole timeline goes into one
                    # simulator lane so wake times are the exact
                    # ``first + k*interval`` floats the kernel engine uses.
                    first = float(node.rng.uniform(
                        0, self.config.wake_interval_s
                    ))
                    times = wake_schedule(
                        first, self.config.wake_interval_s, duration_s
                    )
                    if len(times):
                        self.simulator.schedule_batch(times, node.on_wake)
                history: list[tuple[float, float]] = []
                checkpoints = np.arange(eval_interval_s, duration_s + 1e-9,
                                        eval_interval_s)
                for checkpoint in checkpoints:
                    with tracer.span("gossip.interval",
                                     until_s=float(checkpoint)) as interval:
                        self.simulator.run_until(float(checkpoint))
                        score = self.mean_score()
                        interval.set_attribute("mean_score", score)
                    history.append((float(checkpoint), score))
                root.set_attribute(
                    "messages", self.network.stats.messages_delivered
                )
                root.set_attribute("bytes", self.network.stats.bytes_delivered)
        finally:
            tracer.sim_clock = saved_clock
        per_node = self._node_scores(np.arange(len(self.nodes)))
        online_scores = [
            score for node, score in zip(self.nodes, per_node)
            if self.network.is_online(node.address)
        ]
        max_node_bytes = max(
            self.network.node_state(node.address).bytes_sent
            + self.network.node_state(node.address).bytes_received
            for node in self.nodes
        )
        return GossipResult(
            history=history,
            final_mean_score=float(np.mean(per_node)),
            final_online_score=float(
                np.mean(online_scores) if online_scores
                else np.mean(per_node)
            ),
            bytes_delivered=self.network.stats.bytes_delivered,
            messages_delivered=self.network.stats.messages_delivered,
            messages_dropped=self.network.stats.messages_dropped,
            max_node_bytes=max_node_bytes,
            per_node_scores=[float(score) for score in per_node],
            events_processed=self.simulator.events_processed,
            wakes=sum(node.wakes for node in self.nodes),
            merges=sum(node.merges_performed for node in self.nodes),
        )
