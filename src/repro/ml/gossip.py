"""Gossip learning (paper Section III-C, the selected aggregation method).

Implements the Ormándi-style protocol: every node periodically wakes, trains
its model on local data, and pushes the parameters to a random overlay
neighbor; on receipt, a node merges the incoming model with its own and takes
a local gradient step.  There is no coordinator, no global round, and no
barrier — the properties the paper values for PDS2 (no bottleneck, no
aggregation black box, churn tolerance).

:class:`GossipTrainer` wires nodes onto the discrete-event network, runs the
protocol for simulated time, and records an accuracy-versus-time history
plus full traffic accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.errors import MLError
from repro.ml.compression import (
    CompressedUpdate,
    CompressionConfig,
    compress,
    merge_compressed_into,
)
from repro.ml.datasets import Dataset
from repro.ml.merge import MergeStrategy, TrackedModel, merge_into
from repro.ml.models import Model
from repro.net.churn import ChurnModel
from repro.net.simulator import Network, Simulator
from repro.net.topology import (
    assign_latencies,
    neighbors_map,
    random_regular_overlay,
)
from repro.telemetry import metrics as _tm
from repro.telemetry.profiler import profiled_function
from repro.telemetry.tracing import tracer as _tracer
from repro.utils.rng import derive_rng

#: Fixed per-message envelope overhead (headers, age, sample count).
MESSAGE_OVERHEAD_BYTES = 64

_WAKES = _tm.counter(
    "pds2_gossip_wakes_total", "Gossip node wake cycles that ran"
)
_MERGES = _tm.counter(
    "pds2_gossip_merges_total", "Model merges performed on message receipt"
)
_PUSH_BYTES = _tm.histogram(
    "pds2_gossip_push_bytes", "Serialized size of pushed model messages",
    buckets=_tm.BYTES_BUCKETS,
)


@dataclass
class GossipConfig:
    """Protocol hyperparameters."""

    wake_interval_s: float = 10.0
    local_steps: int = 4
    batch_size: int = 16
    learning_rate: float = 0.1
    merge_strategy: MergeStrategy = MergeStrategy.AGE_WEIGHTED
    push_count: int = 1
    overlay_degree: int = 4
    compression: CompressionConfig = field(
        default_factory=CompressionConfig
    )
    dp_noise_std: float = 0.0  # Gaussian noise on every *shared* model

    def __post_init__(self) -> None:
        if self.wake_interval_s <= 0:
            raise MLError("wake interval must be positive")
        if self.local_steps < 1 or self.push_count < 1:
            raise MLError("local steps and push count must be >= 1")
        if self.dp_noise_std < 0:
            raise MLError("dp noise std must be non-negative")


@dataclass
class ModelMessage:
    """The gossip payload: a parameter vector plus merge metadata."""

    params: np.ndarray
    age: int
    samples: int

    @property
    def size_bytes(self) -> int:
        return self.params.nbytes + MESSAGE_OVERHEAD_BYTES


class GossipNode:
    """One gossip participant: local data, a tracked model, a wake loop."""

    def __init__(self, address: str, model: Model, data: Dataset,
                 config: GossipConfig, simulator: Simulator,
                 network: Network, peers: list[str],
                 rng: np.random.Generator):
        self.address = address
        self.tracked = TrackedModel(model=model, age=0, samples=len(data))
        self.data = data
        self.config = config
        self.simulator = simulator
        self.network = network
        self.peers = list(peers)
        self.rng = rng
        self.merges_performed = 0
        self.wakes = 0

    # -- protocol --------------------------------------------------------------

    def start(self) -> None:
        """Schedule the first wake with a random phase (desynchronization)."""
        first = float(self.rng.uniform(0, self.config.wake_interval_s))
        self.simulator.schedule(first, self._wake)

    def _wake(self) -> None:
        self.simulator.schedule(self.config.wake_interval_s, self._wake)
        if not self.network.is_online(self.address):
            return
        self.wakes += 1
        _WAKES.inc()
        self._train_local()
        for _ in range(self.config.push_count):
            if not self.peers:
                break
            peer = self.peers[int(self.rng.integers(0, len(self.peers)))]
            shared_params = self.tracked.model.params
            if self.config.dp_noise_std > 0:
                # Local DP: only a noised view of the model ever leaves the
                # node, bounding what any recipient learns about local data.
                shared_params = shared_params + self.rng.normal(
                    0.0, self.config.dp_noise_std, shared_params.shape
                )
            message = compress(
                shared_params,
                age=self.tracked.age,
                samples=self.tracked.samples,
                config=self.config.compression,
                rng=self.rng,
            )
            _PUSH_BYTES.observe(message.size_bytes)
            self.network.send(self.address, peer, message,
                              message.size_bytes)

    def _train_local(self) -> None:
        self.tracked.model.train_steps(
            self.data.features, self.data.targets,
            steps=self.config.local_steps,
            learning_rate=self.config.learning_rate,
            batch_size=self.config.batch_size,
            rng=self.rng,
        )
        self.tracked.age += self.config.local_steps

    @profiled_function("gossip.merge")
    def on_message(self, sender: str,
                   message: "CompressedUpdate | ModelMessage") -> None:
        """Merge the incoming model, then take one local correction step."""
        if isinstance(message, CompressedUpdate):
            merge_compressed_into(self.tracked, message,
                                  self.config.merge_strategy)
        else:
            merge_into(
                self.tracked,
                remote_params=message.params,
                remote_age=message.age,
                remote_samples=message.samples,
                strategy=self.config.merge_strategy,
            )
        self.merges_performed += 1
        _MERGES.inc()
        if len(self.data):
            self.tracked.model.train_steps(
                self.data.features, self.data.targets,
                steps=1,
                learning_rate=self.config.learning_rate,
                batch_size=self.config.batch_size,
                rng=self.rng,
            )
            self.tracked.age += 1


@dataclass
class GossipResult:
    """Outcome of one gossip run."""

    history: list[tuple[float, float]]          # (sim time, mean accuracy)
    final_mean_score: float
    final_online_score: float                   # mean over online nodes only
    bytes_delivered: int
    messages_delivered: int
    messages_dropped: int
    max_node_bytes: int                          # heaviest single node load
    per_node_scores: list[float] = field(default_factory=list)


class GossipTrainer:
    """Builds and runs a full gossip-learning deployment."""

    def __init__(self, model_factory: Callable[[], Model],
                 partitions: list[Dataset], test_set: Dataset,
                 config: Optional[GossipConfig] = None, seed: int = 0,
                 churn: Optional[ChurnModel] = None,
                 mean_latency_s: float = 0.05,
                 upload_bytes_per_s: "float | list[float]" = 1_250_000.0):
        """``upload_bytes_per_s`` may be a single rate or one per node —
        the heterogeneous-devices setting of Section III-C."""
        if len(partitions) < 2:
            raise MLError("gossip needs at least two providers")
        if isinstance(upload_bytes_per_s, (int, float)):
            uplinks = [float(upload_bytes_per_s)] * len(partitions)
        else:
            uplinks = [float(rate) for rate in upload_bytes_per_s]
            if len(uplinks) != len(partitions):
                raise MLError("need one uplink rate per provider")
        self.config = config if config is not None else GossipConfig()
        self.test_set = test_set
        self.simulator = Simulator()
        self.network = Network(self.simulator,
                               default_latency_s=mean_latency_s)
        topo_rng = derive_rng(seed, "gossip-topology")
        overlay = random_regular_overlay(
            len(partitions),
            min(self.config.overlay_degree, len(partitions) - 1),
            topo_rng,
        )
        address_of = self._address_of
        self.nodes: list[GossipNode] = []
        for index, part in enumerate(partitions):
            address = address_of(index)
            node_rng = derive_rng(seed, f"gossip-node-{index}")
            model = model_factory()
            node = GossipNode(
                address=address, model=model, data=part, config=self.config,
                simulator=self.simulator, network=self.network,
                peers=[], rng=node_rng,
            )
            self.nodes.append(node)
            self.network.attach(address, node,
                                upload_bytes_per_s=uplinks[index])
        peer_map = neighbors_map(overlay, address_of)
        for index, node in enumerate(self.nodes):
            node.peers = peer_map[address_of(index)]
        assign_latencies(self.network, overlay, address_of, topo_rng,
                         mean_latency_s=mean_latency_s)
        if churn is not None:
            churn.install(self.simulator, self.network,
                          [node.address for node in self.nodes],
                          derive_rng(seed, "gossip-churn"))

    @staticmethod
    def _address_of(index: int) -> str:
        return f"gossip-{index}"

    # -- evaluation ---------------------------------------------------------------

    def mean_score(self, sample_nodes: int = 16) -> float:
        """Mean test score over (up to) ``sample_nodes`` evenly-spaced nodes."""
        step = max(1, len(self.nodes) // sample_nodes)
        chosen = self.nodes[::step][:sample_nodes]
        scores = [
            node.tracked.model.score(self.test_set.features,
                                     self.test_set.targets)
            for node in chosen
        ]
        return float(np.mean(scores))

    def run(self, duration_s: float,
            eval_interval_s: float = 50.0) -> GossipResult:
        """Run the protocol for ``duration_s`` of simulated time."""
        tracer = _tracer()
        saved_clock = tracer.sim_clock
        # Gossip runs on the discrete-event simulator's clock, not the
        # marketplace lifecycle clock; rebind for the duration of the run so
        # span sim-durations line up with ``history`` timestamps.
        tracer.sim_clock = lambda: self.simulator.now
        try:
            with tracer.span("gossip.run", nodes=len(self.nodes),
                             duration_s=duration_s) as root:
                for node in self.nodes:
                    node.start()
                history: list[tuple[float, float]] = []
                checkpoints = np.arange(eval_interval_s, duration_s + 1e-9,
                                        eval_interval_s)
                for checkpoint in checkpoints:
                    with tracer.span("gossip.interval",
                                     until_s=float(checkpoint)) as interval:
                        self.simulator.run_until(float(checkpoint))
                        score = self.mean_score()
                        interval.set_attribute("mean_score", score)
                    history.append((float(checkpoint), score))
                root.set_attribute(
                    "messages", self.network.stats.messages_delivered
                )
                root.set_attribute("bytes", self.network.stats.bytes_delivered)
        finally:
            tracer.sim_clock = saved_clock
        per_node = [
            node.tracked.model.score(self.test_set.features,
                                     self.test_set.targets)
            for node in self.nodes
        ]
        online_scores = [
            score for node, score in zip(self.nodes, per_node)
            if self.network.is_online(node.address)
        ]
        max_node_bytes = max(
            self.network.node_state(node.address).bytes_sent
            + self.network.node_state(node.address).bytes_received
            for node in self.nodes
        )
        return GossipResult(
            history=history,
            final_mean_score=float(np.mean(per_node)),
            final_online_score=float(
                np.mean(online_scores) if online_scores
                else np.mean(per_node)
            ),
            bytes_delivered=self.network.stats.bytes_delivered,
            messages_delivered=self.network.stats.messages_delivered,
            messages_dropped=self.network.stats.messages_dropped,
            max_node_bytes=max_node_bytes,
            per_node_scores=per_node,
        )
