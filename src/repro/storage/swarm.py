"""Swarm-style decentralized content-addressed storage.

Özyılmaz et al. (cited in Section V) use Ethereum Swarm as the marketplace
store; this module implements that flavor of storage: data is chunked, each
chunk is content-addressed, and chunks are placed on the ``replication``
nodes whose ids are XOR-closest to the chunk hash (Kademlia placement).
Retrieval survives node failures as long as one replica of every chunk
remains, and every chunk is integrity-checked against its address on read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.hashing import keccak256
from repro.errors import ObjectNotFoundError, StorageError
from repro.storage.base import StorageBackend, StoredObject

DEFAULT_CHUNK_SIZE = 4096


@dataclass
class SwarmNode:
    """One storage node: an id in the hash keyspace plus its chunk store."""

    node_id: bytes
    chunks: dict[str, bytes] = field(default_factory=dict)
    online: bool = True

    def store_chunk(self, address: str, data: bytes) -> None:
        self.chunks[address] = data

    def fetch_chunk(self, address: str) -> bytes | None:
        if not self.online:
            return None
        return self.chunks.get(address)


def _xor_distance(a: bytes, b: bytes) -> int:
    return int.from_bytes(a, "big") ^ int.from_bytes(b, "big")


@dataclass(frozen=True)
class _Manifest:
    """Recipe to reassemble an object: ordered chunk addresses."""

    chunk_addresses: tuple[str, ...]
    total_size: int


class SwarmStore(StorageBackend):
    """A network of :class:`SwarmNode` instances with replicated chunks.

    The manifest map and ACLs model the thin coordination layer a real
    swarm keeps in its feeds/manifest structures.
    """

    def __init__(self, num_nodes: int, rng: np.random.Generator,
                 replication: int = 3,
                 chunk_size: int = DEFAULT_CHUNK_SIZE):
        super().__init__()
        if num_nodes < 1:
            raise StorageError("swarm needs at least one node")
        if not 1 <= replication <= num_nodes:
            raise StorageError("replication must be within [1, num_nodes]")
        if chunk_size < 1:
            raise StorageError("chunk size must be positive")
        self.nodes = [
            SwarmNode(node_id=rng.bytes(32)) for _ in range(num_nodes)
        ]
        self.replication = replication
        self.chunk_size = chunk_size
        self._manifests: dict[str, _Manifest] = {}
        self._meta: dict[str, StoredObject] = {}

    # -- placement ------------------------------------------------------------

    def _nodes_for(self, chunk_address: str) -> list[SwarmNode]:
        """The ``replication`` nodes XOR-closest to the chunk address."""
        target = bytes.fromhex(chunk_address)
        ranked = sorted(
            self.nodes, key=lambda node: _xor_distance(node.node_id, target)
        )
        return ranked[: self.replication]

    # -- persistence hooks -----------------------------------------------------

    def _store(self, object_id: str, obj: StoredObject) -> None:
        if obj.data:
            addresses = []
            for offset in range(0, len(obj.data), self.chunk_size):
                chunk = obj.data[offset:offset + self.chunk_size]
                address = keccak256(chunk).hex()
                for node in self._nodes_for(address):
                    node.store_chunk(address, chunk)
                addresses.append(address)
            self._manifests[object_id] = _Manifest(
                chunk_addresses=tuple(addresses), total_size=len(obj.data)
            )
            obj = StoredObject(data=b"", owner=obj.owner, grants=obj.grants)
        self._meta[object_id] = obj

    def _load(self, object_id: str) -> StoredObject:
        if object_id not in self._meta:
            raise ObjectNotFoundError(f"no object {object_id[:12]}…")
        meta = self._meta[object_id]
        manifest = self._manifests[object_id]
        pieces = []
        for address in manifest.chunk_addresses:
            chunk = self._fetch_verified_chunk(address)
            if chunk is None:
                raise StorageError(
                    f"chunk {address[:12]}… unavailable (all replicas down)"
                )
            pieces.append(chunk)
        data = b"".join(pieces)
        return StoredObject(data=data, owner=meta.owner, grants=meta.grants)

    def _fetch_verified_chunk(self, address: str) -> bytes | None:
        for node in self._nodes_for(address):
            chunk = node.fetch_chunk(address)
            if chunk is not None and keccak256(chunk).hex() == address:
                return chunk
        return None

    def _exists(self, object_id: str) -> bool:
        return object_id in self._meta

    # -- operational controls -----------------------------------------------------

    def fail_nodes(self, count: int, rng: np.random.Generator) -> list[int]:
        """Take ``count`` random online nodes offline; returns their indexes."""
        online = [i for i, node in enumerate(self.nodes) if node.online]
        if count > len(online):
            raise StorageError("cannot fail more nodes than are online")
        chosen = rng.choice(len(online), size=count, replace=False)
        failed = [online[int(i)] for i in chosen]
        for index in failed:
            self.nodes[index].online = False
        return failed

    def recover_all_nodes(self) -> None:
        """Bring every node back online (chunks intact)."""
        for node in self.nodes:
            node.online = True

    def repair(self, object_id: str) -> int:
        """Re-replicate an object's chunks onto healthy nodes.

        For every chunk, surviving verified replicas are copied onto the
        ``replication`` XOR-closest *online* nodes that lack them — the
        maintenance loop a real swarm runs continuously.  Returns the
        number of new replicas created; raises when a chunk has no
        surviving replica at all (data loss).
        """
        manifest = self._manifests.get(object_id)
        if manifest is None:
            raise ObjectNotFoundError(f"no object {object_id[:12]}…")
        created = 0
        for address in manifest.chunk_addresses:
            chunk = self._fetch_any_verified_chunk(address)
            if chunk is None:
                raise StorageError(
                    f"chunk {address[:12]}… lost: no surviving replica"
                )
            target = bytes.fromhex(address)
            online_ranked = sorted(
                (node for node in self.nodes if node.online),
                key=lambda node: _xor_distance(node.node_id, target),
            )
            for node in online_ranked[: self.replication]:
                if address not in node.chunks:
                    node.store_chunk(address, chunk)
                    created += 1
        return created

    def _fetch_any_verified_chunk(self, address: str) -> bytes | None:
        """Search *all* online nodes for a valid replica (repair path)."""
        for node in self.nodes:
            chunk = node.fetch_chunk(address)
            if chunk is not None and keccak256(chunk).hex() == address:
                return chunk
        return None

    def chunk_availability(self, object_id: str) -> float:
        """Fraction of the object's chunks still retrievable right now."""
        manifest = self._manifests.get(object_id)
        if manifest is None:
            raise ObjectNotFoundError(f"no object {object_id[:12]}…")
        available = sum(
            1 for address in manifest.chunk_addresses
            if self._fetch_verified_chunk(address) is not None
        )
        return available / max(1, len(manifest.chunk_addresses))
