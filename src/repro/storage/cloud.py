"""Cloud storage with key-keeper escrow (Section V, Zheng et al. 2018).

The paper's related work stores large datasets on untrusted clouds using
symmetric encryption whose key is Shamir-split across "Key Keeper" nodes.
This backend reproduces that construction:

* the cloud operator stores only ciphertext (it can never decrypt);
* the data key is split ``threshold``-of-``keepers``; each keeper releases
  its share only to readers the owner authorized;
* a reader must gather ``threshold`` shares to reconstruct the key, so up to
  ``threshold - 1`` colluding keepers (plus the cloud) learn nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.secret_sharing import (
    ShamirShare,
    shamir_reconstruct_bytes,
    shamir_share_bytes,
)
from repro.crypto.symmetric import Envelope, decrypt, encrypt, generate_key
from repro.errors import AccessDeniedError, ObjectNotFoundError, StorageError
from repro.storage.base import StorageBackend, StoredObject


@dataclass
class KeyKeeper:
    """Holds per-object key shares and enforces the owner's reader list."""

    keeper_id: str
    _shares: dict[str, list[ShamirShare]] = field(default_factory=dict)
    _authorized: dict[str, set[str]] = field(default_factory=dict)
    _owners: dict[str, str] = field(default_factory=dict)
    online: bool = True

    def deposit(self, object_id: str, owner: str,
                shares: list[ShamirShare]) -> None:
        """Store the owner's key share for one object."""
        self._shares[object_id] = shares
        self._owners[object_id] = owner
        self._authorized.setdefault(object_id, set())

    def authorize(self, object_id: str, owner: str, reader: str) -> None:
        """Owner-only: allow ``reader`` to collect this keeper's share."""
        if self._owners.get(object_id) != owner:
            raise AccessDeniedError("only the owner may authorize readers")
        self._authorized[object_id].add(reader)

    def release_share(self, object_id: str,
                      requester: str) -> list[ShamirShare]:
        """Hand the share to an authorized requester (or the owner)."""
        if not self.online:
            raise StorageError(f"key keeper {self.keeper_id} is offline")
        if object_id not in self._shares:
            raise ObjectNotFoundError(
                f"keeper {self.keeper_id} holds no share for this object"
            )
        is_owner = self._owners.get(object_id) == requester
        if not is_owner and requester not in self._authorized[object_id]:
            raise AccessDeniedError(
                f"keeper {self.keeper_id} has no authorization for {requester}"
            )
        return self._shares[object_id]


class CloudStore(StorageBackend):
    """Ciphertext-only cloud plus a ring of key keepers."""

    def __init__(self, keepers: int, threshold: int,
                 rng: np.random.Generator):
        super().__init__()
        if not 1 <= threshold <= keepers:
            raise StorageError("need 1 <= threshold <= keepers")
        self.keepers = [KeyKeeper(keeper_id=f"keeper-{i}") for i in range(keepers)]
        self.threshold = threshold
        self._rng = rng
        self._envelopes: dict[str, Envelope] = {}
        self._meta: dict[str, StoredObject] = {}

    # -- persistence hooks -----------------------------------------------------

    def _store(self, object_id: str, obj: StoredObject) -> None:
        if obj.data:
            data_key = generate_key(self._rng)
            self._envelopes[object_id] = encrypt(data_key, obj.data, self._rng)
            per_keeper = shamir_share_bytes(
                data_key, self.threshold, len(self.keepers), self._rng
            )
            for keeper, shares in zip(self.keepers, per_keeper):
                keeper.deposit(object_id, obj.owner, shares)
            obj = StoredObject(data=b"", owner=obj.owner, grants=obj.grants)
        self._meta[object_id] = obj

    def _load(self, object_id: str) -> StoredObject:
        if object_id not in self._meta:
            raise ObjectNotFoundError(f"no object {object_id[:12]}…")
        meta = self._meta[object_id]
        # Reconstruction path: the owner can always reassemble the key.
        data_key = self._collect_key(object_id, meta.owner)
        plaintext = decrypt(data_key, self._envelopes[object_id])
        return StoredObject(data=plaintext, owner=meta.owner, grants=meta.grants)

    def _exists(self, object_id: str) -> bool:
        return object_id in self._meta

    # -- the escrow protocol ------------------------------------------------------

    def grant(self, object_id: str, owner: str, grantee: str) -> None:
        """Grant access *and* authorize the grantee at every keeper."""
        super().grant(object_id, owner, grantee)
        for keeper in self.keepers:
            keeper.authorize(object_id, owner, grantee)

    def _collect_key(self, object_id: str, requester: str) -> bytes:
        """Gather >= threshold shares from online keepers; rebuild the key."""
        collected: list[list[ShamirShare]] = []
        errors: list[str] = []
        for keeper in self.keepers:
            if len(collected) >= self.threshold:
                break
            try:
                collected.append(keeper.release_share(object_id, requester))
            except (StorageError, AccessDeniedError, ObjectNotFoundError) as exc:
                errors.append(str(exc))
        if len(collected) < self.threshold:
            raise AccessDeniedError(
                "could not gather enough key shares: " + "; ".join(errors[:3])
            )
        return shamir_reconstruct_bytes(collected)

    def cloud_visible_bytes(self, object_id: str) -> bytes:
        """What the cloud operator actually stores (ciphertext only)."""
        if object_id not in self._envelopes:
            raise ObjectNotFoundError(f"no object {object_id[:12]}…")
        return self._envelopes[object_id].to_bytes()

    def fail_keepers(self, count: int) -> None:
        """Take the first ``count`` keepers offline (availability testing)."""
        if count > len(self.keepers):
            raise StorageError("cannot fail more keepers than exist")
        for keeper in self.keepers[:count]:
            keeper.online = False

    def recover_keepers(self) -> None:
        """Bring every keeper back online."""
        for keeper in self.keepers:
            keeper.online = True
