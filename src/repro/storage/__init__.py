"""Storage subsystem (paper Sections II-C, IV-C, V).

Pluggable backends — provider-local encrypted storage, a Swarm-style
content-addressed network, and cloud storage with Shamir key keepers — plus
the metadata catalog and the semantic discovery layer.
"""

from repro.storage.base import (
    InMemoryBackend,
    StorageBackend,
    StoredObject,
    TransferLog,
    content_address,
)
from repro.storage.catalog import DataCatalog, DataRecord
from repro.storage.cloud import CloudStore, KeyKeeper
from repro.storage.local import LocalEncryptedStore
from repro.storage.semantic import (
    AllOf,
    AnyOf,
    ConceptRequirement,
    EqualsRequirement,
    OneOfRequirement,
    Ontology,
    RangeRequirement,
    Requirement,
    SemanticAnnotation,
    annotation_leakage_bits,
    concept_leakage_bits,
    generalize_annotation,
    property_leakage_bits,
)
from repro.storage.swarm import SwarmNode, SwarmStore

__all__ = [
    "InMemoryBackend",
    "StorageBackend",
    "StoredObject",
    "TransferLog",
    "content_address",
    "DataCatalog",
    "DataRecord",
    "CloudStore",
    "KeyKeeper",
    "LocalEncryptedStore",
    "AllOf",
    "AnyOf",
    "ConceptRequirement",
    "EqualsRequirement",
    "OneOfRequirement",
    "Ontology",
    "RangeRequirement",
    "Requirement",
    "SemanticAnnotation",
    "annotation_leakage_bits",
    "concept_leakage_bits",
    "generalize_annotation",
    "property_leakage_bits",
    "SwarmNode",
    "SwarmStore",
]
