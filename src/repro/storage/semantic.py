"""Semantic data discovery and filtering (paper Section IV-C).

The paper proposes annotating data with ontology-based semantic metadata so
workloads can state machine-verifiable requirements, and identifies the core
tension: richer metadata enables more precise matching but leaks more
information to the storage subsystem.  This module implements all three
pieces:

* :class:`Ontology` — a concept taxonomy (DAG) with subsumption reasoning;
* :class:`Requirement` — a small predicate language over annotations
  (concept subsumption, numeric ranges, equality, set membership, and/or);
* :func:`annotation_leakage_bits` — an information-theoretic measure of what
  an annotation reveals, so experiment E10 can chart the precision/leakage
  trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable

import networkx as nx

from repro.errors import StorageError


class Ontology:
    """A rooted is-a taxonomy of concepts.

    Implemented over a ``networkx.DiGraph`` with edges parent -> child.
    Concepts are strings; ``subsumes(general, specific)`` answers the
    reasoning queries requirements need.
    """

    def __init__(self, root: str = "thing"):
        self._graph = nx.DiGraph()
        self._graph.add_node(root)
        self.root = root

    def add_concept(self, concept: str, parent: str) -> None:
        """Add ``concept`` as a child of an existing ``parent``."""
        if parent not in self._graph:
            raise StorageError(f"unknown parent concept {parent!r}")
        if concept in self._graph:
            raise StorageError(f"concept {concept!r} already defined")
        self._graph.add_node(concept)
        self._graph.add_edge(parent, concept)

    def has_concept(self, concept: str) -> bool:
        return concept in self._graph

    def subsumes(self, general: str, specific: str) -> bool:
        """True when ``specific`` is-a ``general`` (reflexive)."""
        if general not in self._graph or specific not in self._graph:
            return False
        if general == specific:
            return True
        return nx.has_path(self._graph, general, specific)

    def ancestors(self, concept: str) -> set[str]:
        """All concepts subsuming ``concept`` (excluding itself)."""
        if concept not in self._graph:
            raise StorageError(f"unknown concept {concept!r}")
        return nx.ancestors(self._graph, concept)

    def descendants(self, concept: str) -> set[str]:
        """All concepts subsumed by ``concept`` (excluding itself)."""
        if concept not in self._graph:
            raise StorageError(f"unknown concept {concept!r}")
        return nx.descendants(self._graph, concept)

    def leaves_under(self, concept: str) -> set[str]:
        """Leaf concepts subsumed by ``concept`` (including itself if leaf)."""
        subtree = self.descendants(concept) | {concept}
        return {
            node for node in subtree if self._graph.out_degree(node) == 0
        }

    def depth(self, concept: str) -> int:
        """Shortest is-a distance from the root."""
        return nx.shortest_path_length(self._graph, self.root, concept)

    @property
    def concepts(self) -> list[str]:
        return sorted(self._graph.nodes)

    @classmethod
    def iot_default(cls) -> "Ontology":
        """The IoT taxonomy used by the examples and benchmarks.

        A small SSN/SOSA-flavored sensor ontology: modality families with
        concrete sensor types as leaves.
        """
        onto = cls(root="thing")
        taxonomy = {
            "thing": ["sensor_data", "device_metadata"],
            "sensor_data": ["environmental", "physiological", "motion",
                            "energy"],
            "environmental": ["temperature", "humidity", "air_quality",
                              "noise_level"],
            "physiological": ["heart_rate", "blood_pressure", "spo2",
                              "step_count"],
            "motion": ["accelerometer", "gyroscope", "gps_trace"],
            "energy": ["power_consumption", "solar_output",
                       "battery_level"],
            "device_metadata": ["firmware_version", "device_model"],
        }
        for parent, children in taxonomy.items():
            for child in children:
                onto.add_concept(child, parent)
        return onto


@dataclass(frozen=True)
class SemanticAnnotation:
    """Machine-readable metadata attached to a registered dataset.

    ``concept`` places the data in the ontology; ``properties`` carry
    scalar/categorical facts (sampling rate, region, units...).  This is all
    the storage subsystem sees — never the data itself.
    """

    concept: str
    properties: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"concept": self.concept, "properties": dict(self.properties)}

    @classmethod
    def from_dict(cls, data: dict) -> "SemanticAnnotation":
        return cls(concept=data["concept"],
                   properties=dict(data.get("properties", {})))


# ---------------------------------------------------------------------------
# Requirement language
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Requirement:
    """Base class: a predicate over (ontology, annotation)."""

    def matches(self, ontology: Ontology,
                annotation: SemanticAnnotation) -> bool:
        raise NotImplementedError

    def complexity(self) -> int:
        """Number of atomic predicates (E10's requirement-complexity axis)."""
        return 1

    def to_dict(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(data: dict) -> "Requirement":
        """Deserialize any requirement node from its tagged dict form."""
        kind = data.get("kind")
        if kind == "concept":
            return ConceptRequirement(concept=data["concept"])
        if kind == "range":
            return RangeRequirement(
                property_name=data["property"],
                minimum=data.get("minimum"),
                maximum=data.get("maximum"),
            )
        if kind == "equals":
            return EqualsRequirement(property_name=data["property"],
                                     value=data["value"])
        if kind == "one_of":
            return OneOfRequirement(property_name=data["property"],
                                    values=tuple(data["values"]))
        if kind in ("all", "any"):
            clauses = tuple(Requirement.from_dict(c) for c in data["clauses"])
            return (AllOf(clauses) if kind == "all" else AnyOf(clauses))
        raise StorageError(f"unknown requirement kind {kind!r}")


@dataclass(frozen=True)
class ConceptRequirement(Requirement):
    """The annotation's concept must be subsumed by ``concept``."""

    concept: str

    def matches(self, ontology: Ontology,
                annotation: SemanticAnnotation) -> bool:
        return ontology.subsumes(self.concept, annotation.concept)

    def to_dict(self) -> dict:
        return {"kind": "concept", "concept": self.concept}


@dataclass(frozen=True)
class RangeRequirement(Requirement):
    """A numeric property must lie in [minimum, maximum] (either optional)."""

    property_name: str
    minimum: float | None = None
    maximum: float | None = None

    def matches(self, ontology: Ontology,
                annotation: SemanticAnnotation) -> bool:
        value = annotation.properties.get(self.property_name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True

    def to_dict(self) -> dict:
        return {"kind": "range", "property": self.property_name,
                "minimum": self.minimum, "maximum": self.maximum}


@dataclass(frozen=True)
class EqualsRequirement(Requirement):
    """A property must equal ``value`` exactly."""

    property_name: str
    value: Any = None

    def matches(self, ontology: Ontology,
                annotation: SemanticAnnotation) -> bool:
        return annotation.properties.get(self.property_name) == self.value

    def to_dict(self) -> dict:
        return {"kind": "equals", "property": self.property_name,
                "value": self.value}


@dataclass(frozen=True)
class OneOfRequirement(Requirement):
    """A property must take one of an allowed set of values."""

    property_name: str
    values: tuple = ()

    def matches(self, ontology: Ontology,
                annotation: SemanticAnnotation) -> bool:
        return annotation.properties.get(self.property_name) in self.values

    def to_dict(self) -> dict:
        return {"kind": "one_of", "property": self.property_name,
                "values": list(self.values)}


@dataclass(frozen=True)
class AllOf(Requirement):
    """Conjunction of clauses."""

    clauses: tuple[Requirement, ...] = ()

    def matches(self, ontology: Ontology,
                annotation: SemanticAnnotation) -> bool:
        return all(c.matches(ontology, annotation) for c in self.clauses)

    def complexity(self) -> int:
        return sum(c.complexity() for c in self.clauses)

    def to_dict(self) -> dict:
        return {"kind": "all", "clauses": [c.to_dict() for c in self.clauses]}


@dataclass(frozen=True)
class AnyOf(Requirement):
    """Disjunction of clauses."""

    clauses: tuple[Requirement, ...] = ()

    def matches(self, ontology: Ontology,
                annotation: SemanticAnnotation) -> bool:
        return any(c.matches(ontology, annotation) for c in self.clauses)

    def complexity(self) -> int:
        return sum(c.complexity() for c in self.clauses)

    def to_dict(self) -> dict:
        return {"kind": "any", "clauses": [c.to_dict() for c in self.clauses]}


# ---------------------------------------------------------------------------
# Metadata leakage quantification
# ---------------------------------------------------------------------------


def concept_leakage_bits(ontology: Ontology, concept: str) -> float:
    """Bits revealed by disclosing ``concept`` about the true leaf type.

    With a uniform prior over the ontology's leaves, naming a concept that
    covers ``k`` of ``n`` leaves reveals ``log2(n / k)`` bits.  Annotating
    at the root reveals 0 bits; a leaf annotation reveals the maximum.
    """
    total_leaves = len(ontology.leaves_under(ontology.root))
    covered = len(ontology.leaves_under(concept))
    if covered == 0:
        raise StorageError(f"concept {concept!r} covers no leaves")
    return math.log2(total_leaves / covered)


def property_leakage_bits(properties: dict[str, Any],
                          bits_per_property: float = 4.0) -> float:
    """Crude leakage charge for disclosed properties.

    Each scalar property is charged a flat number of bits (default 4,
    i.e. a 16-bucket quantization) — enough resolution for the monotone
    trade-off experiment E10 needs without modeling full distributions.
    """
    return bits_per_property * len(properties)


def annotation_leakage_bits(ontology: Ontology,
                            annotation: SemanticAnnotation,
                            bits_per_property: float = 4.0) -> float:
    """Total metadata leakage of one annotation (concept + properties)."""
    return (
        concept_leakage_bits(ontology, annotation.concept)
        + property_leakage_bits(annotation.properties, bits_per_property)
    )


def generalize_annotation(ontology: Ontology,
                          annotation: SemanticAnnotation,
                          levels: int,
                          drop_properties: Iterable[str] = ()) -> SemanticAnnotation:
    """Privacy knob: climb ``levels`` up the taxonomy and drop properties.

    This is the provider-side mitigation for the leakage trade-off: a
    coarser annotation leaks less but may miss matching workloads.
    """
    concept = annotation.concept
    for _ in range(levels):
        parents = list(ontology._graph.predecessors(concept))
        if not parents:
            break
        concept = parents[0]
    remaining = {
        key: value for key, value in annotation.properties.items()
        if key not in set(drop_properties)
    }
    return SemanticAnnotation(concept=concept, properties=remaining)
