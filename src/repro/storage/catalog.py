"""The data catalog: metadata-only registry driving workload matching.

The storage subsystem's second duty (Section II-C) is to "match data against
available workloads" using only metadata, never the data itself.  The catalog
stores :class:`DataRecord` entries — ownership, location, content hash, size,
timestamp and a semantic annotation — and answers requirement queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ObjectNotFoundError, StorageError
from repro.storage.semantic import Ontology, Requirement, SemanticAnnotation


@dataclass(frozen=True)
class DataRecord:
    """Metadata for one registered dataset.

    ``content_hash`` is the hex content address of the (encrypted or plain)
    stored object; ``backend_name``/``object_id`` locate it; the annotation
    is what matching sees.
    """

    record_id: str
    owner: str
    backend_name: str
    object_id: str
    content_hash: str
    size_bytes: int
    created_at: float
    annotation: SemanticAnnotation

    def to_dict(self) -> dict:
        return {
            "record_id": self.record_id,
            "owner": self.owner,
            "backend_name": self.backend_name,
            "object_id": self.object_id,
            "content_hash": self.content_hash,
            "size_bytes": self.size_bytes,
            "created_at": self.created_at,
            "annotation": self.annotation.to_dict(),
        }


@dataclass
class DataCatalog:
    """In-memory metadata catalog bound to one ontology."""

    ontology: Ontology
    _records: dict[str, DataRecord] = field(default_factory=dict)
    _by_owner: dict[str, list[str]] = field(default_factory=dict)

    def register(self, record: DataRecord) -> None:
        """Add a record; concept must exist and record ids must be unique."""
        if record.record_id in self._records:
            raise StorageError(f"record {record.record_id!r} already exists")
        if not self.ontology.has_concept(record.annotation.concept):
            raise StorageError(
                f"annotation concept {record.annotation.concept!r} "
                "is not in the ontology"
            )
        if record.size_bytes < 0:
            raise StorageError("record size must be non-negative")
        self._records[record.record_id] = record
        self._by_owner.setdefault(record.owner, []).append(record.record_id)

    def deregister(self, record_id: str, owner: str) -> None:
        """Remove a record (owner-only) — the data-control requirement."""
        record = self.get(record_id)
        if record.owner != owner:
            raise StorageError("only the owner may deregister a record")
        del self._records[record_id]
        self._by_owner[owner].remove(record_id)

    def get(self, record_id: str) -> DataRecord:
        """Look up one record by id."""
        if record_id not in self._records:
            raise ObjectNotFoundError(f"no record {record_id!r}")
        return self._records[record_id]

    def __len__(self) -> int:
        return len(self._records)

    def records_of(self, owner: str) -> list[DataRecord]:
        """All records registered by ``owner``."""
        return [self._records[rid] for rid in self._by_owner.get(owner, [])]

    def all_records(self) -> Iterator[DataRecord]:
        """Every record, in registration order."""
        return iter(list(self._records.values()))

    # -- matching -------------------------------------------------------------

    def match(self, requirement: Requirement) -> list[DataRecord]:
        """Records whose annotation satisfies ``requirement``."""
        return [
            record for record in self._records.values()
            if requirement.matches(self.ontology, record.annotation)
        ]

    def match_for_owner(self, requirement: Requirement,
                        owner: str) -> list[DataRecord]:
        """The owner's records matching ``requirement``.

        This is the notification path: when a new workload appears, each
        provider's storage subsystem runs this to decide whether to ask the
        provider to participate.
        """
        return [
            record for record in self.records_of(owner)
            if requirement.matches(self.ontology, record.annotation)
        ]
