"""Storage-backend interface (paper Section II-C, "storage subsystem").

PDS2 is storage-agnostic by design (Section II-F): providers may keep data on
their own hardware, in a decentralized swarm, or on third-party clouds, as
long as the backend exposes this interface:

* content-addressed ``put`` / ``get`` with integrity verification,
* owner-controlled access grants (the *data control* requirement),
* transfer accounting, so experiment E2 can compare the data-movement cost
  of the Fig. 3 hardware configurations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.crypto.hashing import keccak256
from repro.errors import AccessDeniedError, ObjectNotFoundError
from repro.telemetry import metrics as _tm
from repro.telemetry.profiler import profiled_function

_STORAGE_OPS = _tm.counter(
    "pds2_storage_ops_total", "Storage operations, by op and backend class",
    labelnames=("op", "backend"),
)
_STORAGE_BYTES = _tm.counter(
    "pds2_storage_bytes_total", "Bytes moved, by direction and backend class",
    labelnames=("direction", "backend"),
)
_OBJECT_BYTES = _tm.histogram(
    "pds2_storage_object_bytes", "Size distribution of stored/fetched blobs",
    buckets=_tm.BYTES_BUCKETS,
)


def content_address(data: bytes) -> str:
    """The content address of ``data``: hex Keccak-256 of the bytes."""
    return keccak256(data).hex()


@dataclass
class TransferLog:
    """Byte-level accounting of what a backend moved, and for whom."""

    bytes_in: int = 0
    bytes_out: int = 0
    reads: int = 0
    writes: int = 0

    def record_write(self, size: int) -> None:
        self.bytes_in += size
        self.writes += 1

    def record_read(self, size: int) -> None:
        self.bytes_out += size
        self.reads += 1


@dataclass
class StoredObject:
    """One stored blob plus its access-control list."""

    data: bytes
    owner: str
    grants: set[str] = field(default_factory=set)

    def readable_by(self, requester: str) -> bool:
        return requester == self.owner or requester in self.grants


class StorageBackend(abc.ABC):
    """Common behavior for all storage subsystems.

    Concrete backends override the private persistence hooks; the public
    methods implement the shared access-control and accounting logic so
    every backend enforces the same ownership rules.
    """

    def __init__(self) -> None:
        self.transfer_log = TransferLog()

    # -- persistence hooks ------------------------------------------------------

    @abc.abstractmethod
    def _store(self, object_id: str, obj: StoredObject) -> None:
        """Persist ``obj`` under ``object_id``."""

    @abc.abstractmethod
    def _load(self, object_id: str) -> StoredObject:
        """Load the object or raise :class:`ObjectNotFoundError`."""

    @abc.abstractmethod
    def _exists(self, object_id: str) -> bool:
        """True when an object is stored under ``object_id``."""

    # -- public API ----------------------------------------------------------------

    @profiled_function("storage.put")
    def put(self, data: bytes, owner: str) -> str:
        """Store ``data`` for ``owner``; returns its content address.

        Re-putting identical bytes is idempotent and keeps the original
        owner (content addressing deduplicates).
        """
        object_id = content_address(data)
        if not self._exists(object_id):
            self._store(object_id, StoredObject(data=data, owner=owner))
        self.transfer_log.record_write(len(data))
        backend = type(self).__name__
        _STORAGE_OPS.labels(op="put", backend=backend).inc()
        _STORAGE_BYTES.labels(direction="in", backend=backend).inc(len(data))
        _OBJECT_BYTES.observe(len(data))
        return object_id

    @profiled_function("storage.get")
    def get(self, object_id: str, requester: str) -> bytes:
        """Fetch a blob, enforcing the owner's access grants."""
        obj = self._load(object_id)
        if not obj.readable_by(requester):
            raise AccessDeniedError(
                f"{requester} may not read object {object_id[:12]}…"
            )
        self._verify_integrity(object_id, obj.data)
        self.transfer_log.record_read(len(obj.data))
        backend = type(self).__name__
        _STORAGE_OPS.labels(op="get", backend=backend).inc()
        _STORAGE_BYTES.labels(
            direction="out", backend=backend
        ).inc(len(obj.data))
        return obj.data

    def grant(self, object_id: str, owner: str, grantee: str) -> None:
        """Owner-only: authorize ``grantee`` to read the object."""
        obj = self._load(object_id)
        if obj.owner != owner:
            raise AccessDeniedError("only the owner may grant access")
        obj.grants.add(grantee)
        self._store(object_id, obj)

    def revoke(self, object_id: str, owner: str, grantee: str) -> None:
        """Owner-only: withdraw a previously granted authorization."""
        obj = self._load(object_id)
        if obj.owner != owner:
            raise AccessDeniedError("only the owner may revoke access")
        obj.grants.discard(grantee)
        self._store(object_id, obj)

    def exists(self, object_id: str) -> bool:
        """True when the backend holds an object under ``object_id``."""
        return self._exists(object_id)

    def owner_of(self, object_id: str) -> str:
        """The registered owner of the object."""
        return self._load(object_id).owner

    # -- integrity -------------------------------------------------------------------

    @staticmethod
    def _verify_integrity(object_id: str, data: bytes) -> None:
        from repro.errors import IntegrityError

        if content_address(data) != object_id:
            raise IntegrityError(
                f"object {object_id[:12]}… failed its content-address check"
            )


class InMemoryBackend(StorageBackend):
    """The trivial reference backend: a dict. Used in tests and as a base."""

    def __init__(self) -> None:
        super().__init__()
        self._objects: dict[str, StoredObject] = {}

    def _store(self, object_id: str, obj: StoredObject) -> None:
        self._objects[object_id] = obj

    def _load(self, object_id: str) -> StoredObject:
        if object_id not in self._objects:
            raise ObjectNotFoundError(f"no object {object_id[:12]}…")
        return self._objects[object_id]

    def _exists(self, object_id: str) -> bool:
        return object_id in self._objects
