"""Provider-owned encrypted storage (Fig. 3, configuration (a)).

The fully user-centered configuration: the provider's own hardware stores the
data, encrypted at rest under a key only the owner holds.  Reads by granted
parties (executors) transparently decrypt — modeling the provider's gateway
serving plaintext over a secure channel after checking authorization — while
the stored representation is always ciphertext, so device theft leaks
nothing.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.symmetric import Envelope, decrypt, encrypt, generate_key
from repro.errors import ObjectNotFoundError
from repro.storage.base import StorageBackend, StoredObject, content_address


class LocalEncryptedStore(StorageBackend):
    """An encrypted-at-rest store on hardware the owner controls."""

    def __init__(self, owner: str, rng: np.random.Generator):
        super().__init__()
        self.owner = owner
        self._master_key = generate_key(rng)
        self._rng = rng
        self._envelopes: dict[str, Envelope] = {}
        self._meta: dict[str, StoredObject] = {}

    # The at-rest representation is an Envelope; StoredObject.data in the
    # metadata map holds b"" to avoid a second plaintext copy.

    def _store(self, object_id: str, obj: StoredObject) -> None:
        if obj.data:
            self._envelopes[object_id] = encrypt(
                self._master_key, obj.data, self._rng
            )
            obj = StoredObject(data=b"", owner=obj.owner, grants=obj.grants)
        self._meta[object_id] = obj

    def _load(self, object_id: str) -> StoredObject:
        if object_id not in self._meta:
            raise ObjectNotFoundError(f"no object {object_id[:12]}…")
        meta = self._meta[object_id]
        plaintext = decrypt(self._master_key, self._envelopes[object_id])
        return StoredObject(data=plaintext, owner=meta.owner, grants=meta.grants)

    def _exists(self, object_id: str) -> bool:
        return object_id in self._meta

    # -- owner-only extras -------------------------------------------------------

    def put_owned(self, data: bytes) -> str:
        """Shorthand: store data owned by this device's owner."""
        return self.put(data, self.owner)

    def at_rest_bytes(self, object_id: str) -> bytes:
        """The raw ciphertext on disk (what a thief would see)."""
        if object_id not in self._envelopes:
            raise ObjectNotFoundError(f"no object {object_id[:12]}…")
        return self._envelopes[object_id].to_bytes()

    def verify_at_rest_confidentiality(self, object_id: str) -> bool:
        """True when the at-rest bytes differ from (and hide) the plaintext."""
        stored = self.at_rest_bytes(object_id)
        plaintext = self._load(object_id).data
        return plaintext not in stored and content_address(stored) != object_id
