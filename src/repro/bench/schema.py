"""The BENCH trajectory schema: metric specs, provenance, condensation.

A *trajectory file* (``BENCH_<git-sha>.json`` at the repo root) is one
machine-readable performance point of the whole system: every experiment
the harness ran, each with wall time, the metrics the experiment chose to
publish, and a condensed telemetry view (gas, bytes, crypto ops).  Two
trajectory files diff into a regression report
(:mod:`repro.bench.compare`); the committed ``BENCH_seed.json`` is the
baseline CI gates against.

A :class:`Metric` carries its own comparison policy — ``direction``
(``"lower"``/``"higher"`` is better, or ``"info"`` for ungated context
like wall time on shared CI runners) and a ``threshold_pct`` beyond which
a change counts as a regression.  Only deterministic quantities (gas,
bytes, operation counts, seeded accuracy) should gate; noisy wall-clock
numbers ride along as ``info``.
"""

from __future__ import annotations

import platform
import socket
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional

BENCH_FORMAT = "pds2-bench-trajectory/1"

DIRECTIONS = ("lower", "higher", "info")

#: Default regression thresholds (percent) by direction.
DEFAULT_LOWER_THRESHOLD_PCT = 10.0
DEFAULT_HIGHER_THRESHOLD_PCT = 5.0

#: Registry totals condensed into each experiment's trajectory entry.
CONDENSED_METRICS = (
    "pds2_chain_blocks_mined_total",
    "pds2_chain_gas_total",
    "pds2_vm_txs_applied_total",
    "pds2_crypto_sign_total",
    "pds2_crypto_verify_total",
    "pds2_crypto_scalar_mult_total",
    "pds2_tee_enclave_launches_total",
    "pds2_tee_oblivious_ops_total",
    "pds2_gossip_merges_total",
    "pds2_net_messages_total",
    "pds2_storage_ops_total",
    "pds2_storage_bytes_total",
)


@dataclass
class Metric:
    """One published benchmark quantity plus its comparison policy."""

    value: float
    unit: str = ""
    direction: str = "info"
    threshold_pct: Optional[float] = None

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"metric direction {self.direction!r} not in {DIRECTIONS}"
            )

    def to_dict(self) -> dict:
        return {
            "value": float(self.value),
            "unit": self.unit,
            "direction": self.direction,
            "threshold_pct": self.threshold_pct,
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "Metric":
        threshold = record.get("threshold_pct")
        return cls(
            value=float(record.get("value", 0.0)),
            unit=record.get("unit", ""),
            direction=record.get("direction", "info"),
            threshold_pct=float(threshold) if threshold is not None else None,
        )


def lower_is_better(value: float, unit: str = "",
                    threshold_pct: float = DEFAULT_LOWER_THRESHOLD_PCT
                    ) -> Metric:
    """A gated cost metric (gas, bytes, counts): growth is a regression."""
    return Metric(value=float(value), unit=unit, direction="lower",
                  threshold_pct=threshold_pct)


def higher_is_better(value: float, unit: str = "",
                     threshold_pct: float = DEFAULT_HIGHER_THRESHOLD_PCT
                     ) -> Metric:
    """A gated quality metric (accuracy, recall): decay is a regression."""
    return Metric(value=float(value), unit=unit, direction="higher",
                  threshold_pct=threshold_pct)


def info(value: float, unit: str = "") -> Metric:
    """An ungated context metric (wall time, rates on shared hardware)."""
    return Metric(value=float(value), unit=unit, direction="info",
                  threshold_pct=None)


def git_sha(short: bool = True, cwd: Optional[Path] = None) -> str:
    """The current commit id, or ``"unknown"`` outside a git checkout."""
    cmd = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    try:
        out = subprocess.run(cmd, cwd=cwd, capture_output=True, text=True,
                             timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def provenance(cwd: Optional[Path] = None) -> dict:
    """Who/where/what produced a trajectory point or metrics sidecar."""
    return {
        "git_sha": git_sha(cwd=cwd),
        "python_version": platform.python_version(),
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "argv": list(sys.argv),
    }


def condense(snapshot: Mapping) -> dict[str, float]:
    """Reduce a registry snapshot to ``{metric name: total}`` for the
    trajectory entry (full snapshots stay in the per-experiment sidecars;
    the trajectory only carries the comparable aggregates)."""
    totals: dict[str, float] = {}
    for metric in snapshot.get("metrics", ()):
        name = metric.get("name")
        if name not in CONDENSED_METRICS:
            continue
        if metric.get("type") == "histogram":
            total = sum(sample.get("count", 0)
                        for sample in metric.get("samples", ()))
        else:
            total = sum(sample.get("value", 0)
                        for sample in metric.get("samples", ()))
        if total:
            totals[name] = float(total)
    return totals
