"""Trajectory comparison: diff two BENCH files into a regression report.

The baseline's metric specs govern the comparison — its ``direction`` and
``threshold_pct`` decide what counts as a regression, so tightening or
loosening a gate is a baseline edit, not a code change.  Rules:

* a gated metric (``direction`` ``lower``/``higher`` with a threshold)
  regresses when it moves against its direction by *strictly more* than
  ``threshold_pct`` percent — landing exactly on the threshold passes;
* an experiment or gated metric present in the baseline but absent from
  the current run is a regression (coverage must never silently shrink);
* an experiment that errored in the current run but ran in the baseline
  is a regression;
* experiments/metrics new in the current run are listed but never gate —
  they gate once they enter the committed baseline;
* ``info`` metrics are reported as context only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.bench.schema import BENCH_FORMAT, Metric


@dataclass
class MetricDelta:
    """One gated metric's movement between baseline and current."""

    experiment_id: str
    metric: str
    baseline: float
    current: float
    direction: str
    threshold_pct: float
    unit: str = ""

    @property
    def pct_change(self) -> float:
        if self.baseline == 0.0:
            return math.inf if self.current > 0 else (
                -math.inf if self.current < 0 else 0.0)
        return (self.current - self.baseline) / abs(self.baseline) * 100.0

    @property
    def regressed(self) -> bool:
        pct = self.pct_change
        if self.direction == "lower":
            return pct > self.threshold_pct
        if self.direction == "higher":
            return pct < -self.threshold_pct
        return False

    @property
    def improved(self) -> bool:
        pct = self.pct_change
        if self.direction == "lower":
            return pct < -self.threshold_pct
        if self.direction == "higher":
            return pct > self.threshold_pct
        return False

    def describe(self) -> str:
        pct = self.pct_change
        arrow = "+" if pct >= 0 else ""
        unit = f" {self.unit}" if self.unit else ""
        return (f"{self.experiment_id}/{self.metric}: "
                f"{self.baseline:g}{unit} -> {self.current:g}{unit} "
                f"({arrow}{pct:.1f}%, {self.direction} is better, "
                f"threshold {self.threshold_pct:g}%)")


@dataclass
class ComparisonReport:
    """Everything ``--compare`` found, ready to render or gate on."""

    regressions: list[MetricDelta] = field(default_factory=list)
    improvements: list[MetricDelta] = field(default_factory=list)
    missing_experiments: list[str] = field(default_factory=list)
    errored_experiments: list[str] = field(default_factory=list)
    missing_metrics: list[tuple[str, str]] = field(default_factory=list)
    new_experiments: list[str] = field(default_factory=list)
    compared_metrics: int = 0

    @property
    def ok(self) -> bool:
        return not (self.regressions or self.missing_experiments
                    or self.errored_experiments or self.missing_metrics)

    def render(self) -> str:
        lines: list[str] = []
        if self.missing_experiments:
            lines.append("experiments missing from current run:")
            lines.extend(f"  - {x}" for x in self.missing_experiments)
        if self.errored_experiments:
            lines.append("experiments that errored in current run:")
            lines.extend(f"  - {x}" for x in self.errored_experiments)
        if self.missing_metrics:
            lines.append("gated metrics missing from current run:")
            lines.extend(f"  - {exp}/{name}"
                         for exp, name in self.missing_metrics)
        if self.regressions:
            lines.append("REGRESSIONS (beyond threshold):")
            lines.extend(f"  - {delta.describe()}"
                         for delta in self.regressions)
        if self.improvements:
            lines.append("improvements (beyond threshold):")
            lines.extend(f"  + {delta.describe()}"
                         for delta in self.improvements)
        if self.new_experiments:
            lines.append("new experiments (not gated until baselined):")
            lines.extend(f"  + {x}" for x in self.new_experiments)
        verdict = ("OK" if self.ok else "REGRESSION")
        lines.append(
            f"verdict: {verdict} — {self.compared_metrics} gated metric(s) "
            f"compared, {len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s)"
        )
        return "\n".join(lines)


def _check_format(trajectory: Mapping, label: str) -> None:
    if trajectory.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"{label} is not a {BENCH_FORMAT} document "
            f"(format={trajectory.get('format')!r})"
        )


def compare_trajectories(baseline: Mapping, current: Mapping
                         ) -> ComparisonReport:
    """Diff ``current`` against ``baseline`` under the baseline's specs."""
    _check_format(baseline, "baseline")
    _check_format(current, "current")
    report = ComparisonReport()
    base_experiments = baseline.get("experiments", {})
    curr_experiments = current.get("experiments", {})

    for experiment_id, base_entry in base_experiments.items():
        curr_entry = curr_experiments.get(experiment_id)
        base_ok = base_entry.get("status") == "ok"
        if curr_entry is None:
            if base_ok:
                report.missing_experiments.append(experiment_id)
            continue
        if base_ok and curr_entry.get("status") != "ok":
            report.errored_experiments.append(
                f"{experiment_id} ({curr_entry.get('status')})"
            )
            continue
        if not base_ok:
            # Baseline never produced numbers here; nothing to gate on.
            continue
        base_metrics = base_entry.get("metrics", {})
        curr_metrics = curr_entry.get("metrics", {})
        for name, raw in base_metrics.items():
            spec = Metric.from_dict(raw)
            if spec.direction == "info" or spec.threshold_pct is None:
                continue
            raw_current = curr_metrics.get(name)
            if raw_current is None:
                report.missing_metrics.append((experiment_id, name))
                continue
            delta = MetricDelta(
                experiment_id=experiment_id,
                metric=name,
                baseline=spec.value,
                current=Metric.from_dict(raw_current).value,
                direction=spec.direction,
                threshold_pct=spec.threshold_pct,
                unit=spec.unit,
            )
            report.compared_metrics += 1
            if delta.regressed:
                report.regressions.append(delta)
            elif delta.improved:
                report.improvements.append(delta)

    report.new_experiments = sorted(
        set(curr_experiments) - set(base_experiments)
    )
    return report
