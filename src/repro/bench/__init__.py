"""The unified benchmark harness: schema, runner, and regression compare.

``python -m repro bench --suite quick`` runs every declared E-experiment
through :func:`repro.bench.runner.run_suite` and writes a schema-versioned
``BENCH_<git-sha>.json`` trajectory file; ``--compare BENCH_seed.json``
diffs it against a committed baseline and exits nonzero on regression.
See DESIGN.md §11 for the trajectory schema and the regression policy.
"""

from repro.bench.compare import (
    ComparisonReport,
    MetricDelta,
    compare_trajectories,
)
from repro.bench.runner import (
    Experiment,
    default_bench_dir,
    discover,
    run_experiment,
    run_suite,
)
from repro.bench.schema import (
    BENCH_FORMAT,
    CONDENSED_METRICS,
    Metric,
    condense,
    git_sha,
    higher_is_better,
    info,
    lower_is_better,
    provenance,
)

__all__ = [
    "BENCH_FORMAT",
    "CONDENSED_METRICS",
    "ComparisonReport",
    "Experiment",
    "Metric",
    "MetricDelta",
    "compare_trajectories",
    "condense",
    "default_bench_dir",
    "discover",
    "git_sha",
    "higher_is_better",
    "info",
    "lower_is_better",
    "provenance",
    "run_experiment",
    "run_suite",
]
