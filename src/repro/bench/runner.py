"""Experiment discovery and the unified benchmark runner.

Every ``benchmarks/bench_*.py`` module declares one module-level
:class:`Experiment`: an id, a title, and a ``run(quick)`` callable that
performs the measurement and returns its published metrics.  The runner
imports those modules (no pytest involved), executes each experiment under
a common envelope — wall-clock timing, a telemetry reset/snapshot pair,
optional sim-time extraction — and assembles the schema-versioned
trajectory dict that ``python -m repro bench`` writes to
``BENCH_<git-sha>.json``.

An experiment that raises is recorded with ``status: "error: …"`` instead
of aborting the suite; the comparator treats an errored experiment as a
regression against any baseline where it ran.
"""

from __future__ import annotations

import importlib.util
import sys
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional

from repro.bench.schema import (
    BENCH_FORMAT,
    Metric,
    condense,
    info,
    provenance,
)

#: Experiment ids whose quick variant is too slow for the CI gate.
#: (Nothing currently excluded; the hook exists so one slow experiment
#: doesn't force dropping the whole gate.)
QUICK_EXCLUDED: frozenset[str] = frozenset()


@dataclass
class Experiment:
    """One benchmark module's declaration of itself.

    ``run(quick)`` performs the measurement and returns a mapping of
    metric name to :class:`~repro.bench.schema.Metric` (or a dict with a
    ``"metrics"`` key of that shape — convenient when the function also
    returns report lines for the pytest path).  ``quick=True`` asks for a
    reduced parameterization suitable for a CI gate: same code paths,
    smaller sizes, deterministic seeds.
    """

    experiment_id: str
    title: str
    run: Callable[[bool], Mapping]
    tags: tuple[str, ...] = field(default_factory=tuple)


def _import_bench_module(path: Path):
    name = f"pds2_bench_{path.stem}"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load benchmark module {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def default_bench_dir() -> Path:
    """The checkout's ``benchmarks/`` directory.

    Resolved relative to the installed package first (source layout:
    ``src/repro/…`` two levels under the repo root), falling back to the
    working directory for odd deployments.
    """
    import repro

    package_root = Path(repro.__file__).resolve().parents[2]
    candidate = package_root / "benchmarks"
    if candidate.is_dir():
        return candidate
    cwd_candidate = Path.cwd() / "benchmarks"
    if cwd_candidate.is_dir():
        return cwd_candidate
    raise FileNotFoundError("cannot locate the benchmarks/ directory")


def discover(bench_dir: Optional[Path] = None) -> dict[str, Experiment]:
    """Collect ``EXPERIMENT`` declarations from every ``bench_*.py``.

    Modules without a declaration are skipped silently (they may be
    pytest-only helpers); a module that fails to import is a hard error —
    a broken benchmark must not silently vanish from the trajectory.
    """
    bench_dir = bench_dir if bench_dir is not None else default_bench_dir()
    # Benchmarks import their siblings (reporting, shared builders).
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    experiments: dict[str, Experiment] = {}
    for path in sorted(bench_dir.glob("bench_*.py")):
        module = _import_bench_module(path)
        declared = getattr(module, "EXPERIMENT", None)
        if declared is None:
            continue
        if declared.experiment_id in experiments:
            raise ValueError(
                f"duplicate experiment id {declared.experiment_id!r} "
                f"declared by {path.name}"
            )
        experiments[declared.experiment_id] = declared
    return experiments


def _normalize_metrics(raw: Mapping) -> dict[str, Metric]:
    metrics = raw.get("metrics", raw) if isinstance(raw, Mapping) else {}
    out: dict[str, Metric] = {}
    for name, metric in metrics.items():
        if isinstance(metric, Metric):
            out[name] = metric
        elif isinstance(metric, Mapping):
            out[name] = Metric.from_dict(metric)
        else:
            out[name] = info(float(metric))
    return out


def run_experiment(experiment: Experiment, quick: bool = True) -> dict:
    """Run one experiment under the common envelope; never raises."""
    from repro import telemetry

    telemetry.reset()
    entry: dict = {"title": experiment.title, "status": "ok"}
    started = time.perf_counter()
    try:
        raw = experiment.run(quick)
    except Exception as exc:  # noqa: BLE001 — recorded, not swallowed
        entry["status"] = f"error: {type(exc).__name__}: {exc}"
        entry["traceback"] = traceback.format_exc(limit=8)
        raw = {}
    wall_s = time.perf_counter() - started
    snapshot = telemetry.snapshot(telemetry.REGISTRY)
    telemetry.reset()
    metrics = _normalize_metrics(raw)
    metrics.setdefault("wall_s", info(wall_s, unit="s"))
    entry["wall_s"] = wall_s
    entry["metrics"] = {name: metric.to_dict()
                       for name, metric in sorted(metrics.items())}
    entry["telemetry"] = condense(snapshot)
    return entry


def run_suite(suite: str = "quick",
              bench_dir: Optional[Path] = None,
              only: Optional[list[str]] = None,
              progress: Optional[Callable[[str], None]] = None) -> dict:
    """Run the discovered experiments and assemble a trajectory dict."""
    if suite not in ("quick", "full"):
        raise ValueError(f"unknown suite {suite!r} (use 'quick' or 'full')")
    quick = suite == "quick"
    experiments = discover(bench_dir)
    if only:
        wanted = {x.upper() for x in only}
        unknown = wanted - set(experiments)
        if unknown:
            raise ValueError(
                f"unknown experiment id(s): {', '.join(sorted(unknown))}"
            )
        experiments = {k: v for k, v in experiments.items() if k in wanted}
    elif quick:
        experiments = {k: v for k, v in experiments.items()
                       if k not in QUICK_EXCLUDED}
    trajectory: dict = {
        "format": BENCH_FORMAT,
        "suite": suite,
        "provenance": provenance(),
        "experiments": {},
    }
    for experiment_id in sorted(experiments,
                                key=_experiment_sort_key):
        experiment = experiments[experiment_id]
        if progress is not None:
            progress(f"running {experiment_id}: {experiment.title} …")
        entry = run_experiment(experiment, quick=quick)
        trajectory["experiments"][experiment_id] = entry
        if progress is not None:
            status = entry["status"]
            progress(f"  {experiment_id}: {status} "
                     f"({entry['wall_s']:.2f}s wall)")
    return trajectory


def _experiment_sort_key(experiment_id: str) -> tuple:
    """E2 before E10: split the id into its alpha/numeric parts."""
    head = experiment_id.rstrip("0123456789")
    tail = experiment_id[len(head):]
    return (head, int(tail) if tail.isdigit() else 0)
