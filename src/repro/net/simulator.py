"""Deterministic discrete-event network simulator.

All decentralized-ML experiments (E5, E6) run on this substrate.  It is a
classic event-heap simulator:

* events are ``(time, sequence, callback)`` tuples; the sequence number makes
  tie-breaking — and therefore the whole simulation — fully deterministic;
* :class:`Network` models point-to-point message passing with per-link
  latency, per-node bandwidth and online/offline state;
* every delivered message is charged to traffic counters, giving the
  communication-cost axis of the gossip-vs-federated comparison.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.errors import SimulationError
from repro.telemetry import metrics as _tm

# Transport counters, pre-resolved per outcome: send() is the hottest
# non-numeric loop in the gossip experiments.
_NET_MESSAGES = _tm.counter(
    "pds2_net_messages_total", "Messages by transport outcome",
    labelnames=("outcome",),
)
_MSG_SENT = _NET_MESSAGES.labels(outcome="sent")
_MSG_DELIVERED = _NET_MESSAGES.labels(outcome="delivered")
_MSG_DROPPED = _NET_MESSAGES.labels(outcome="dropped")
_NET_BYTES_DELIVERED = _tm.counter(
    "pds2_net_bytes_delivered_total", "Payload bytes delivered to handlers"
)


class Simulator:
    """An event heap with a monotone clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay``."""
        if not math.isfinite(delay):
            # NaN slips past the `< 0` check below and corrupts the heap
            # invariant (every comparison with NaN is False); inf events
            # can never run but burn the run_to_completion budget.
            raise SimulationError(
                f"event delay must be finite, got {delay!r}"
            )
        if delay < 0:
            raise SimulationError("cannot schedule events in the past")
        heapq.heappush(
            self._heap, (self.now + delay, next(self._sequence), callback)
        )

    def run_until(self, end_time: float) -> None:
        """Process events up to and including ``end_time``."""
        if end_time < self.now:
            raise SimulationError("end time is in the past")
        while self._heap and self._heap[0][0] <= end_time:
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            self.events_processed += 1
            callback()
        self.now = end_time

    def run_to_completion(self, max_events: int = 1_000_000) -> None:
        """Drain the event heap (bounded to catch runaway schedules)."""
        processed = 0
        while self._heap:
            if processed >= max_events:
                raise SimulationError("event budget exhausted; likely a loop")
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            self.events_processed += 1
            processed += 1
            callback()

    @property
    def pending_events(self) -> int:
        return len(self._heap)


class MessageHandler(Protocol):
    """Anything that can be attached to the network as a node."""

    def on_message(self, sender: str, message: Any) -> None:
        """Receive one delivered message."""
        ...  # pragma: no cover - protocol definition


@dataclass
class LinkProfile:
    """Per-link latency; per-node bandwidth lives on :class:`NodeState`."""

    latency_s: float = 0.05


@dataclass
class NodeState:
    """Network-facing state of one attached node."""

    handler: MessageHandler
    upload_bytes_per_s: float = 1_250_000.0  # 10 Mbit/s default uplink
    online: bool = True
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_dropped: int = 0


@dataclass
class TrafficStats:
    """Network-wide totals for experiment reporting."""

    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_delivered: int = 0


class Network:
    """Point-to-point message passing over a :class:`Simulator`.

    Delivery time = link latency + size / sender uplink bandwidth.  Messages
    to or from offline nodes are dropped silently (UDP-like), which is what
    gossip protocols are designed to tolerate and what breaks naive
    centralized schemes under churn.
    """

    def __init__(self, simulator: Simulator,
                 default_latency_s: float = 0.05):
        self.simulator = simulator
        self.default_latency_s = default_latency_s
        self._nodes: dict[str, NodeState] = {}
        self._links: dict[tuple[str, str], LinkProfile] = {}
        self.stats = TrafficStats()

    # -- membership --------------------------------------------------------------

    def attach(self, address: str, handler: MessageHandler,
               upload_bytes_per_s: float = 1_250_000.0) -> None:
        """Register a node under ``address``."""
        if address in self._nodes:
            raise SimulationError(f"address {address!r} already attached")
        self._nodes[address] = NodeState(
            handler=handler, upload_bytes_per_s=upload_bytes_per_s
        )

    def set_online(self, address: str, online: bool) -> None:
        """Churn control: toggle a node's availability."""
        self._node(address).online = online

    def is_online(self, address: str) -> bool:
        return self._node(address).online

    def node_state(self, address: str) -> NodeState:
        """Accounting view of one node."""
        return self._node(address)

    def _node(self, address: str) -> NodeState:
        if address not in self._nodes:
            raise SimulationError(f"unknown address {address!r}")
        return self._nodes[address]

    @property
    def addresses(self) -> list[str]:
        return list(self._nodes)

    # -- links ---------------------------------------------------------------------

    def set_link(self, src: str, dst: str, latency_s: float) -> None:
        """Override the latency of one directed link."""
        if latency_s < 0:
            raise SimulationError("latency must be non-negative")
        self._links[(src, dst)] = LinkProfile(latency_s=latency_s)

    def link_latency(self, src: str, dst: str) -> float:
        profile = self._links.get((src, dst))
        return profile.latency_s if profile else self.default_latency_s

    # -- transport -------------------------------------------------------------------

    def send(self, src: str, dst: str, message: Any, size_bytes: int) -> bool:
        """Queue a message for delivery; returns False when dropped.

        Drops happen when either endpoint is offline *at send time*; a
        receiver going offline mid-flight also loses the message (checked at
        delivery).
        """
        sender = self._node(src)
        receiver = self._node(dst)
        if size_bytes < 0:
            raise SimulationError("message size must be non-negative")
        if not sender.online or not receiver.online:
            sender.messages_dropped += 1
            self.stats.messages_dropped += 1
            _MSG_DROPPED.inc()
            return False
        transfer_delay = size_bytes / sender.upload_bytes_per_s
        delay = self.link_latency(src, dst) + transfer_delay
        sender.bytes_sent += size_bytes
        sender.messages_sent += 1
        _MSG_SENT.inc()

        def deliver() -> None:
            target = self._nodes.get(dst)
            if target is None or not target.online:
                self.stats.messages_dropped += 1
                _MSG_DROPPED.inc()
                return
            target.bytes_received += size_bytes
            self.stats.messages_delivered += 1
            self.stats.bytes_delivered += size_bytes
            _MSG_DELIVERED.inc()
            _NET_BYTES_DELIVERED.inc(size_bytes)
            target.handler.on_message(src, message)

        self.simulator.schedule(delay, deliver)
        return True
