"""Deterministic discrete-event network simulator.

All decentralized-ML experiments (E5, E6) run on this substrate.  It is a
classic event-heap simulator:

* events are ``(time, sequence, callback)`` tuples; the sequence number makes
  tie-breaking — and therefore the whole simulation — fully deterministic;
* :class:`Network` models point-to-point message passing with per-link
  latency, per-node bandwidth and online/offline state;
* every delivered message is charged to traffic counters, giving the
  communication-cost axis of the gossip-vs-federated comparison.

Two fast paths keep the heap small for vectorized experiments:

* :meth:`Simulator.schedule_batch` registers a whole pre-sorted timeline of
  events (one *lane*) while holding only the lane head in the heap.  Sequence
  numbers for the entire lane are allocated contiguously up front, so
  tie-breaking against individually scheduled events stays deterministic.
* :meth:`Simulator.schedule_cancellable` returns an :class:`EventHandle`;
  cancelled entries stay in the heap but are skipped on pop without counting
  against ``events_processed`` or the :meth:`run_to_completion` budget.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Callable, Protocol, Sequence

from repro.errors import SimulationError
from repro.telemetry import metrics as _tm

# Transport counters, pre-resolved per outcome: send() is the hottest
# non-numeric loop in the gossip experiments.
_NET_MESSAGES = _tm.counter(
    "pds2_net_messages_total", "Messages by transport outcome",
    labelnames=("outcome",),
)
_MSG_SENT = _NET_MESSAGES.labels(outcome="sent")
_MSG_DELIVERED = _NET_MESSAGES.labels(outcome="delivered")
_MSG_DROPPED = _NET_MESSAGES.labels(outcome="dropped")
_NET_BYTES_DELIVERED = _tm.counter(
    "pds2_net_bytes_delivered_total", "Payload bytes delivered to handlers"
)

# Simulator observability (satellite of the kernels PR): both gauges are
# refreshed when a run loop returns, so after any experiment the registry
# reflects the last simulator that ran.
_EVENTS_PROCESSED = _tm.gauge(
    "pds2_sim_events_processed",
    "Events executed by the most recent simulator run loop",
)
_HEAP_HIGH_WATER = _tm.gauge(
    "pds2_sim_heap_high_water",
    "Peak event-heap size of the most recent simulator run loop",
)


class EventHandle:
    """Cancellation handle returned by :meth:`Simulator.schedule_cancellable`.

    Cancellation is O(1): the heap entry's callback slot is nulled and the
    stale entry is discarded lazily when it reaches the top of the heap —
    without counting as a processed event.
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    def cancel(self) -> bool:
        """Cancel the event; returns False when it already ran/was cancelled."""
        if self._entry[2] is None:
            return False
        self._entry[2] = None
        return True

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None


class _EventLane:
    """A pre-sorted timeline of events holding one heap slot at a time.

    Created by :meth:`Simulator.schedule_batch`.  The lane keeps its own
    position cursor; firing the head re-pushes the next entry with its
    pre-allocated sequence number before running the callback, so events the
    callback schedules at the same instant still order after the lane.
    """

    __slots__ = ("_sim", "_times", "_fn", "_seq0", "_pos")

    def __init__(self, sim: "Simulator", times: list[float],
                 fn: Callable[[int], None], seq0: int) -> None:
        self._sim = sim
        self._times = times
        self._fn = fn
        self._seq0 = seq0
        self._pos = 0

    def __call__(self) -> None:
        pos = self._pos
        self._pos = pos + 1
        if self._pos < len(self._times):
            heapq.heappush(
                self._sim._heap,
                [self._times[self._pos], self._seq0 + self._pos, self],
            )
            self._sim._lane_backlog -= 1
        self._fn(pos)

    @property
    def remaining(self) -> int:
        return len(self._times) - self._pos


class Simulator:
    """An event heap with a monotone clock."""

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0
        self.heap_high_water = 0
        self._lane_backlog = 0  # lane events not yet holding a heap slot

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    def _note_heap_size(self) -> None:
        if len(self._heap) > self.heap_high_water:
            self.heap_high_water = len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay``."""
        if not math.isfinite(delay):
            # NaN slips past the `< 0` check below and corrupts the heap
            # invariant (every comparison with NaN is False); inf events
            # can never run but burn the run_to_completion budget.
            raise SimulationError(
                f"event delay must be finite, got {delay!r}"
            )
        if delay < 0:
            raise SimulationError("cannot schedule events in the past")
        # Entries are lists (not tuples) so every heap element has the same
        # type — heapq comparisons between mixed tuple/list entries raise —
        # and so cancellable entries can null their callback slot in place.
        heapq.heappush(
            self._heap, [self.now + delay, self._next_seq(), callback]
        )
        self._note_heap_size()

    def schedule_cancellable(self, delay: float,
                             callback: Callable[[], None]) -> EventHandle:
        """Like :meth:`schedule`, but returns a cancellation handle.

        A cancelled entry is skipped when popped: it does not run, does not
        increment ``events_processed``, and does not count against the
        :meth:`run_to_completion` event budget.
        """
        if not math.isfinite(delay):
            raise SimulationError(
                f"event delay must be finite, got {delay!r}"
            )
        if delay < 0:
            raise SimulationError("cannot schedule events in the past")
        entry = [self.now + delay, self._next_seq(), callback]
        heapq.heappush(self._heap, entry)
        self._note_heap_size()
        return EventHandle(entry)

    def schedule_batch(self, times: Sequence[float],
                       fn: Callable[[int], None]) -> None:
        """Register a whole timeline of events as one heap *lane*.

        ``times`` are **absolute** simulation times, non-decreasing and
        ``>= now``; ``fn(i)`` runs at ``times[i]``.  Only the lane head
        occupies a heap slot, so a million-event timeline costs one heap
        entry.  Sequence numbers for every lane event are allocated
        contiguously at registration, keeping same-time tie-breaking against
        later individually-scheduled events deterministic (the lane, being
        registered first, wins).
        """
        times = [float(t) for t in times]
        if not times:
            return
        previous = self.now
        for t in times:
            if not math.isfinite(t):
                raise SimulationError(f"event time must be finite, got {t!r}")
            if t < previous:
                raise SimulationError(
                    "batch times must be non-decreasing and not in the past"
                )
            previous = t
        seq0 = self._seq
        self._seq = seq0 + len(times)
        lane = _EventLane(self, times, fn, seq0)
        heapq.heappush(self._heap, [times[0], seq0, lane])
        self._lane_backlog += len(times) - 1
        self._note_heap_size()

    def run_until(self, end_time: float) -> None:
        """Process events up to and including ``end_time``."""
        if end_time < self.now:
            raise SimulationError("end time is in the past")
        while self._heap and self._heap[0][0] <= end_time:
            entry = heapq.heappop(self._heap)
            time, _, callback = entry
            if callback is None:  # cancelled entry: discard silently
                continue
            entry[2] = None  # fired: a late cancel() must report failure
            self.now = time
            self.events_processed += 1
            callback()
        self.now = end_time
        self._export_gauges()

    def run_to_completion(self, max_events: int = 1_000_000) -> None:
        """Drain the event heap (bounded to catch runaway schedules).

        Cancelled entries are discarded without charging the budget — only
        events that actually run count toward ``max_events``.
        """
        processed = 0
        while self._heap:
            entry = heapq.heappop(self._heap)
            time, _, callback = entry
            if callback is None:
                continue
            if processed >= max_events:
                raise SimulationError("event budget exhausted; likely a loop")
            entry[2] = None
            self.now = time
            self.events_processed += 1
            processed += 1
            callback()
        self._export_gauges()

    def _export_gauges(self) -> None:
        _EVENTS_PROCESSED.set(self.events_processed)
        _HEAP_HIGH_WATER.set(self.heap_high_water)

    @property
    def pending_events(self) -> int:
        """Events not yet run: heap entries plus queued lane events.

        Cancelled-but-unpopped entries are still counted (cancellation is
        lazy); the count is an upper bound in their presence.
        """
        return len(self._heap) + self._lane_backlog


class MessageHandler(Protocol):
    """Anything that can be attached to the network as a node."""

    def on_message(self, sender: str, message: Any) -> None:
        """Receive one delivered message."""
        ...  # pragma: no cover - protocol definition


@dataclass
class LinkProfile:
    """Per-link latency; per-node bandwidth lives on :class:`NodeState`."""

    latency_s: float = 0.05


@dataclass
class NodeState:
    """Network-facing state of one attached node."""

    handler: MessageHandler
    upload_bytes_per_s: float = 1_250_000.0  # 10 Mbit/s default uplink
    online: bool = True
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_dropped: int = 0


@dataclass
class TrafficStats:
    """Network-wide totals for experiment reporting."""

    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_delivered: int = 0


class Network:
    """Point-to-point message passing over a :class:`Simulator`.

    Delivery time = link latency + size / sender uplink bandwidth.  Messages
    to or from offline nodes are dropped silently (UDP-like), which is what
    gossip protocols are designed to tolerate and what breaks naive
    centralized schemes under churn.
    """

    def __init__(self, simulator: Simulator,
                 default_latency_s: float = 0.05):
        self.simulator = simulator
        self.default_latency_s = default_latency_s
        self._nodes: dict[str, NodeState] = {}
        self._links: dict[tuple[str, str], LinkProfile] = {}
        self.stats = TrafficStats()

    # -- membership --------------------------------------------------------------

    def attach(self, address: str, handler: MessageHandler,
               upload_bytes_per_s: float = 1_250_000.0) -> None:
        """Register a node under ``address``."""
        if address in self._nodes:
            raise SimulationError(f"address {address!r} already attached")
        self._nodes[address] = NodeState(
            handler=handler, upload_bytes_per_s=upload_bytes_per_s
        )

    def set_online(self, address: str, online: bool) -> None:
        """Churn control: toggle a node's availability."""
        self._node(address).online = online

    def is_online(self, address: str) -> bool:
        return self._node(address).online

    def node_state(self, address: str) -> NodeState:
        """Accounting view of one node."""
        return self._node(address)

    def _node(self, address: str) -> NodeState:
        if address not in self._nodes:
            raise SimulationError(f"unknown address {address!r}")
        return self._nodes[address]

    @property
    def addresses(self) -> list[str]:
        return list(self._nodes)

    # -- links ---------------------------------------------------------------------

    def set_link(self, src: str, dst: str, latency_s: float) -> None:
        """Override the latency of one directed link."""
        if latency_s < 0:
            raise SimulationError("latency must be non-negative")
        self._links[(src, dst)] = LinkProfile(latency_s=latency_s)

    def link_latency(self, src: str, dst: str) -> float:
        profile = self._links.get((src, dst))
        return profile.latency_s if profile else self.default_latency_s

    # -- transport -------------------------------------------------------------------

    def send(self, src: str, dst: str, message: Any, size_bytes: int) -> bool:
        """Queue a message for delivery; returns False when dropped.

        Drops happen when either endpoint is offline *at send time*; a
        receiver going offline mid-flight also loses the message (checked at
        delivery).
        """
        sender = self._node(src)
        receiver = self._node(dst)
        if size_bytes < 0:
            raise SimulationError("message size must be non-negative")
        if not sender.online or not receiver.online:
            sender.messages_dropped += 1
            self.stats.messages_dropped += 1
            _MSG_DROPPED.inc()
            return False
        transfer_delay = size_bytes / sender.upload_bytes_per_s
        delay = self.link_latency(src, dst) + transfer_delay
        sender.bytes_sent += size_bytes
        sender.messages_sent += 1
        _MSG_SENT.inc()

        def deliver() -> None:
            target = self._nodes.get(dst)
            if target is None or not target.online:
                self.stats.messages_dropped += 1
                _MSG_DROPPED.inc()
                return
            target.bytes_received += size_bytes
            self.stats.messages_delivered += 1
            self.stats.bytes_delivered += size_bytes
            _MSG_DELIVERED.inc()
            _NET_BYTES_DELIVERED.inc(size_bytes)
            target.handler.on_message(src, message)

        self.simulator.schedule(delay, deliver)
        return True
