"""Topology builders for the decentralized-ML experiments.

Gossip learning runs over a peer sampling overlay; federated learning over a
star centered on the coordinator.  These helpers build the corresponding
``networkx`` graphs and assign per-link latencies so both protocols run on
identical network conditions — the fairness requirement of experiment E5.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import SimulationError
from repro.net.simulator import Network


def random_regular_overlay(num_nodes: int, degree: int,
                           rng: np.random.Generator) -> nx.Graph:
    """A connected random regular graph (the classic gossip overlay).

    Retries until connected; for degree >= 3 this succeeds almost surely in
    a handful of attempts.
    """
    if num_nodes <= degree:
        raise SimulationError("need more nodes than the overlay degree")
    for _ in range(100):
        seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.random_regular_graph(degree, num_nodes, seed=seed)
        if nx.is_connected(graph):
            return graph
    raise SimulationError("failed to build a connected regular overlay")


def small_world_overlay(num_nodes: int, k: int, rewire_p: float,
                        rng: np.random.Generator) -> nx.Graph:
    """Watts-Strogatz small-world overlay (clustered edge networks)."""
    seed = int(rng.integers(0, 2**31 - 1))
    graph = nx.connected_watts_strogatz_graph(num_nodes, k, rewire_p,
                                              seed=seed)
    return graph


def star_topology(num_clients: int) -> nx.Graph:
    """A star: node 0 is the federated server, 1..n are clients."""
    return nx.star_graph(num_clients)


def full_mesh(num_nodes: int) -> nx.Graph:
    """Complete graph: every pair connected (small SMC committees)."""
    return nx.complete_graph(num_nodes)


def edge_latencies(graph: nx.Graph, rng: np.random.Generator,
                   mean_latency_s: float = 0.05,
                   jitter: float = 0.5) -> dict[tuple[int, int], float]:
    """Draw one symmetric latency per edge of ``graph``.

    Latencies are lognormal around ``mean_latency_s`` with relative spread
    ``jitter``.  Draw order follows ``graph.edges`` iteration, which is
    deterministic for a deterministically built graph — the object engine
    and the vectorized kernel engine both consume this exact stream, which
    is what keeps their simulations byte-identical.
    """
    if jitter < 0:
        raise SimulationError("jitter must be non-negative")
    sigma = jitter
    return {
        (u, v): float(mean_latency_s * rng.lognormal(mean=0.0, sigma=sigma))
        for u, v in graph.edges
    }


def assign_latencies(network: Network, graph: nx.Graph,
                     address_of, rng: np.random.Generator,
                     mean_latency_s: float = 0.05,
                     jitter: float = 0.5) -> None:
    """Draw a symmetric latency for every edge of ``graph``.

    The same value is set in both directions.  ``address_of`` maps graph
    node ids to network addresses.  Draws delegate to
    :func:`edge_latencies` so both gossip engines see identical links.
    """
    for (u, v), latency in edge_latencies(
        graph, rng, mean_latency_s=mean_latency_s, jitter=jitter
    ).items():
        network.set_link(address_of(u), address_of(v), latency)
        network.set_link(address_of(v), address_of(u), latency)


def neighbors_map(graph: nx.Graph, address_of) -> dict[str, list[str]]:
    """Address-keyed adjacency lists (each node's gossip peer set)."""
    return {
        address_of(node): sorted(address_of(peer) for peer in graph[node])
        for node in graph.nodes
    }
