"""Network substrate: deterministic discrete-event simulation.

Message passing with latency/bandwidth/availability models, overlay
topology builders, and exponential churn — the physical-environment stand-in
for the decentralized-ML experiments.
"""

from repro.net.churn import ChurnModel
from repro.net.simulator import (
    LinkProfile,
    Network,
    NodeState,
    Simulator,
    TrafficStats,
)
from repro.net.topology import (
    assign_latencies,
    full_mesh,
    neighbors_map,
    random_regular_overlay,
    small_world_overlay,
    star_topology,
)

__all__ = [
    "ChurnModel",
    "LinkProfile",
    "Network",
    "NodeState",
    "Simulator",
    "TrafficStats",
    "assign_latencies",
    "full_mesh",
    "neighbors_map",
    "random_regular_overlay",
    "small_world_overlay",
    "star_topology",
]
