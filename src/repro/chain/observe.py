"""Per-block analytics and the chain ops plane.

Counterpart of the batch control plane's ``trace_ops``: every sealed block
becomes one deterministic, JSON-safe record — gas utilization, fee
percentiles (through the same histogram-quantile math the telemetry
registry exports), transaction mix, the mempool's selection-time gauges,
batch-signature bisection stats, and the parallel engine's attribution
(lane occupancy, predicted-conflict merge keys, the labeled cause of every
serially-executed block).

The records power three consumers:

* :func:`attribution_report` — an aggregate that answers "where did my
  parallelism go": per-lane occupancy, the conflict matrix keyed by
  contract/account, and a serial-cause breakdown.  Contains no wall-clock
  values, so matched seeds produce byte-identical reports.
* :func:`render_chain_top` — the fixed-width panel behind
  ``python -m repro chain top [--watch]``.
* :class:`ChainRunRecorder` / :func:`read_chain_run` — a crash-tolerant
  run directory (``blocks.jsonl`` is append-only and read back tolerating
  a torn tail, like the batch event log).
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Optional

from repro.chain.transaction import CREATE, Transaction
from repro.telemetry import metrics as _tm
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import tracer as _tracer

#: Bumped when the block-record shape changes (readers stay tolerant).
RECORD_VERSION = 1

#: Gas-price buckets for per-block fee percentiles.
FEE_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

_BLOCK_UTILIZATION = _tm.histogram(
    "pds2_chain_block_utilization_pct",
    "Percent of the block gas limit used per sealed block",
    buckets=(5, 10, 25, 50, 75, 90, 100),
)
_POOL_DEPTH = _tm.gauge(
    "pds2_mempool_depth",
    "Transactions left pooled after the latest block selection",
)
_SELECTED_AGE = _tm.histogram(
    "pds2_mempool_selected_age",
    "Age of selected transactions, in admission-sequence units",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
)


def _tx_kind(tx: Transaction) -> str:
    if tx.to is CREATE:
        return "deploy"
    return "call" if tx.payload else "transfer"


def _fee_quantiles(prices: list[int]) -> dict[str, float]:
    """p50/p95/p99 of gas prices via the registry's histogram quantiles.

    Runs on a *local* registry (the trace_ops rule: report math never
    mutates the process registry).
    """
    registry = MetricsRegistry()
    hist = registry.histogram("fees", buckets=FEE_BUCKETS)
    for price in prices:
        hist.observe(price)
    return {key: round(value, 3)
            for key, value in hist.child().quantiles().items()}


class ChainObserver:
    """Builds one analytics record per sealed block and feeds the sinks."""

    def __init__(self, chain: Any):
        self.chain = chain
        self.records: list[dict] = []
        #: Callables invoked with each finished record (the run recorder
        #: registers here; the chain layer stays storage-agnostic).
        self.sinks: list[Callable[[dict], None]] = []

    def record_block(self, block: Any, execution: Any, selection: dict,
                     verify_stats: dict) -> dict:
        header = block.header
        gas_limit = self.chain.block_gas_limit
        utilization = (100.0 * header.gas_used / gas_limit) if gas_limit \
            else 0.0
        mix = {"transfer": 0, "call": 0, "deploy": 0}
        prices: list[int] = []
        for tx in block.transactions:
            mix[_tx_kind(tx)] += 1
            prices.append(tx.gas_price)
        record = {
            "v": RECORD_VERSION,
            "number": header.number,
            "timestamp": header.timestamp,
            "validator": header.validator,
            "txs": len(block.transactions),
            "gas_used": header.gas_used,
            "gas_limit": gas_limit,
            "utilization_pct": round(utilization, 3),
            "fees": _fee_quantiles(prices) if prices else {},
            "tx_mix": mix,
            "mempool": dict(selection),
            "verify": dict(verify_stats),
            "execution": {
                "engine": self.chain.execution,
                "groups": execution.groups,
                "fell_back": execution.fell_back,
                "serial_cause": execution.serial_cause,
                "lane_txs": {str(lane): count for lane, count
                             in sorted(execution.lane_txs.items())},
                "conflict_keys": dict(sorted(
                    execution.conflict_keys.items())),
                "hinted_txs": execution.hinted_txs,
                "unhinted_txs": execution.unhinted_txs,
                "rejected": len(execution.rejected),
                "deferred": len(execution.deferred),
            },
        }
        _BLOCK_UTILIZATION.observe(utilization)
        _POOL_DEPTH.set(selection.get("depth_after", len(self.chain.mempool)))
        for age in selection.get("ages", ()):
            _SELECTED_AGE.observe(age)
        with _tracer().span(
            "block.observe", height=header.number,
            transactions=len(block.transactions),
            utilization_pct=round(utilization, 1),
            serial_cause=execution.serial_cause,
        ):
            pass
        self.records.append(record)
        for sink in tuple(self.sinks):
            sink(record)
        return record


# ---------------------------------------------------------------------------
# Attribution: where did the parallelism go?
# ---------------------------------------------------------------------------


def attribution_report(records: list[dict]) -> dict:
    """Aggregate per-block execution records into the attribution report.

    Deterministic by construction — inputs carry no wall-clock values and
    every map is emitted key-sorted — so ``json.dumps(report,
    sort_keys=True)`` is byte-identical across matched-seed runs.
    """
    lane_txs: dict[str, int] = {}
    causes: dict[str, int] = {}
    conflicts: dict[str, int] = {}
    hinted = unhinted = 0
    parallel_blocks = serial_blocks = fallbacks = total_txs = 0
    for record in records:
        execution = record.get("execution", {})
        txs = record.get("txs", 0)
        total_txs += txs
        if txs:
            cause = execution.get("serial_cause", "")
            if not cause and execution.get("engine") != "parallel":
                cause = "serial_engine"
            if cause:
                serial_blocks += 1
                causes[cause] = causes.get(cause, 0) + 1
            else:
                parallel_blocks += 1
        if execution.get("fell_back"):
            fallbacks += 1
        for lane, count in execution.get("lane_txs", {}).items():
            lane_txs[lane] = lane_txs.get(lane, 0) + count
        for key, count in execution.get("conflict_keys", {}).items():
            conflicts[key] = conflicts.get(key, 0) + count
        hinted += execution.get("hinted_txs", 0)
        unhinted += execution.get("unhinted_txs", 0)
    ranked = sorted(conflicts.items(), key=lambda item: (-item[1], item[0]))
    return {
        "blocks": len(records),
        "transactions": total_txs,
        "parallel_blocks": parallel_blocks,
        "serial_blocks": serial_blocks,
        "fallbacks": fallbacks,
        "serial_causes": dict(sorted(causes.items())),
        "lane_txs": dict(sorted(lane_txs.items())),
        "conflict_matrix": dict(sorted(conflicts.items())),
        "top_conflict_keys": [
            {"key": key, "merges": count} for key, count in ranked[:10]
        ],
        "hinted_txs": hinted,
        "unhinted_txs": unhinted,
    }


# ---------------------------------------------------------------------------
# Rendering: python -m repro chain top
# ---------------------------------------------------------------------------

_WIDTH = 74


def _bar(value: int, peak: int, width: int = 16) -> str:
    if peak <= 0:
        return " " * width
    filled = max(1 if value else 0, round(width * value / peak))
    return ("#" * filled).ljust(width)


def render_chain_top(records: list[dict],
                     attribution: Optional[dict] = None,
                     audit: Optional[dict] = None) -> str:
    """Fixed-width ops panel over a chain run's block records."""
    rule = "-" * _WIDTH
    lines = ["PDS2 CHAIN — ops plane", rule]
    if not records:
        lines.append("  (no blocks recorded yet)")
        lines.append(rule)
        return "\n".join(lines)
    report = attribution if attribution is not None \
        else attribution_report(records)
    registry = MetricsRegistry()
    util_hist = registry.histogram("util", buckets=(5, 10, 25, 50, 75, 90,
                                                    100))
    gas_total = 0
    mix = {"transfer": 0, "call": 0, "deploy": 0}
    for record in records:
        util_hist.observe(record.get("utilization_pct", 0.0))
        gas_total += record.get("gas_used", 0)
        for kind, count in record.get("tx_mix", {}).items():
            mix[kind] = mix.get(kind, 0) + count
    util = util_hist.child().quantiles()
    last = records[-1]
    pool = last.get("mempool", {})
    verify = last.get("verify", {})
    lines.append(
        f"  blocks {report['blocks']:>6}   txs {report['transactions']:>7}"
        f"   gas {gas_total:>14,}"
    )
    lines.append(
        f"  utilization   p50 {util['p50']:6.1f}%   p95 {util['p95']:6.1f}%"
        f"   last {last.get('utilization_pct', 0.0):6.1f}%"
    )
    fees = last.get("fees") or {}
    if fees:
        lines.append(
            f"  fees (last)   p50 {fees.get('p50', 0):7.2f}"
            f"   p95 {fees.get('p95', 0):7.2f}"
            f"   p99 {fees.get('p99', 0):7.2f}"
        )
    lines.append(
        f"  tx mix        transfer {mix.get('transfer', 0):>6}"
        f"   call {mix.get('call', 0):>6}   deploy {mix.get('deploy', 0):>6}"
    )
    ages = pool.get("ages") or []
    age_p95 = sorted(ages)[max(0, int(0.95 * len(ages)) - 1)] if ages else 0
    lines.append(
        f"  mempool       depth {pool.get('depth_after', 0):>5}"
        f"   deferrals {pool.get('deferrals_total', 0):>4}"
        f"   rbf {pool.get('replacements_total', 0):>4}"
        f"   sel-age p95 {age_p95:>4}"
    )
    if verify:
        lines.append(
            f"  verify        batched {verify.get('batched', 0):>5}"
            f"   singles {verify.get('singles', 0):>3}"
            f"   subchecks {verify.get('subchecks', 0):>4}"
            f"   depth {verify.get('depth', 0):>2}"
            f"   bad {verify.get('invalid', 0):>3}"
        )
    lines.append(rule)
    lines.append(
        f"  execution     parallel {report['parallel_blocks']:>4}"
        f"   serial {report['serial_blocks']:>4}"
        f"   fallbacks {report['fallbacks']:>3}"
        f"   hinted {report['hinted_txs']}"
        f"/{report['hinted_txs'] + report['unhinted_txs']}"
    )
    lane_txs = report.get("lane_txs", {})
    if lane_txs:
        peak = max(lane_txs.values())
        for lane in sorted(lane_txs, key=int):
            count = lane_txs[lane]
            lines.append(
                f"  lane {lane:>2}       {_bar(count, peak)} {count:>6} txs"
            )
    causes = report.get("serial_causes", {})
    if causes:
        shown = "   ".join(f"{cause} {count}" for cause, count
                           in sorted(causes.items()))
        lines.append(f"  serial causes {shown}")
    top = report.get("top_conflict_keys", [])
    if top:
        lines.append("  top conflict keys (predicted-merge counts):")
        for entry in top[:5]:
            key = entry["key"]
            shown_key = key if len(key) <= 48 else key[:45] + "..."
            lines.append(f"    {shown_key:<50} {entry['merges']:>6}")
    lines.append(rule)
    if audit is not None:
        count = audit.get("violation_count", 0)
        checked = audit.get("blocks_checked", 0)
        if count:
            kinds = sorted({v.get("kind", "?")
                            for v in audit.get("violations", [])})
            lines.append(
                f"  AUDIT: {count} VIOLATION(S) over {checked} blocks"
                f" [{', '.join(kinds)}] — see forensics/"
            )
        else:
            lines.append(f"  audit: OK — {checked} blocks, all invariants"
                         " hold")
        lines.append(rule)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Run directory: stream, finalize, read back
# ---------------------------------------------------------------------------


class ChainRunRecorder:
    """Streams block records to ``<root>/blocks.jsonl`` and finalizes
    ``attribution.json`` / ``audit.json`` on :meth:`close`."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._fh = open(os.path.join(root, "blocks.jsonl"), "a",
                        encoding="utf-8")

    def sink(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def attach(self, chain: Any) -> None:
        """Wire this recorder into a chain's observer and auditor."""
        if chain.observer is None:
            raise ValueError("chain was built with observe=False")
        chain.observer.sinks.append(self.sink)
        if chain.auditor is not None:
            chain.auditor.forensics_dir = os.path.join(self.root,
                                                       "forensics")

    def close(self, chain: Any) -> None:
        """Write the aggregate reports and release the stream."""
        records = chain.observer.records if chain.observer is not None \
            else []
        with open(os.path.join(self.root, "attribution.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(attribution_report(records), fh, sort_keys=True,
                      indent=2)
            fh.write("\n")
        if chain.auditor is not None:
            with open(os.path.join(self.root, "audit.json"), "w",
                      encoding="utf-8") as fh:
                json.dump(chain.auditor.summary(), fh, sort_keys=True,
                          indent=2)
                fh.write("\n")
        self._fh.close()


def read_chain_run(root: str) -> dict:
    """Read a chain run directory back, tolerating a torn jsonl tail.

    Returns ``{"records", "attribution", "audit"}``; the attribution is
    recomputed from the records when ``attribution.json`` is absent (a
    live run being watched), and ``audit`` is None when the auditor was
    off or the run has not finalized.
    """
    records: list[dict] = []
    blocks_path = os.path.join(root, "blocks.jsonl")
    if os.path.exists(blocks_path):
        with open(blocks_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    break  # torn tail: a writer died mid-record
    attribution: Optional[dict] = None
    attribution_path = os.path.join(root, "attribution.json")
    if os.path.exists(attribution_path):
        try:
            with open(attribution_path, "r", encoding="utf-8") as fh:
                attribution = json.load(fh)
        except (json.JSONDecodeError, OSError):
            attribution = None
    if attribution is None:
        attribution = attribution_report(records)
    audit: Optional[dict] = None
    audit_path = os.path.join(root, "audit.json")
    if os.path.exists(audit_path):
        try:
            with open(audit_path, "r", encoding="utf-8") as fh:
                audit = json.load(fh)
        except (json.JSONDecodeError, OSError):
            audit = None
    return {"records": records, "attribution": attribution, "audit": audit}
