"""Blockchain substrate: the governance layer's ledger (paper Section III-A).

An Ethereum-style chain built from scratch: ECDSA accounts, gas-metered
transactions, a contract VM with revert semantics and events, proof-of-
authority sealing, and the ERC-20 / ERC-721 token standards the paper selects
for rewards and data deeds.  Throughput machinery on top: a nonce-ordered
fee-prioritized mempool, amortized batch signature verification at block
entry, and an optimistic-parallel execution engine with serial-equivalent
semantics.
"""

from repro.chain.block import Block, BlockHeader
from repro.chain.blockchain import Blockchain, Wallet
from repro.chain.consensus import ProofOfAuthority, Validator
from repro.chain.contract import Contract, ContractRegistry, default_registry
from repro.chain.mempool import Mempool
from repro.chain.parallel import (
    BlockExecution,
    execute_parallel,
    execute_serial,
)
from repro.chain.state import AccessTracker, WorldState, WriteJournal, shard_of
from repro.chain.transaction import CREATE, LogEntry, Receipt, Transaction
from repro.chain.vm import VM, BlockContext, ExecutionContext, GasMeter

__all__ = [
    "Block",
    "BlockHeader",
    "Blockchain",
    "Wallet",
    "ProofOfAuthority",
    "Validator",
    "Contract",
    "ContractRegistry",
    "default_registry",
    "Mempool",
    "BlockExecution",
    "execute_parallel",
    "execute_serial",
    "AccessTracker",
    "WorldState",
    "WriteJournal",
    "shard_of",
    "CREATE",
    "LogEntry",
    "Receipt",
    "Transaction",
    "VM",
    "BlockContext",
    "ExecutionContext",
    "GasMeter",
]
