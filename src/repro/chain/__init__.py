"""Blockchain substrate: the governance layer's ledger (paper Section III-A).

An Ethereum-style chain built from scratch: ECDSA accounts, gas-metered
transactions, a contract VM with revert semantics and events, proof-of-
authority sealing, and the ERC-20 / ERC-721 token standards the paper selects
for rewards and data deeds.
"""

from repro.chain.block import Block, BlockHeader
from repro.chain.blockchain import Blockchain, Wallet
from repro.chain.consensus import ProofOfAuthority, Validator
from repro.chain.contract import Contract, ContractRegistry, default_registry
from repro.chain.state import WorldState
from repro.chain.transaction import CREATE, LogEntry, Receipt, Transaction
from repro.chain.vm import VM, BlockContext, ExecutionContext, GasMeter

__all__ = [
    "Block",
    "BlockHeader",
    "Blockchain",
    "Wallet",
    "ProofOfAuthority",
    "Validator",
    "Contract",
    "ContractRegistry",
    "default_registry",
    "WorldState",
    "CREATE",
    "LogEntry",
    "Receipt",
    "Transaction",
    "VM",
    "BlockContext",
    "ExecutionContext",
    "GasMeter",
]
