"""Gas schedule for the blockchain substrate.

The constants follow the spirit (and, where meaningful, the magnitudes) of
the Ethereum yellow paper: a flat per-transaction base cost, per-byte calldata
costs, and contract-level costs charged by the VM for storage access, event
emission and compute steps.  Absolute values matter less than *ratios* — the
governance-scalability experiment (E12) reports relative gas growth.
"""

from __future__ import annotations

#: Flat cost of any transaction (signature check, nonce bump, bookkeeping).
TX_BASE = 21_000

#: Cost per byte of canonical-JSON transaction payload.
TX_DATA_BYTE = 16

#: Deploying a contract (charged on top of the base + data costs).
CONTRACT_CREATE = 32_000

#: Writing one storage slot (a key in a contract's storage dict).
STORAGE_WRITE = 5_000

#: Reading one storage slot.
STORAGE_READ = 200

#: Emitting one event, plus a per-byte cost on the event payload.
EVENT_BASE = 375
EVENT_DATA_BYTE = 8

#: One abstract unit of contract computation (loop iteration, hash, compare).
COMPUTE_STEP = 5

#: Default gas limit for a block.
BLOCK_GAS_LIMIT = 30_000_000

#: Default per-transaction gas limit used by convenience helpers.
DEFAULT_TX_GAS_LIMIT = 2_000_000

#: Default gas price (in wei-like base currency units per gas).
DEFAULT_GAS_PRICE = 1
