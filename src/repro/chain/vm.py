"""The contract virtual machine: transaction application and call dispatch.

``VM.apply_transaction`` implements the full Ethereum-style state transition:

1. structural + signature validation, nonce check, upfront gas purchase;
2. intrinsic gas for calldata;
3. value transfer and contract dispatch under a state snapshot;
4. on :class:`ContractError` (revert) or :class:`OutOfGasError`, the snapshot
   is restored — gas is still consumed;
5. unused gas is refunded and the fee is credited to the block's validator.

Static (read-only) calls let clients query contract views for free without a
transaction; any write attempt inside a static call reverts.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Optional

from repro.chain import gas as gas_schedule
from repro.chain.contract import ContractRegistry
from repro.chain.state import WorldState, WriteJournal
from repro.chain.transaction import CREATE, LogEntry, Receipt, Transaction
from repro.crypto.hashing import keccak256
from repro.errors import (
    ContractError,
    InsufficientBalanceError,
    InvalidTransactionError,
    OutOfGasError,
)
from repro.telemetry import metrics as _tm
from repro.telemetry.profiler import profiled_function

#: Depth limit for nested cross-contract calls.
MAX_CALL_DEPTH = 64

#: Sentinel for "no child node" during storage navigation.
_NO_NODE = object()

# VM telemetry: per-transaction application outcome and gas distribution.
# Spans stop at the mine_block level — a per-tx span would dominate the
# cost of applying the cheap transactions it measures; the sampling
# profiler gets a `profiled` region instead, which is two attribute loads
# when no profiler runs.
_TX_APPLIED = _tm.counter(
    "pds2_vm_txs_applied_total", "Transactions applied, by outcome",
    labelnames=("status",),
)
_TX_GAS_HIST = _tm.histogram(
    "pds2_vm_tx_gas", "Gas used per applied transaction",
    buckets=_tm.GAS_BUCKETS,
)


@dataclass
class BlockContext:
    """Ambient block data visible to contracts (``block.number`` etc.)."""

    number: int
    timestamp: float
    validator: str


class ExecutionContext:
    """Per-call execution environment handed to contracts.

    One context exists per message call; nested calls get child contexts that
    share the same gas meter and log.
    """

    def __init__(self, vm: "VM", state: WorldState, block: BlockContext,
                 origin: str, sender: str, value: int, gas_meter: "GasMeter",
                 logs: list[LogEntry], static: bool, depth: int = 0):
        self._vm = vm
        self._state = state
        self.block = block
        self.origin = origin
        self.sender = sender
        self.value = value
        self._gas = gas_meter
        self._logs = logs
        self._static = static
        self._depth = depth

    # -- gas ---------------------------------------------------------------

    def charge(self, amount: int) -> None:
        """Consume ``amount`` gas, raising OutOfGasError when exhausted."""
        self._gas.charge(amount)

    @property
    def gas_used(self) -> int:
        return self._gas.used

    # -- write protection -----------------------------------------------------

    def require_writable(self) -> None:
        """Revert when called inside a static (read-only) context."""
        if self._static:
            raise ContractError("state modification inside a static call")

    # -- events ------------------------------------------------------------

    def log_event(self, address: str, name: str, data: dict) -> None:
        self._logs.append(LogEntry(address=address, name=name, data=data))

    # -- state access for contracts ---------------------------------------------

    def balance_of(self, address: str) -> int:
        """Base-currency balance lookup (charged as a storage read)."""
        self.charge(gas_schedule.STORAGE_READ)
        return self._state.balance_of(address)

    # -- contract storage (navigation + access recording + journaling) -------

    def storage_read(self, contract, path: tuple) -> tuple[bool, Any]:
        """Navigate a storage path; returns ``(found, value)``.

        Records the read in the thread's access tracker.  When a write
        journal is active (parallel engine), mutable values are returned as
        deep copies: the governance contracts mutate read results in place
        before writing them back, and a live reference would both leak
        cross-thread aliasing and make the journal's pre-images lies.
        """
        state = self._state
        tracker = state.tx_tracker
        if tracker is not None:
            tracker.reads.add(("store", contract.address) + tuple(path))
        node: Any = contract.storage
        for key in path:
            if not isinstance(node, dict) or key not in node:
                return False, None
            node = node[key]
        if state.tx_journal is not None and isinstance(node, (dict, list)):
            node = copy.deepcopy(node)
        return True, node

    def storage_write(self, contract, path: tuple, value: Any) -> None:
        """Write a storage slot, creating intermediate dicts as needed."""
        state = self._state
        tracker = state.tx_tracker
        if tracker is not None:
            tracker.writes.add(("store", contract.address) + tuple(path))
        journal = state.tx_journal
        node = contract.storage
        created: Any = None
        for depth, key in enumerate(path[:-1]):
            child = node.get(key, _NO_NODE)
            if child is _NO_NODE:
                if created is None:
                    created = tuple(path[:depth + 1])
                child = {}
                node[key] = child
            elif not isinstance(child, dict):
                raise ContractError(
                    f"storage path {'/'.join(path)} crosses a non-dict slot"
                )
            node = child
        if journal is not None:
            journal.record_slot(contract, tuple(path), node, created)
        node[path[-1]] = value

    def storage_delete(self, contract, path: tuple) -> None:
        """Delete a storage slot if present."""
        state = self._state
        tracker = state.tx_tracker
        if tracker is not None:
            tracker.writes.add(("store", contract.address) + tuple(path))
        journal = state.tx_journal
        node: Any = contract.storage
        for key in path[:-1]:
            if not isinstance(node, dict) or key not in node:
                return
            node = node[key]
        if not isinstance(node, dict) or path[-1] not in node:
            return
        if journal is not None:
            journal.record_slot(contract, tuple(path), node, None)
        node.pop(path[-1], None)

    def transfer(self, recipient: str, amount: int) -> None:
        """Move base currency out of the *current contract's* balance."""
        self.require_writable()
        self.charge(gas_schedule.STORAGE_WRITE)
        try:
            self._state.transfer(self._current_address(), recipient, amount)
        except InsufficientBalanceError as exc:
            raise ContractError(str(exc)) from exc

    def _current_address(self) -> str:
        # The sender seen by a *nested* call is the calling contract, so for
        # transfer purposes the "current" contract is tracked explicitly.
        return self._self_address

    _self_address: str = ""

    # -- cross-contract calls -----------------------------------------------------

    def call(self, address: str, method: str, value: int = 0,
             **args: Any) -> Any:
        """Call another contract with this contract as the message sender."""
        if self._depth + 1 > MAX_CALL_DEPTH:
            raise ContractError("maximum call depth exceeded")
        return self._vm.execute_call(
            state=self._state,
            block=self.block,
            origin=self.origin,
            sender=self._self_address,
            target=address,
            method=method,
            args=args,
            value=value,
            gas_meter=self._gas,
            logs=self._logs,
            static=self._static,
            depth=self._depth + 1,
        )

    def static_call(self, address: str, method: str, **args: Any) -> Any:
        """Read-only nested call: the callee cannot modify any state."""
        if self._depth + 1 > MAX_CALL_DEPTH:
            raise ContractError("maximum call depth exceeded")
        return self._vm.execute_call(
            state=self._state,
            block=self.block,
            origin=self.origin,
            sender=self._self_address,
            target=address,
            method=method,
            args=args,
            value=0,
            gas_meter=self._gas,
            logs=self._logs,
            static=True,
            depth=self._depth + 1,
        )


class GasMeter:
    """Tracks gas consumption against a hard limit."""

    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def charge(self, amount: int) -> None:
        if amount < 0:
            raise ValueError("gas charges must be non-negative")
        self.used += amount
        if self.used > self.limit:
            raise OutOfGasError(f"gas limit {self.limit} exceeded")

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.used)


@dataclass
class VM:
    """Applies transactions and dispatches contract calls."""

    registry: ContractRegistry
    free_static_calls: bool = True

    # -- top-level transaction application ------------------------------------------

    @profiled_function("chain.apply_transaction")
    def apply_transaction(self, state: WorldState, block: BlockContext,
                          tx: Transaction, *, skip_signature: bool = False,
                          isolation: str = "snapshot",
                          fee_sink: Optional[list[int]] = None) -> Receipt:
        """Run the full state transition for one transaction.

        ``skip_signature`` skips the per-transaction signature check — the
        chain sets it after a block-entry batch verification already vouched
        for the signature.  ``isolation="journal"`` replaces the O(state)
        revert snapshot with a per-transaction write journal (the parallel
        engine's mode; semantics are identical).  ``fee_sink``, when given,
        receives the validator fee instead of the validator account being
        credited inline — the parallel engine credits fees in commit order
        at block end, since the inline credit would make every transaction
        conflict on the validator account.
        """
        tx.validate_shape()
        if not skip_signature:
            tx.verify_signature()
        if state.nonce_of(tx.sender) != tx.nonce:
            raise InvalidTransactionError(
                f"bad nonce: expected {state.nonce_of(tx.sender)}, got {tx.nonce}"
            )
        upfront = tx.gas_limit * tx.gas_price
        if state.balance_of(tx.sender) < upfront + tx.value:
            raise InsufficientBalanceError(
                f"{tx.sender} cannot cover value {tx.value} + max fee {upfront}"
            )
        # Buy gas and bump nonce; these survive even a reverted execution.
        state.debit(tx.sender, upfront)
        state.bump_nonce(tx.sender)

        meter = GasMeter(tx.gas_limit)
        logs: list[LogEntry] = []
        journal: Optional[WriteJournal] = None
        snapshot = None
        if isolation == "journal":
            journal = WriteJournal(state)
            state.attach_journal(journal)
        else:
            snapshot = state.snapshot()
        receipt = Receipt(tx_hash=tx.tx_hash, status=True, gas_used=0)
        try:
            try:
                meter.charge(tx.intrinsic_gas)
                if tx.to is CREATE:
                    receipt.contract_address = self._deploy(
                        state, block, tx, meter, logs
                    )
                else:
                    receipt.return_value = self._call_top(
                        state, block, tx, meter, logs
                    )
            except (ContractError, OutOfGasError) as exc:
                if journal is not None:
                    journal.revert()
                else:
                    state.restore(snapshot)
                receipt.status = False
                receipt.error = str(exc)
                receipt.contract_address = None
                if isinstance(exc, OutOfGasError):
                    meter.used = meter.limit
        finally:
            if journal is not None:
                state.attach_journal(None)
        receipt.gas_used = min(meter.used, meter.limit)
        receipt.logs = logs if receipt.status else []
        # Refund unused gas; pay the validator for what was burned.
        refund = (tx.gas_limit - receipt.gas_used) * tx.gas_price
        state.credit(tx.sender, refund)
        if fee_sink is None:
            state.credit(block.validator, receipt.gas_used * tx.gas_price)
        else:
            fee_sink.append(receipt.gas_used * tx.gas_price)
        receipt.block_number = block.number
        _TX_APPLIED.labels(status="ok" if receipt.status else "reverted").inc()
        _TX_GAS_HIST.observe(receipt.gas_used)
        return receipt

    # -- deployment ----------------------------------------------------------------

    @staticmethod
    def contract_address_for(sender: str, nonce: int) -> str:
        """Deterministic deployment address: hash(sender || nonce)[-20:]."""
        digest = keccak256(sender.encode("ascii") + nonce.to_bytes(8, "big"))
        return "0x" + digest[-20:].hex()

    def _deploy(self, state: WorldState, block: BlockContext, tx: Transaction,
                meter: GasMeter, logs: list[LogEntry]) -> str:
        name = tx.payload.get("contract")
        if not isinstance(name, str):
            raise ContractError("deploy payload must name a registered contract")
        args = tx.payload.get("args", {})
        if not isinstance(args, dict):
            raise ContractError("deploy args must be a dict")
        contract_class = self.registry.get(name)
        address = self.contract_address_for(tx.sender, tx.nonce)
        contract = contract_class()
        state.install_contract(address, contract)
        if tx.value:
            state.transfer(tx.sender, address, tx.value)
        ctx = ExecutionContext(
            vm=self, state=state, block=block, origin=tx.sender,
            sender=tx.sender, value=tx.value, gas_meter=meter, logs=logs,
            static=False,
        )
        ctx._self_address = address
        contract._ctx = ctx
        try:
            contract.setup(**args)
        finally:
            contract._ctx = None
        return address

    # -- calls ----------------------------------------------------------------------

    def _call_top(self, state: WorldState, block: BlockContext,
                  tx: Transaction, meter: GasMeter,
                  logs: list[LogEntry]) -> Any:
        if not state.has_contract(tx.to):
            # Plain value transfer to an externally-owned account.
            if tx.payload:
                raise ContractError(f"no contract at {tx.to} to receive a call")
            state.transfer(tx.sender, tx.to, tx.value)
            return None
        if not tx.payload:
            # Plain value transfer to a contract (a payable receive).
            state.transfer(tx.sender, tx.to, tx.value)
            return None
        method = tx.payload.get("method")
        if not isinstance(method, str):
            raise ContractError("call payload must include a method name")
        args = tx.payload.get("args", {})
        if not isinstance(args, dict):
            raise ContractError("call args must be a dict")
        return self.execute_call(
            state=state, block=block, origin=tx.sender, sender=tx.sender,
            target=tx.to, method=method, args=args, value=tx.value,
            gas_meter=meter, logs=logs, static=False, depth=0,
        )

    def execute_call(self, state: WorldState, block: BlockContext, origin: str,
                     sender: str, target: str, method: str, args: dict,
                     value: int, gas_meter: GasMeter, logs: list[LogEntry],
                     static: bool, depth: int) -> Any:
        """Dispatch one message call to a deployed contract."""
        contract = state.contract_at(target)
        if method not in type(contract).external_methods():
            raise ContractError(
                f"{type(contract).__name__} has no external method {method!r}"
            )
        if value:
            if static:
                raise ContractError("value transfer inside a static call")
            try:
                state.transfer(sender, target, value)
            except InsufficientBalanceError as exc:
                raise ContractError(str(exc)) from exc
        ctx = ExecutionContext(
            vm=self, state=state, block=block, origin=origin, sender=sender,
            value=value, gas_meter=gas_meter, logs=logs, static=static,
            depth=depth,
        )
        ctx._self_address = target
        previous_ctx = contract._ctx
        contract._ctx = ctx
        try:
            bound = getattr(contract, method)
            try:
                return bound(**args)
            except TypeError as exc:
                # Argument mismatches are contract-call errors, not crashes.
                raise ContractError(f"bad call arguments: {exc}") from exc
        finally:
            contract._ctx = previous_ctx

    # -- free views -------------------------------------------------------------------

    def static_view(self, state: WorldState, block: BlockContext, caller: str,
                    target: str, method: str, **args: Any) -> Any:
        """Query a contract view without a transaction (free, read-only).

        State mutations revert; gas is metered against a generous limit only
        to bound runaway loops.
        """
        meter = GasMeter(gas_schedule.BLOCK_GAS_LIMIT)
        logs: list[LogEntry] = []
        snapshot = state.snapshot()
        try:
            return self.execute_call(
                state=state, block=block, origin=caller, sender=caller,
                target=target, method=method, args=args, value=0,
                gas_meter=meter, logs=logs, static=True, depth=0,
            )
        finally:
            state.restore(snapshot)
