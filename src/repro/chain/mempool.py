"""Nonce-ordered, fee-prioritized transaction pool.

The original chain kept pending transactions in a flat list, which produced
two real bugs at scale: a duplicate submission of the same signed transaction
would later *overwrite* the original's mined receipt with a synthetic
failure, and a transaction deferred for block-gas space orphaned the same
sender's later nonces, which were then dropped with ``bad nonce`` receipts.

:class:`Mempool` fixes both structurally:

* transactions live in **per-sender nonce queues** — block packing always
  takes a sender's transactions as a contiguous, nonce-ordered chain, and a
  chain whose head does not fit the remaining block gas is deferred *whole*;
* **duplicate hashes are rejected at admission** (both against the pool and,
  at the :class:`~repro.chain.blockchain.Blockchain` layer, against mined
  receipts), so a receipt can never be clobbered;
* a same-sender/same-nonce resubmission is treated as **replace-by-fee**: it
  must bump the gas price by at least :data:`REPLACEMENT_BUMP_PCT` percent,
  and then swaps in place (inheriting the original's arrival position).

Selection across senders is by effective fee: a max-heap over the current
head transaction of every sender, keyed ``(-gas_price, arrival, sender)`` so
ties break by submission order and the result is deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator

from repro.chain.transaction import Transaction
from repro.errors import (
    DuplicateTransactionError,
    InvalidTransactionError,
    UnderpricedReplacementError,
)
from repro.telemetry import metrics as _tm

#: Minimum gas-price increase (percent) for a replace-by-fee to be accepted.
REPLACEMENT_BUMP_PCT = 10

_POOL_ADMITTED = _tm.counter(
    "pds2_mempool_admitted_total",
    "Transactions admitted to the mempool",
    labelnames=("kind",),  # new | replacement
)
_POOL_REJECTED = _tm.counter(
    "pds2_mempool_rejected_total",
    "Transactions rejected at mempool admission",
    labelnames=("reason",),  # duplicate | stale | underpriced
)
_POOL_SELECTED = _tm.counter(
    "pds2_mempool_selected_total", "Transactions selected for block inclusion"
)
_POOL_DEFERRED = _tm.counter(
    "pds2_mempool_deferred_total",
    "Sender chains deferred whole for lack of block-gas space"
)


class Mempool:
    """Per-sender nonce queues with fee-ordered cross-sender selection."""

    def __init__(self) -> None:
        #: sender -> {nonce: tx}.  Gaps are allowed (a later nonce may arrive
        #: first); only the contiguous run starting at the account's state
        #: nonce is ever selectable.
        self._queues: dict[str, dict[int, Transaction]] = {}
        #: Hashes of every pooled transaction, for O(1) duplicate rejection.
        self._hashes: set[bytes] = set()
        #: (sender, nonce) -> arrival sequence number.  A replace-by-fee
        #: inherits the slot it replaces, so reordering cannot be bought.
        self._arrival: dict[tuple[str, int], int] = {}
        self._counter = 0
        #: Lifetime replace-by-fee admissions (ops-plane gauge source).
        self.replacements = 0
        #: Lifetime whole-chain gas deferrals at selection.
        self.deferrals = 0
        #: Deterministic stats of the most recent :meth:`select` call —
        #: depth before/after, selected/deferred counts, and the arrival
        #: age (in admission-sequence units, so replayable) of every
        #: selected transaction.  The chain observer samples this when it
        #: builds the per-block analytics record.
        self.last_selection: dict = {}

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._hashes)

    def __contains__(self, tx_hash: bytes) -> bool:
        return tx_hash in self._hashes

    def __iter__(self) -> Iterator[Transaction]:
        """All pooled transactions, sender chains in nonce order."""
        for sender in sorted(self._queues):
            queue = self._queues[sender]
            for nonce in sorted(queue):
                yield queue[nonce]

    def pending_count(self, sender: str) -> int:
        """Number of pooled transactions from ``sender`` (O(1))."""
        return len(self._queues.get(sender, ()))

    def next_nonce(self, sender: str, state_nonce: int) -> int:
        """First unused nonce: the end of the contiguous pooled run.

        Walks the sender's queue from ``state_nonce``; stops at the first
        gap.  Correct under replace-by-fee (replacement keeps its nonce slot)
        and after an admission failure left a gap in the chain.
        """
        queue = self._queues.get(sender)
        if not queue:
            return state_nonce
        nonce = state_nonce
        while nonce in queue:
            nonce += 1
        return nonce

    # -- admission -------------------------------------------------------------

    def add(self, tx: Transaction, current_nonce: int) -> None:
        """Admit ``tx`` to the pool.

        Raises :class:`DuplicateTransactionError` when the exact hash is
        already pooled, :class:`InvalidTransactionError` when the nonce is
        below the account's state nonce, and
        :class:`UnderpricedReplacementError` when a same-nonce replacement
        does not bump the gas price by ``REPLACEMENT_BUMP_PCT`` percent.
        """
        tx_hash = tx.tx_hash
        if tx_hash in self._hashes:
            child = _POOL_REJECTED.labels(reason="duplicate")
            child.inc()
            _tm.annotate_exemplar(child)
            raise DuplicateTransactionError(
                f"transaction {tx_hash.hex()} is already pending"
            )
        if tx.nonce < current_nonce:
            child = _POOL_REJECTED.labels(reason="stale")
            child.inc()
            _tm.annotate_exemplar(child)
            raise InvalidTransactionError(
                f"stale nonce {tx.nonce}: account {tx.sender} is at "
                f"{current_nonce}"
            )
        queue = self._queues.setdefault(tx.sender, {})
        existing = queue.get(tx.nonce)
        if existing is not None:
            floor = existing.gas_price * (100 + REPLACEMENT_BUMP_PCT)
            if tx.gas_price * 100 < floor:
                child = _POOL_REJECTED.labels(reason="underpriced")
                child.inc()
                _tm.annotate_exemplar(child)
                raise UnderpricedReplacementError(
                    f"replacement for nonce {tx.nonce} needs gas price >= "
                    f"{-(-floor // 100)}, got {tx.gas_price}"
                )
            self._hashes.discard(existing.tx_hash)
            queue[tx.nonce] = tx
            self._hashes.add(tx_hash)
            self.replacements += 1
            child = _POOL_ADMITTED.labels(kind="replacement")
            child.inc()
            _tm.annotate_exemplar(child)
            return
        queue[tx.nonce] = tx
        self._hashes.add(tx_hash)
        self._arrival[(tx.sender, tx.nonce)] = self._counter
        self._counter += 1
        child = _POOL_ADMITTED.labels(kind="new")
        child.inc()
        _tm.annotate_exemplar(child)

    def requeue(self, tx: Transaction) -> None:
        """Return a previously selected transaction to the pool unchanged.

        Used when an earlier transaction of the same sender failed block
        admission: the later nonces are not mineable this block but must not
        be dropped.  Keeps the original arrival position when known.
        """
        queue = self._queues.setdefault(tx.sender, {})
        queue[tx.nonce] = tx
        self._hashes.add(tx.tx_hash)
        if (tx.sender, tx.nonce) not in self._arrival:
            self._arrival[(tx.sender, tx.nonce)] = self._counter
            self._counter += 1

    # -- block selection -------------------------------------------------------

    def select(self, nonce_of: Callable[[str], int],
               block_gas_limit: int) -> list[Transaction]:
        """Pop the best block's worth of transactions, in execution order.

        Senders compete by the gas price of their current *head* transaction
        (highest first, ties by arrival); within a sender, nonces are strictly
        contiguous from the account's state nonce.  Packing reserves each
        transaction's full ``gas_limit`` (worst case must fit the block); a
        head that does not fit defers the sender's **whole chain** to a later
        block — later nonces are never sent ahead to die on a nonce check.
        """
        depth_before = len(self._hashes)
        deferred = 0
        ages: list[int] = []
        # One heap entry per sender with a selectable head.
        heads: list[tuple[int, int, str, int]] = []
        for sender, queue in self._queues.items():
            nonce = nonce_of(sender)
            tx = queue.get(nonce)
            if tx is not None:
                heads.append(
                    (-tx.gas_price, self._arrival[(sender, nonce)],
                     sender, nonce)
                )
        heapq.heapify(heads)
        selected: list[Transaction] = []
        gas_reserved = 0
        while heads:
            _, _, sender, nonce = heapq.heappop(heads)
            queue = self._queues[sender]
            tx = queue[nonce]
            if gas_reserved + tx.gas_limit > block_gas_limit:
                # Defer this sender entirely: sending nonce n+1 without n
                # is what used to drop whole chains with "bad nonce".
                deferred += 1
                self.deferrals += 1
                _POOL_DEFERRED.inc()
                _tm.annotate_exemplar(_POOL_DEFERRED)
                continue
            gas_reserved += tx.gas_limit
            selected.append(tx)
            del queue[nonce]
            self._hashes.discard(tx.tx_hash)
            arrival = self._arrival.pop((sender, nonce), None)
            if arrival is not None:
                ages.append(self._counter - arrival)
            successor = queue.get(nonce + 1)
            if successor is not None:
                heapq.heappush(
                    heads,
                    (-successor.gas_price,
                     self._arrival[(sender, nonce + 1)], sender, nonce + 1)
                )
            elif not queue:
                del self._queues[sender]
        _POOL_SELECTED.inc(len(selected))
        _tm.annotate_exemplar(_POOL_SELECTED)
        self.last_selection = {
            "depth_before": depth_before,
            "depth_after": len(self._hashes),
            "selected": len(selected),
            "deferred": deferred,
            "gas_reserved": gas_reserved,
            "ages": ages,
            "replacements_total": self.replacements,
            "deferrals_total": self.deferrals,
        }
        return selected
