"""Transactions: signed state-transition requests.

A transaction either transfers value, deploys a contract, or calls a contract
method.  The payload is structured (method name + JSON-safe arguments) rather
than ABI-encoded bytes; hashing and signing go through canonical JSON so the
digest is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chain import gas as gas_schedule
from repro.crypto.ecdsa import PrivateKey, PublicKey, Signature
from repro.crypto.hashing import is_address, keccak256
from repro.errors import InvalidTransactionError
from repro.utils.serialization import canonical_json_bytes

#: Sentinel target meaning "deploy a new contract".
CREATE = None


@dataclass
class Transaction:
    """A signed transaction.

    Attributes:
        sender: address of the originating account.
        nonce: the sender's transaction counter (replay protection).
        to: target address, or ``None`` to deploy a contract.
        value: base-currency amount transferred to the target.
        payload: structured call data. For calls: ``{"method": ..., "args":
            {...}}``.  For deploys: ``{"contract": <registered name>, "args":
            {...}}``.
        gas_limit: maximum gas the sender is willing to burn.
        gas_price: price per gas unit, paid from the sender's balance.
        public_key: the sender's public key (no recovery in this substrate,
            so the key travels with the transaction, as in Bitcoin).
        signature: ECDSA signature over the canonical signing payload.
    """

    sender: str
    nonce: int
    to: Optional[str]
    value: int
    payload: dict = field(default_factory=dict)
    gas_limit: int = gas_schedule.DEFAULT_TX_GAS_LIMIT
    gas_price: int = gas_schedule.DEFAULT_GAS_PRICE
    public_key: Optional[PublicKey] = None
    signature: Optional[Signature] = None

    # Fields covered by the signature; assigning any of them invalidates the
    # canonical-bytes / hash caches below.
    _SIGNED_FIELDS = frozenset({
        "sender", "nonce", "to", "value", "payload", "gas_limit", "gas_price",
    })
    _CACHE_SLOTS = ("_signing_bytes_cache", "_tx_hash_cache",
                    "_payload_bytes_cache")

    def __setattr__(self, name: str, value: Any) -> None:
        # Canonical serialization used to be recomputed 3-4x per transaction
        # (sign, submit, hash, gas).  The caches make it once-per-content;
        # mutating a signed field drops them so a re-signed transaction
        # hashes correctly.  NOTE: mutate by *assignment* (``tx.payload =
        # {...}``), not in place — in-place dict mutation is invisible here,
        # as it is to any cache.
        if name in self._SIGNED_FIELDS:
            for slot in self._CACHE_SLOTS:
                self.__dict__.pop(slot, None)
        object.__setattr__(self, name, value)

    def signing_payload(self) -> dict:
        """The fields covered by the signature (everything but the signature)."""
        return {
            "sender": self.sender,
            "nonce": self.nonce,
            "to": self.to,
            "value": self.value,
            "payload": self.payload,
            "gas_limit": self.gas_limit,
            "gas_price": self.gas_price,
        }

    def signing_bytes(self) -> bytes:
        """Canonical bytes that are hashed and signed (computed once)."""
        cached = self.__dict__.get("_signing_bytes_cache")
        if cached is None:
            cached = canonical_json_bytes(self.signing_payload())
            self.__dict__["_signing_bytes_cache"] = cached
        return cached

    @property
    def tx_hash(self) -> bytes:
        """The transaction identifier: hash of the signing payload.

        Mempool admission, mining, receipts, and event queries all ask for
        the hash; it is computed once per content and cached.
        """
        cached = self.__dict__.get("_tx_hash_cache")
        if cached is None:
            cached = keccak256(self.signing_bytes())
            self.__dict__["_tx_hash_cache"] = cached
        return cached

    @property
    def intrinsic_gas(self) -> int:
        """Gas charged before any execution: base + calldata (+ create)."""
        payload_bytes = self.__dict__.get("_payload_bytes_cache")
        if payload_bytes is None:
            payload_bytes = canonical_json_bytes(self.payload)
            self.__dict__["_payload_bytes_cache"] = payload_bytes
        cost = gas_schedule.TX_BASE
        cost += len(payload_bytes) * gas_schedule.TX_DATA_BYTE
        if self.to is CREATE:
            cost += gas_schedule.CONTRACT_CREATE
        return cost

    def sign(self, key: PrivateKey) -> "Transaction":
        """Sign in place with ``key`` (which must control ``sender``)."""
        if key.address != self.sender:
            raise InvalidTransactionError(
                "signing key does not control the sender address"
            )
        self.public_key = key.public_key
        self.signature = key.sign(self.signing_bytes())
        return self

    def validate_shape(self) -> None:
        """Check structural validity (addresses, non-negative amounts)."""
        if not is_address(self.sender):
            raise InvalidTransactionError(f"malformed sender {self.sender!r}")
        if self.to is not CREATE and not is_address(self.to):
            raise InvalidTransactionError(f"malformed target {self.to!r}")
        if self.nonce < 0:
            raise InvalidTransactionError("nonce must be non-negative")
        if self.value < 0:
            raise InvalidTransactionError("value must be non-negative")
        if self.gas_limit <= 0 or self.gas_price < 0:
            raise InvalidTransactionError("gas limit/price out of range")
        if not isinstance(self.payload, dict):
            raise InvalidTransactionError("payload must be a dict")

    def verify_signature(self) -> None:
        """Check the signature and that the key controls the sender address."""
        if self.signature is None or self.public_key is None:
            raise InvalidTransactionError("transaction is unsigned")
        if self.public_key.address != self.sender:
            raise InvalidTransactionError(
                "public key does not match the sender address"
            )
        if not self.public_key.verify(self.signing_bytes(), self.signature):
            raise InvalidTransactionError("invalid transaction signature")


@dataclass(frozen=True)
class LogEntry:
    """An event emitted by a contract during execution."""

    address: str
    name: str
    data: dict

    def to_dict(self) -> dict:
        return {"address": self.address, "name": self.name, "data": self.data}


@dataclass
class Receipt:
    """Outcome of applying a transaction.

    ``status`` is True on success; on revert all contract effects are undone,
    gas is still consumed, and ``error`` carries the revert reason.
    ``return_value`` is whatever the contract method returned (JSON-safe).
    """

    tx_hash: bytes
    status: bool
    gas_used: int
    logs: list[LogEntry] = field(default_factory=list)
    return_value: Any = None
    error: Optional[str] = None
    contract_address: Optional[str] = None
    block_number: Optional[int] = None
