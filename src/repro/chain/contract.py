"""Smart-contract programming model for the blockchain substrate.

Contracts are Python classes deriving from :class:`Contract`.  The paper's
governance layer (Section III-A) needs Turing-complete contracts with events,
storage, revert semantics and gas accounting; this module provides exactly
that surface:

* all persistent state lives in ``self.storage`` (a nested dict of JSON-safe
  values) and is accessed through :meth:`sread` / :meth:`swrite`, which charge
  gas per slot touched;
* ``self.emit(...)`` appends to the transaction's event log;
* ``self.require(...)`` reverts the whole call (the VM rolls storage back);
* any public method (name not starting with ``_``) is externally callable;
* cross-contract calls go through ``self.ctx.call(...)`` with the caller's
  address as the new sender, mirroring Ethereum message calls.

A :class:`ContractRegistry` maps deployable names to classes, playing the
role of compiled bytecode.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.chain import gas as gas_schedule
from repro.errors import ContractError
from repro.utils.serialization import canonical_json_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.chain.vm import ExecutionContext

_MISSING = object()


class Contract:
    """Base class for every deployable contract."""

    def __init__(self) -> None:
        self.storage: dict = {}
        self.address: str = ""
        # Execution contexts are per *thread*, not per instance: under the
        # parallel engine two lanes may call into the same contract (the
        # conflict validator decides afterwards whether that was legal), and
        # each must see its own call context.
        self._ctx_tls = threading.local()

    # -- execution context ----------------------------------------------------

    @property
    def _ctx(self) -> "ExecutionContext | None":
        return getattr(self._ctx_tls, "value", None)

    @_ctx.setter
    def _ctx(self, value: "ExecutionContext | None") -> None:
        self._ctx_tls.value = value

    @property
    def ctx(self) -> "ExecutionContext":
        """The context of the call currently executing on this contract."""
        ctx = getattr(self._ctx_tls, "value", None)
        if ctx is None:
            raise ContractError("contract accessed outside a transaction")
        return ctx

    def setup(self, **args: Any) -> None:
        """Constructor body, run once inside the deploying transaction."""

    # -- storage access (gas-metered) ------------------------------------------

    def sread(self, *path: str, default: Any = _MISSING) -> Any:
        """Read a storage slot at a nested ``path`` of keys.

        Charges :data:`~repro.chain.gas.STORAGE_READ`.  Raises
        :class:`ContractError` when the slot is missing and no ``default``
        was provided.  Under the parallel engine the returned value is a
        *snapshot*: mutate it and write it back with :meth:`swrite` (the
        idiom every contract here uses); in-place mutation without a
        write-back is unsupported.
        """
        ctx = self.ctx
        ctx.charge(gas_schedule.STORAGE_READ)
        found, value = ctx.storage_read(self, path)
        if not found:
            if default is _MISSING:
                raise ContractError(f"storage slot {'/'.join(path)} is empty")
            return default
        return value

    def swrite(self, value: Any, *path: str) -> None:
        """Write a storage slot, creating intermediate dicts as needed.

        Charges :data:`~repro.chain.gas.STORAGE_WRITE`.  The context must be
        writable; static (read-only) calls revert here.
        """
        if not path:
            raise ContractError("storage writes need a non-empty path")
        ctx = self.ctx
        ctx.require_writable()
        ctx.charge(gas_schedule.STORAGE_WRITE)
        ctx.storage_write(self, path, value)

    def sdelete(self, *path: str) -> None:
        """Delete a storage slot if present (charged as a write)."""
        if not path:
            raise ContractError("storage deletes need a non-empty path")
        ctx = self.ctx
        ctx.require_writable()
        ctx.charge(gas_schedule.STORAGE_WRITE)
        ctx.storage_delete(self, path)

    # -- parallel-scheduling hints ---------------------------------------------

    @classmethod
    def access_hints(cls, method: str, args: dict,
                     sender: str) -> "list[tuple[str, ...]] | None":
        """Predicted storage paths ``method(**args)`` may touch, or None.

        Used by the parallel engine to *group* transactions before running
        them; correctness never depends on the prediction (recorded actual
        access sets are validated afterwards), so hints only need to be good,
        not sound.  None means "assume the whole contract", which serializes
        all transactions targeting it.  Token contracts override this with
        slot-level hints so transfers between disjoint accounts parallelize.
        """
        return None

    # -- integrity auditing ------------------------------------------------------

    def audit_invariants(self, state: Any) -> list[str]:
        """Conservation invariants the chain auditor re-checks every block.

        Returns human-readable descriptions of any violated invariant
        (empty list = healthy).  Runs *outside* any transaction — access
        ``self.storage`` directly, never :meth:`sread` — and must not
        mutate anything.  ``state`` is the chain's
        :class:`~repro.chain.state.WorldState`, for invariants that relate
        storage to account balances (e.g. escrow backing).
        """
        return []

    # -- events, guards, compute ------------------------------------------------

    def emit(self, name: str, **data: Any) -> None:
        """Emit an event into the transaction log."""
        self.ctx.require_writable()
        payload_size = len(canonical_json_bytes(data))
        self.ctx.charge(
            gas_schedule.EVENT_BASE + payload_size * gas_schedule.EVENT_DATA_BYTE
        )
        self.ctx.log_event(self.address, name, data)

    def require(self, condition: Any, message: str) -> None:
        """Revert the call with ``message`` unless ``condition`` is truthy."""
        if not condition:
            raise ContractError(message)

    def step(self, count: int = 1) -> None:
        """Charge ``count`` abstract compute steps (loops, hashes, compares)."""
        self.ctx.charge(count * gas_schedule.COMPUTE_STEP)

    # -- dispatch ----------------------------------------------------------------

    @classmethod
    def external_methods(cls) -> set[str]:
        """Names of externally callable methods (public, not framework)."""
        framework = {
            "setup", "sread", "swrite", "sdelete", "emit", "require", "step",
            "external_methods", "ctx", "storage", "address", "access_hints",
            "audit_invariants",
        }
        names = set()
        for name in dir(cls):
            if name.startswith("_") or name in framework:
                continue
            if callable(getattr(cls, name, None)):
                names.add(name)
        return names


class ContractRegistry:
    """Maps deployable contract names to classes (the 'bytecode store')."""

    def __init__(self) -> None:
        self._classes: dict[str, type[Contract]] = {}

    def register(self, name: str, contract_class: type[Contract]) -> None:
        """Register ``contract_class`` under ``name`` for deployment."""
        if not issubclass(contract_class, Contract):
            raise TypeError("contract classes must derive from Contract")
        if name in self._classes:
            raise ValueError(f"contract name {name!r} already registered")
        self._classes[name] = contract_class

    def get(self, name: str) -> type[Contract]:
        """Look up a registered class, raising ContractError when unknown."""
        if name not in self._classes:
            raise ContractError(f"no contract registered under {name!r}")
        return self._classes[name]

    def names(self) -> list[str]:
        """All registered contract names, sorted."""
        return sorted(self._classes)


def default_registry() -> ContractRegistry:
    """A registry pre-loaded with the standard token contracts."""
    from repro.chain.tokens.erc20 import ERC20Token
    from repro.chain.tokens.erc721 import ERC721Token

    registry = ContractRegistry()
    registry.register("erc20", ERC20Token)
    registry.register("erc721", ERC721Token)
    return registry
