"""Blocks and headers.

Headers commit to the parent, the ordered transaction list (Merkle root), the
post-state root, and the sealing validator's signature — enough structure for
the audit layer to verify that history was not rewritten.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chain.transaction import Transaction
from repro.crypto.ecdsa import PublicKey, Signature
from repro.crypto.hashing import hash_object
from repro.crypto.merkle import MerkleTree
from repro.errors import InvalidBlockError


@dataclass
class BlockHeader:
    """Metadata committing to one block's contents and effects."""

    number: int
    parent_hash: bytes
    timestamp: float
    tx_root: bytes
    state_root: bytes
    validator: str
    gas_used: int = 0
    validator_public_key: Optional[PublicKey] = None
    seal: Optional[Signature] = None

    def sealing_payload(self) -> dict:
        """Fields covered by the validator's seal signature."""
        return {
            "number": self.number,
            "parent_hash": self.parent_hash,
            "timestamp": self.timestamp,
            "tx_root": self.tx_root,
            "state_root": self.state_root,
            "validator": self.validator,
            "gas_used": self.gas_used,
        }

    @property
    def block_hash(self) -> bytes:
        """Identifier of the block: hash over the sealed payload."""
        return hash_object(self.sealing_payload())


@dataclass
class Block:
    """A sealed block: header plus the ordered transaction list."""

    header: BlockHeader
    transactions: list[Transaction] = field(default_factory=list)

    @staticmethod
    def compute_tx_root(transactions: list[Transaction]) -> bytes:
        """Merkle root over the transaction hashes, in block order."""
        return MerkleTree([tx.tx_hash for tx in transactions]).root

    def validate_structure(self) -> None:
        """Check internal consistency (tx root matches the body)."""
        expected = self.compute_tx_root(self.transactions)
        if self.header.tx_root != expected:
            raise InvalidBlockError("header tx_root does not match block body")
        if self.header.number < 0:
            raise InvalidBlockError("negative block number")

    @property
    def block_hash(self) -> bytes:
        return self.header.block_hash
