"""Blocks and headers.

Headers commit to the parent, the ordered transaction list (Merkle root), the
post-state root, and the sealing validator's signature — enough structure for
the audit layer to verify that history was not rewritten.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chain.transaction import Transaction
from repro.crypto.ecdsa import PublicKey, Signature
from repro.crypto.hashing import keccak256
from repro.crypto.merkle import MerkleTree
from repro.errors import InvalidBlockError
from repro.utils.serialization import canonical_json_bytes


@dataclass
class BlockHeader:
    """Metadata committing to one block's contents and effects."""

    number: int
    parent_hash: bytes
    timestamp: float
    tx_root: bytes
    state_root: bytes
    validator: str
    gas_used: int = 0
    validator_public_key: Optional[PublicKey] = None
    seal: Optional[Signature] = None

    # Fields covered by the seal; assigning any of them invalidates the
    # canonical-bytes / hash caches (the seal itself is not covered, so
    # sealing a header does not drop them).
    _SEALED_FIELDS = frozenset({
        "number", "parent_hash", "timestamp", "tx_root", "state_root",
        "validator", "gas_used",
    })

    def __setattr__(self, name: str, value) -> None:
        if name in self._SEALED_FIELDS:
            self.__dict__.pop("_sealing_bytes_cache", None)
            self.__dict__.pop("_block_hash_cache", None)
        object.__setattr__(self, name, value)

    def sealing_payload(self) -> dict:
        """Fields covered by the validator's seal signature."""
        return {
            "number": self.number,
            "parent_hash": self.parent_hash,
            "timestamp": self.timestamp,
            "tx_root": self.tx_root,
            "state_root": self.state_root,
            "validator": self.validator,
            "gas_used": self.gas_used,
        }

    def sealing_bytes(self) -> bytes:
        """Canonical bytes the seal signs, computed once per content.

        Both sealing and seal verification (``verify_chain`` replays every
        header) hash the same payload; the cache makes the serialization
        once-per-header instead of once-per-check.
        """
        cached = self.__dict__.get("_sealing_bytes_cache")
        if cached is None:
            cached = canonical_json_bytes(self.sealing_payload())
            self.__dict__["_sealing_bytes_cache"] = cached
        return cached

    @property
    def block_hash(self) -> bytes:
        """Identifier of the block: hash over the sealed payload."""
        cached = self.__dict__.get("_block_hash_cache")
        if cached is None:
            cached = keccak256(self.sealing_bytes())
            self.__dict__["_block_hash_cache"] = cached
        return cached


@dataclass
class Block:
    """A sealed block: header plus the ordered transaction list."""

    header: BlockHeader
    transactions: list[Transaction] = field(default_factory=list)

    @staticmethod
    def compute_tx_root(transactions: list[Transaction]) -> bytes:
        """Merkle root over the transaction hashes, in block order."""
        return MerkleTree([tx.tx_hash for tx in transactions]).root

    def validate_structure(self) -> None:
        """Check internal consistency (tx root matches the body)."""
        expected = self.compute_tx_root(self.transactions)
        if self.header.tx_root != expected:
            raise InvalidBlockError("header tx_root does not match block body")
        if self.header.number < 0:
            raise InvalidBlockError("negative block number")

    @property
    def block_hash(self) -> bytes:
        return self.header.block_hash
