"""Standard token contracts: ERC-20 (fungible) and ERC-721 (non-fungible).

Section III-A of the paper selects these two Ethereum standards: ERC-20 for
divisible rewards split among providers, ERC-721 for unique assets — datasets
and workload code — traded on the marketplace.
"""

from repro.chain.tokens.erc20 import ERC20Token
from repro.chain.tokens.erc721 import ERC721Token

__all__ = ["ERC20Token", "ERC721Token"]
