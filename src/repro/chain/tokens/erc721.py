"""ERC-721 non-fungible token contract.

The paper proposes NFTs for "indivisible, unique assets ... particularly
useful to model data and workload code".  Tokens here carry a metadata URI
and a content hash, so a dataset deed commits to the exact bytes it denotes:
the governance layer mints one token per registered dataset and per submitted
workload definition.
"""

from __future__ import annotations

from repro.chain.contract import Contract

_ZERO_ADDRESS = "0x" + "0" * 40


class ERC721Token(Contract):
    """A registry of unique, ownable tokens with per-token metadata."""

    @classmethod
    def access_hints(cls, method: str, args: dict,
                     sender: str) -> list[tuple[str, ...]] | None:
        """Per-token predictions; ``mint`` serializes on the id counter.

        Paths involving an owner that is only known from storage (operator
        approvals looked up during authorization) are widened to the whole
        ``operator_approvals`` subtree — over-approximation only costs
        parallelism, never correctness.
        """
        token_id = args.get("token_id")
        token_key = str(token_id) if token_id is not None else None
        if method == "transfer_from":
            owner = args.get("sender")
            return [
                ("owners", token_key),
                ("token_approvals", token_key),
                ("operator_approvals", owner),
                ("balances", owner),
                ("balances", args.get("recipient")),
            ]
        if method == "approve":
            return [("owners", token_key), ("token_approvals", token_key),
                    ("operator_approvals",)]
        if method == "set_approval_for_all":
            return [("operator_approvals", sender)]
        if method == "burn":
            return [("owners", token_key), ("token_approvals", token_key),
                    ("uris", token_key), ("hashes", token_key),
                    ("operator_approvals",), ("balances",)]
        if method == "mint":
            return [("minter",), ("next_id",),
                    ("owners",), ("balances", args.get("recipient")),
                    ("uris",), ("hashes",)]
        if method in ("owner_of", "token_uri", "content_hash", "get_approved"):
            return [("owners", token_key), ("token_approvals", token_key),
                    ("uris", token_key), ("hashes", token_key)]
        if method == "balance_of":
            return [("balances", args.get("owner"))]
        if method == "is_approved_for_all":
            return [("operator_approvals", args.get("owner"))]
        return None

    def audit_invariants(self, state) -> list[str]:
        """Deed conservation: ownership records and balances must agree."""
        owners = self.storage.get("owners", {})
        balances = self.storage.get("balances", {})
        problems = []
        held: dict[str, int] = {}
        for owner in owners.values():
            held[owner] = held.get(owner, 0) + 1
        recorded = {owner: count for owner, count in balances.items()
                    if count != 0}
        if held != recorded:
            drifted = sorted(set(held) ^ set(recorded)
                             | {owner for owner in set(held) & set(recorded)
                                if held[owner] != recorded[owner]})
            problems.append(
                f"deed balance drift: ownership map and balances disagree "
                f"for {', '.join(drifted) or 'unknown owners'}"
            )
        next_id = self.storage.get("next_id", 0)
        stray = sorted(token for token in owners if int(token) >= next_id)
        for token in stray:
            problems.append(f"deed {token} exists beyond next_id {next_id}")
        return problems

    def setup(self, name: str = "PDS2 Deed", symbol: str = "DEED",
              minter: str | None = None) -> None:
        """Initialize the collection; the deployer is the default minter."""
        self.swrite(name, "name")
        self.swrite(symbol, "symbol")
        self.swrite(minter if minter is not None else self.ctx.sender, "minter")
        self.swrite(0, "next_id")

    # -- internal ----------------------------------------------------------------

    def _owner(self, token_id: int) -> str:
        owner = self.sread("owners", str(token_id), default=None)
        self.require(owner is not None, f"token {token_id} does not exist")
        return owner

    def _is_authorized(self, actor: str, token_id: int) -> bool:
        owner = self._owner(token_id)
        if actor == owner:
            return True
        if self.sread("token_approvals", str(token_id), default=None) == actor:
            return True
        return bool(self.sread("operator_approvals", owner, actor,
                               default=False))

    # -- views -------------------------------------------------------------------

    def name(self) -> str:
        """Collection name."""
        return self.sread("name")

    def symbol(self) -> str:
        """Collection symbol."""
        return self.sread("symbol")

    def owner_of(self, token_id: int) -> str:
        """Current owner of ``token_id`` (reverts if nonexistent)."""
        return self._owner(token_id)

    def balance_of(self, owner: str) -> int:
        """Number of tokens held by ``owner``."""
        return self.sread("balances", owner, default=0)

    def token_uri(self, token_id: int) -> str:
        """Metadata URI attached at mint time."""
        self._owner(token_id)  # existence check
        return self.sread("uris", str(token_id), default="")

    def content_hash(self, token_id: int) -> str:
        """Hex content hash the token commits to (dataset/workload bytes)."""
        self._owner(token_id)
        return self.sread("hashes", str(token_id), default="")

    def get_approved(self, token_id: int) -> str:
        """Address approved to transfer ``token_id``, or the zero address."""
        self._owner(token_id)
        approved = self.sread("token_approvals", str(token_id), default=None)
        return approved if approved is not None else _ZERO_ADDRESS

    def is_approved_for_all(self, owner: str, operator: str) -> bool:
        """True when ``operator`` may manage all of ``owner``'s tokens."""
        return bool(self.sread("operator_approvals", owner, operator,
                               default=False))

    # -- mutations ---------------------------------------------------------------

    def mint(self, recipient: str, uri: str = "",
             content_hash: str = "") -> int:
        """Mint a new token to ``recipient`` (minter only); returns its id."""
        self.require(self.ctx.sender == self.sread("minter"),
                     "only the minter may mint")
        token_id = self.sread("next_id")
        self.swrite(token_id + 1, "next_id")
        self.swrite(recipient, "owners", str(token_id))
        self.swrite(self.balance_of(recipient) + 1, "balances", recipient)
        if uri:
            self.swrite(uri, "uris", str(token_id))
        if content_hash:
            self.swrite(content_hash, "hashes", str(token_id))
        self.emit("Transfer", sender=_ZERO_ADDRESS, recipient=recipient,
                  token_id=token_id)
        return token_id

    def approve(self, approved: str, token_id: int) -> None:
        """Approve one address to transfer one token."""
        owner = self._owner(token_id)
        sender = self.ctx.sender
        self.require(
            sender == owner or self.is_approved_for_all(owner, sender),
            "caller is not owner nor operator",
        )
        self.swrite(approved, "token_approvals", str(token_id))
        self.emit("Approval", owner=owner, approved=approved,
                  token_id=token_id)

    def set_approval_for_all(self, operator: str, approved: bool) -> None:
        """Grant or revoke an operator over every caller-owned token."""
        self.swrite(bool(approved), "operator_approvals", self.ctx.sender,
                    operator)
        self.emit("ApprovalForAll", owner=self.ctx.sender, operator=operator,
                  approved=bool(approved))

    def transfer_from(self, sender: str, recipient: str,
                      token_id: int) -> None:
        """Transfer ``token_id`` from ``sender`` to ``recipient``."""
        owner = self._owner(token_id)
        self.require(owner == sender, "sender does not own the token")
        self.require(recipient != _ZERO_ADDRESS, "cannot transfer to zero")
        self.require(self._is_authorized(self.ctx.sender, token_id),
                     "caller not authorized for this token")
        self.sdelete("token_approvals", str(token_id))
        self.swrite(recipient, "owners", str(token_id))
        self.swrite(self.balance_of(sender) - 1, "balances", sender)
        self.swrite(self.balance_of(recipient) + 1, "balances", recipient)
        self.emit("Transfer", sender=sender, recipient=recipient,
                  token_id=token_id)

    def burn(self, token_id: int) -> None:
        """Destroy a token (owner or approved operator only)."""
        owner = self._owner(token_id)
        self.require(self._is_authorized(self.ctx.sender, token_id),
                     "caller not authorized for this token")
        self.sdelete("token_approvals", str(token_id))
        self.sdelete("owners", str(token_id))
        self.sdelete("uris", str(token_id))
        self.sdelete("hashes", str(token_id))
        self.swrite(self.balance_of(owner) - 1, "balances", owner)
        self.emit("Transfer", sender=owner, recipient=_ZERO_ADDRESS,
                  token_id=token_id)
