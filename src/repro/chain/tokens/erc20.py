"""ERC-20 fungible token contract.

Implements the full EIP-20 surface — ``transfer``, ``approve``,
``transferFrom`` (snake-cased as ``transfer_from``), ``balance_of``,
``allowance``, ``total_supply`` — plus a minter role used by the marketplace
to denominate rewards.  Events mirror the standard: ``Transfer`` and
``Approval``.
"""

from __future__ import annotations

from repro.chain.contract import Contract


class ERC20Token(Contract):
    """A fungible token ledger with allowances and an optional minter."""

    @classmethod
    def access_hints(cls, method: str, args: dict,
                     sender: str) -> list[tuple[str, ...]] | None:
        """Slot-level predictions so disjoint transfers parallelize.

        ``mint``/``burn`` touch the global supply counter and so serialize
        against each other; plain transfers between distinct account pairs
        are declared independent.
        """
        if method == "transfer":
            return [("balances", sender), ("balances", args.get("recipient"))]
        if method == "approve":
            return [("allowances", sender, args.get("spender"))]
        if method == "transfer_from":
            owner = args.get("owner")
            return [
                ("allowances", owner, sender),
                ("balances", owner),
                ("balances", args.get("recipient")),
            ]
        if method == "mint":
            return [("minter",), ("total_supply",),
                    ("balances", args.get("recipient"))]
        if method == "burn":
            return [("total_supply",), ("balances", sender)]
        if method == "balance_of":
            return [("balances", args.get("owner"))]
        if method == "allowance":
            return [("allowances", args.get("owner"), args.get("spender"))]
        return None

    def audit_invariants(self, state) -> list[str]:
        """Supply conservation: issued balances must sum to total_supply."""
        balances = self.storage.get("balances", {})
        problems = []
        negative = sorted(owner for owner, amount in balances.items()
                          if amount < 0)
        for owner in negative:
            problems.append(f"negative token balance for {owner}")
        total = self.storage.get("total_supply", 0)
        issued = sum(balances.values())
        if issued != total:
            problems.append(
                f"token supply mismatch: balances sum to {issued}, "
                f"total_supply is {total}"
            )
        return problems

    def setup(self, name: str = "PDS2 Token", symbol: str = "PDS",
              decimals: int = 18, initial_supply: int = 0,
              minter: str | None = None) -> None:
        """Initialize metadata and optionally mint ``initial_supply``.

        The deployer receives the initial supply and becomes the minter
        unless another ``minter`` address is given.
        """
        self.require(decimals >= 0, "decimals must be non-negative")
        self.require(initial_supply >= 0, "initial supply must be non-negative")
        deployer = self.ctx.sender
        self.swrite(name, "name")
        self.swrite(symbol, "symbol")
        self.swrite(decimals, "decimals")
        self.swrite(minter if minter is not None else deployer, "minter")
        self.swrite(0, "total_supply")
        if initial_supply:
            self._mint_to(deployer, initial_supply)

    # -- internal helpers (not externally callable) -----------------------------

    def _balance(self, owner: str) -> int:
        return self.sread("balances", owner, default=0)

    def _mint_to(self, recipient: str, amount: int) -> None:
        self.swrite(self._balance(recipient) + amount, "balances", recipient)
        self.swrite(self.sread("total_supply") + amount, "total_supply")
        self.emit("Transfer", sender="0x" + "0" * 40, recipient=recipient,
                  amount=amount)

    def _move(self, sender: str, recipient: str, amount: int) -> None:
        self.require(amount >= 0, "amount must be non-negative")
        balance = self._balance(sender)
        self.require(balance >= amount, "insufficient token balance")
        self.swrite(balance - amount, "balances", sender)
        self.swrite(self._balance(recipient) + amount, "balances", recipient)
        self.emit("Transfer", sender=sender, recipient=recipient, amount=amount)

    # -- views -------------------------------------------------------------------

    def name(self) -> str:
        """Token name (EIP-20 optional metadata)."""
        return self.sread("name")

    def symbol(self) -> str:
        """Token ticker symbol."""
        return self.sread("symbol")

    def decimals(self) -> int:
        """Number of display decimals."""
        return self.sread("decimals")

    def total_supply(self) -> int:
        """Total tokens in existence."""
        return self.sread("total_supply")

    def balance_of(self, owner: str) -> int:
        """Token balance of ``owner``."""
        return self._balance(owner)

    def allowance(self, owner: str, spender: str) -> int:
        """Remaining tokens ``spender`` may move on behalf of ``owner``."""
        return self.sread("allowances", owner, spender, default=0)

    # -- mutations ---------------------------------------------------------------

    def transfer(self, recipient: str, amount: int) -> bool:
        """Move ``amount`` tokens from the caller to ``recipient``."""
        self._move(self.ctx.sender, recipient, amount)
        return True

    def approve(self, spender: str, amount: int) -> bool:
        """Authorize ``spender`` to move up to ``amount`` of caller's tokens."""
        self.require(amount >= 0, "allowance must be non-negative")
        self.swrite(amount, "allowances", self.ctx.sender, spender)
        self.emit("Approval", owner=self.ctx.sender, spender=spender,
                  amount=amount)
        return True

    def transfer_from(self, owner: str, recipient: str, amount: int) -> bool:
        """Move ``owner``'s tokens using the caller's allowance."""
        spender = self.ctx.sender
        allowed = self.allowance(owner, spender)
        self.require(allowed >= amount, "allowance exceeded")
        self.swrite(allowed - amount, "allowances", owner, spender)
        self._move(owner, recipient, amount)
        return True

    def mint(self, recipient: str, amount: int) -> bool:
        """Create new tokens (minter only) — how reward pools are funded."""
        self.require(self.ctx.sender == self.sread("minter"),
                     "only the minter may mint")
        self.require(amount > 0, "mint amount must be positive")
        self._mint_to(recipient, amount)
        return True

    def burn(self, amount: int) -> bool:
        """Destroy ``amount`` of the caller's tokens."""
        sender = self.ctx.sender
        balance = self._balance(sender)
        self.require(0 < amount <= balance, "burn exceeds balance")
        self.swrite(balance - amount, "balances", sender)
        self.swrite(self.sread("total_supply") - amount, "total_supply")
        self.emit("Transfer", sender=sender, recipient="0x" + "0" * 40,
                  amount=amount)
        return True
