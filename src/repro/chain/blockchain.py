"""The blockchain: chain assembly, a mempool, and a client-side wallet API.

:class:`Blockchain` ties together the world state, the VM, and proof of
authority: transactions enter a pending pool, ``mine_block`` seals them into
the next block, and receipts/events stay queryable forever — the audit trail
the governance layer (Section II-C) requires.

:class:`Wallet` is the ergonomic account handle used throughout the
marketplace: it tracks nonces, signs, and exposes ``deploy`` / ``call`` /
``view`` helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

import numpy as np

from repro.chain import gas as gas_schedule
from repro.chain.audit import ChainAuditor
from repro.chain.block import Block, BlockHeader
from repro.chain.consensus import ProofOfAuthority
from repro.chain.contract import ContractRegistry, default_registry
from repro.chain.mempool import Mempool
from repro.chain.observe import ChainObserver
from repro.chain.parallel import (
    DEFAULT_LANES,
    execute_parallel,
    execute_serial,
)
from repro.chain.state import WorldState
from repro.chain.transaction import CREATE, LogEntry, Receipt, Transaction
from repro.chain.vm import VM, BlockContext
from repro.crypto.ecdsa import PrivateKey, batch_verify
from repro.crypto.hashing import keccak256
from repro.errors import (
    ChainError,
    DuplicateTransactionError,
    InvalidBlockError,
    InvalidTransactionError,
)
from repro.telemetry import metrics as _tm
from repro.telemetry.tracing import tracer as _tracer

GENESIS_PARENT = keccak256(b"pds2-genesis")

# Chain-layer telemetry (module-level handles on the process registry, so
# the per-block cost is a couple of attribute increments).
_BLOCKS_MINED = _tm.counter(
    "pds2_chain_blocks_mined_total", "Blocks sealed onto the chain"
)
_CHAIN_GAS = _tm.counter(
    "pds2_chain_gas_total", "Cumulative gas across all sealed blocks"
)
_TXS_INCLUDED = _tm.counter(
    "pds2_chain_txs_included_total", "Transactions sealed into blocks"
)
_TXS_REJECTED = _tm.counter(
    "pds2_chain_txs_rejected_total",
    "Transactions dropped at block admission (bad nonce, unaffordable)"
)
_BLOCK_GAS_HIST = _tm.histogram(
    "pds2_chain_block_gas", "Gas used per sealed block",
    buckets=_tm.GAS_BUCKETS,
)
_VERIFY_BATCH = _tm.counter(
    "pds2_chain_verify_batch_total",
    "Block-entry batch signature verifications, by outcome",
    labelnames=("outcome",),  # clean | invalid
)


class Blockchain:
    """A single-chain ledger with PoA sealing and full receipt history."""

    def __init__(self, consensus: ProofOfAuthority,
                 registry: Optional[ContractRegistry] = None,
                 genesis_alloc: Optional[dict[str, int]] = None,
                 block_gas_limit: int = gas_schedule.BLOCK_GAS_LIMIT,
                 verify_mode: str = "submit",
                 execution: str = "serial",
                 parallel_lanes: int = DEFAULT_LANES,
                 observe: bool = True,
                 audit: bool = True,
                 audit_strict: bool = False):
        if verify_mode not in ("submit", "mined"):
            raise ValueError("verify_mode must be 'submit' or 'mined'")
        if execution not in ("serial", "parallel"):
            raise ValueError("execution must be 'serial' or 'parallel'")
        self.consensus = consensus
        self.registry = registry if registry is not None else default_registry()
        self.vm = VM(registry=self.registry)
        self.state = WorldState()
        self.block_gas_limit = block_gas_limit
        #: ``"submit"`` verifies each signature eagerly at intake (the
        #: historical behavior); ``"mined"`` defers to one amortized batch
        #: verification over all transactions entering a block.
        self.verify_mode = verify_mode
        #: ``"serial"`` applies block transactions in order on one thread;
        #: ``"parallel"`` overlaps non-conflicting transactions and falls
        #: back to serial whenever equivalence is in doubt.
        self.execution = execution
        self.parallel_lanes = parallel_lanes
        for address, amount in (genesis_alloc or {}).items():
            self.state.credit(address, amount)
        self.blocks: list[Block] = []
        self._receipts: dict[bytes, Receipt] = {}
        self.mempool = Mempool()
        #: Cumulative gas over all sealed blocks, maintained at mine time so
        #: gas accounting is O(1) instead of a rescan of the whole chain.
        self.total_gas_used = 0
        #: Observers called with each newly sealed block (the event-bus hook
        #: the marketplace uses; the chain layer stays core-agnostic).
        self.block_observers: list[Any] = []
        #: Hooks called ``hook(chain, block)`` right after a block seals,
        #: *before* the auditor runs — the tamper seam the resilience
        #: harness uses to corrupt state at a block boundary
        #: (:func:`repro.chain.audit.install_state_corruption`).
        self.tamper_hooks: list[Any] = []
        #: Per-block analytics (None when built with ``observe=False``).
        self.observer: Optional[ChainObserver] = (
            ChainObserver(self) if observe else None
        )
        #: Continuous invariant auditor (None when ``audit=False``).
        self.auditor: Optional[ChainAuditor] = (
            ChainAuditor(self, strict=audit_strict) if audit else None
        )
        self._seal_genesis()

    # -- construction --------------------------------------------------------

    def _seal_genesis(self) -> None:
        header = BlockHeader(
            number=0,
            parent_hash=GENESIS_PARENT,
            timestamp=0.0,
            tx_root=Block.compute_tx_root([]),
            state_root=self.state.state_root(),
            validator=self.consensus.proposer_for(0).address,
        )
        self.consensus.seal(header)
        self.blocks.append(Block(header=header, transactions=[]))

    # -- chain queries ----------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of the latest sealed block."""
        return self.blocks[-1].header.number

    @property
    def head(self) -> Block:
        """The latest sealed block."""
        return self.blocks[-1]

    def receipt_for(self, tx_hash: bytes) -> Receipt:
        """Look up the receipt of a mined transaction."""
        if tx_hash not in self._receipts:
            raise ChainError(f"no receipt for transaction {tx_hash.hex()}")
        return self._receipts[tx_hash]

    def events(self, name: Optional[str] = None,
               address: Optional[str] = None,
               since_block: int = 0) -> Iterator[tuple[int, LogEntry]]:
        """Iterate ``(block_number, log)`` over successful-tx events.

        Filters by event name and/or emitting contract address.  This is the
        query surface providers and auditors use to follow workloads.
        """
        for block in self.blocks[since_block:]:
            for tx in block.transactions:
                receipt = self._receipts[tx.tx_hash]
                if not receipt.status:
                    continue
                for log in receipt.logs:
                    if name is not None and log.name != name:
                        continue
                    if address is not None and log.address != address:
                        continue
                    yield block.header.number, log

    # -- transaction intake and mining ----------------------------------------------

    @property
    def pending(self) -> list[Transaction]:
        """Snapshot of the pooled transactions (sender chains nonce-ordered)."""
        return list(self.mempool)

    def submit(self, tx: Transaction) -> bytes:
        """Admit a signed transaction to the mempool; returns its hash.

        Rejects duplicates of both *pooled* and *already mined* transactions
        — resubmitting a mined hash used to mint a synthetic failure receipt
        that overwrote the original success receipt.  In ``verify_mode
        "submit"`` the signature is checked here; in ``"mined"`` it is
        deferred to the amortized batch verification at block entry.
        """
        tx.validate_shape()
        if tx.tx_hash in self._receipts:
            raise DuplicateTransactionError(
                f"transaction {tx.tx_hash.hex()} was already mined"
            )
        if self.verify_mode == "submit":
            tx.verify_signature()
        self.mempool.add(tx, self.state.nonce_of(tx.sender))
        return tx.tx_hash

    def _verify_block_batch(self, selected: list[Transaction],
                            number: int,
                            stats: Optional[dict] = None
                            ) -> list[Transaction]:
        """Batch-verify signatures of the block's transactions.

        One multi-scalar multiplication covers the whole batch; bisection
        inside :func:`~repro.crypto.ecdsa.batch_verify` isolates any bad
        signatures, which get failed receipts while the rest of their
        sender's chain goes back to the pool (a later nonce cannot run once
        its predecessor is dropped).  Returns the transactions to execute.
        """
        with _tracer().span("chain.verify_batch",
                            transactions=len(selected)) as span:
            errors: dict[int, str] = {}
            items = []
            item_indices = []
            for index, tx in enumerate(selected):
                if tx.signature is None or tx.public_key is None:
                    errors[index] = "transaction is unsigned"
                elif tx.public_key.address != tx.sender:
                    errors[index] = "public key does not match the sender address"
                else:
                    items.append((tx.public_key, tx.signing_bytes(),
                                  tx.signature))
                    item_indices.append(index)
            verdicts = batch_verify(items, stats) if items else []
            for index, good in zip(item_indices, verdicts):
                if not good:
                    errors[index] = "invalid transaction signature"
            failed_senders: set[str] = set()
            to_execute: list[Transaction] = []
            for index, tx in enumerate(selected):
                if tx.sender in failed_senders:
                    self.mempool.requeue(tx)
                    continue
                error = errors.get(index)
                if error is None:
                    to_execute.append(tx)
                    continue
                if tx.tx_hash not in self._receipts:
                    self._receipts[tx.tx_hash] = Receipt(
                        tx_hash=tx.tx_hash, status=False, gas_used=0,
                        error=f"rejected: {error}", block_number=number,
                    )
                _TXS_REJECTED.inc()
                failed_senders.add(tx.sender)
            span.set_attribute("invalid", len(errors))
            if stats is not None:
                stats.setdefault("batched", 0)
                stats.setdefault("singles", 0)
                stats.setdefault("subchecks", 0)
                stats.setdefault("depth", 0)
                stats["invalid"] = len(errors)
            child = _VERIFY_BATCH.labels(
                outcome="invalid" if errors else "clean"
            )
            child.inc()
            _tm.annotate_exemplar(child)
        return to_execute

    def mine_block(self, timestamp: Optional[float] = None) -> Block:
        """Seal the best pending transactions into the next block.

        The mempool hands over sender chains in nonce order, highest gas
        price first, packing by gas-limit reservation — a chain whose head
        does not fit is deferred whole.  Transactions that fail *admission*
        (bad nonce, unaffordable) are dropped with a synthetic failed
        receipt and the rest of their sender's chain returns to the pool;
        transactions that revert during execution are still included, as on
        Ethereum.
        """
        number = self.height + 1
        proposer = self.consensus.proposer_for(number)
        block_ctx = BlockContext(
            number=number,
            timestamp=(
                timestamp if timestamp is not None
                else self.head.header.timestamp + 1.0
            ),
            validator=proposer.address,
        )
        with _tracer().span("chain.mine_block", height=number) as span:
            pre_audit = self.auditor.pre_block() if self.auditor else None
            with _tracer().span("mempool.select", height=number) as sel_span:
                selected = self.mempool.select(
                    self.state.nonce_of, self.block_gas_limit
                )
                sel_span.set_attribute("selected", len(selected))
                sel_span.set_attribute(
                    "deferred",
                    self.mempool.last_selection.get("deferred", 0),
                )
            skip_signature = self.verify_mode == "mined"
            verify_stats: dict[str, int] = {}
            if skip_signature and selected:
                selected = self._verify_block_batch(selected, number,
                                                    verify_stats)
            with _tracer().span("block.execute", height=number,
                                engine=self.execution):
                if self.execution == "parallel":
                    execution = execute_parallel(
                        self.vm, self.state, block_ctx, selected,
                        skip_signature=skip_signature,
                        lanes=self.parallel_lanes,
                    )
                else:
                    execution = execute_serial(
                        self.vm, self.state, block_ctx, selected,
                        skip_signature=skip_signature,
                    )
            for tx, error in execution.rejected:
                # Never overwrite a mined receipt with a synthetic failure
                # (the duplicate-submission clobber this layer used to have).
                if tx.tx_hash not in self._receipts:
                    self._receipts[tx.tx_hash] = Receipt(
                        tx_hash=tx.tx_hash, status=False, gas_used=0,
                        error=f"rejected: {error}", block_number=number,
                    )
                _TXS_REJECTED.inc()
            for tx in execution.deferred:
                self.mempool.requeue(tx)
            self._receipts.update(execution.receipts)
            included = execution.included
            gas_used = execution.gas_used
            header = BlockHeader(
                number=number,
                parent_hash=self.head.block_hash,
                timestamp=block_ctx.timestamp,
                tx_root=Block.compute_tx_root(included),
                state_root=self.state.state_root(),
                validator=proposer.address,
                gas_used=gas_used,
            )
            self.consensus.seal(header)
            block = Block(header=header, transactions=included)
            self.blocks.append(block)
            self.total_gas_used += gas_used
            _BLOCKS_MINED.inc()
            _CHAIN_GAS.inc(gas_used)
            _TXS_INCLUDED.inc(len(included))
            _BLOCK_GAS_HIST.observe(gas_used)
            span.set_attribute("transactions", len(included))
            span.set_attribute("gas", gas_used)
            # Tamper seam first (fault injection corrupts *sealed* state),
            # then analytics, then the invariant sweep — so the auditor
            # sees exactly what the next block would build on.
            for hook in self.tamper_hooks:
                hook(self, block)
            if self.observer is not None:
                self.observer.record_block(
                    block, execution, self.mempool.last_selection,
                    verify_stats,
                )
            if self.auditor is not None:
                self.auditor.post_block(block, execution, pre_audit)
        for observer in self.block_observers:
            observer(block)
        return block

    def logs_of(self, block: Block) -> Iterator[LogEntry]:
        """Logs emitted by the successful transactions of one block."""
        for tx in block.transactions:
            receipt = self._receipts[tx.tx_hash]
            if receipt.status:
                yield from receipt.logs

    # -- verification ------------------------------------------------------------

    def verify_chain(self) -> None:
        """Re-verify every header, seal, and parent link from genesis.

        This is the audit primitive: any retroactive tamper with a block body
        or header breaks either a tx root, a parent hash, or a seal.
        """
        previous: Optional[Block] = None
        for block in self.blocks:
            block.validate_structure()
            self.consensus.verify_seal(block.header)
            if previous is not None:
                if block.header.parent_hash != previous.block_hash:
                    raise InvalidBlockError(
                        f"block {block.header.number} has a broken parent link"
                    )
                if block.header.number != previous.header.number + 1:
                    raise InvalidBlockError("non-contiguous block numbers")
                if block.header.timestamp < previous.header.timestamp:
                    raise InvalidBlockError("timestamps must not decrease")
            previous = block

    # -- free views --------------------------------------------------------------

    def view(self, caller: str, contract: str, method: str,
             **args: Any) -> Any:
        """Query a contract view for free against the current head state."""
        block_ctx = BlockContext(
            number=self.height,
            timestamp=self.head.header.timestamp,
            validator=self.head.header.validator,
        )
        return self.vm.static_view(
            self.state, block_ctx, caller, contract, method, **args
        )


@dataclass
class Wallet:
    """A signing account bound to one chain, with automatic nonce tracking."""

    chain: Blockchain
    key: PrivateKey
    name: str = ""

    @classmethod
    def generate(cls, chain: Blockchain, rng: np.random.Generator,
                 name: str = "") -> "Wallet":
        """Create a wallet with a fresh key."""
        return cls(chain=chain, key=PrivateKey.generate(rng), name=name)

    @property
    def address(self) -> str:
        return self.key.address

    @property
    def balance(self) -> int:
        return self.chain.state.balance_of(self.address)

    def _next_nonce(self) -> int:
        # End of our contiguous pooled nonce run — an O(queue) lookup in the
        # mempool instead of a linear scan of the whole pool.  Correct under
        # replace-by-fee (the replacement keeps its nonce slot) and after an
        # admission failure left a gap: the gap nonce is the one to reuse.
        return self.chain.mempool.next_nonce(
            self.address, self.chain.state.nonce_of(self.address)
        )

    def _build(self, to: Optional[str], value: int, payload: dict,
               gas_limit: int) -> Transaction:
        tx = Transaction(
            sender=self.address,
            nonce=self._next_nonce(),
            to=to,
            value=value,
            payload=payload,
            gas_limit=gas_limit,
        )
        return tx.sign(self.key)

    def transfer(self, to: str, value: int,
                 gas_limit: int = gas_schedule.DEFAULT_TX_GAS_LIMIT) -> bytes:
        """Queue a plain value transfer."""
        return self.chain.submit(self._build(to, value, {}, gas_limit))

    def deploy(self, contract_name: str, value: int = 0,
               gas_limit: int = gas_schedule.DEFAULT_TX_GAS_LIMIT,
               **args: Any) -> bytes:
        """Queue a contract deployment; returns the tx hash.

        The deployed address is available from the receipt after mining, or
        precomputed via :meth:`deployed_address`.
        """
        payload = {"contract": contract_name, "args": args}
        return self.chain.submit(self._build(CREATE, value, payload, gas_limit))

    def deployed_address(self, tx_hash: bytes) -> str:
        """Address of the contract created by a mined deploy transaction."""
        receipt = self.chain.receipt_for(tx_hash)
        if not receipt.status or receipt.contract_address is None:
            raise InvalidTransactionError("deployment failed or not mined")
        return receipt.contract_address

    def call(self, contract: str, method: str, value: int = 0,
             gas_limit: int = gas_schedule.DEFAULT_TX_GAS_LIMIT,
             **args: Any) -> bytes:
        """Queue a contract method call; returns the tx hash."""
        payload = {"method": method, "args": args}
        return self.chain.submit(
            self._build(contract, value, payload, gas_limit)
        )

    def view(self, contract: str, method: str, **args: Any) -> Any:
        """Free read-only contract query from this wallet's address."""
        return self.chain.view(self.address, contract, method, **args)

    def call_and_mine(self, contract: str, method: str, value: int = 0,
                      gas_limit: int = gas_schedule.DEFAULT_TX_GAS_LIMIT,
                      **args: Any) -> Receipt:
        """Convenience: call, mine immediately, and return the receipt."""
        tx_hash = self.call(contract, method, value=value,
                            gas_limit=gas_limit, **args)
        self.chain.mine_block()
        return self.chain.receipt_for(tx_hash)

    def deploy_and_mine(self, contract_name: str, value: int = 0,
                        gas_limit: int = gas_schedule.DEFAULT_TX_GAS_LIMIT,
                        **args: Any) -> str:
        """Convenience: deploy, mine, and return the contract address."""
        tx_hash = self.deploy(contract_name, value=value, gas_limit=gas_limit,
                              **args)
        self.chain.mine_block()
        return self.deployed_address(tx_hash)
