"""Proof-of-authority consensus.

The governance layer needs a decentralized, trustless ledger; for a
laptop-scale reproduction the faithful choice is clique-style proof of
authority — a fixed validator set sealing blocks round-robin — which is also
what Ethereum testnets used.  Energy-burning proof of work would add nothing
to the architecture evaluation but wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chain.block import BlockHeader
from repro.crypto.ecdsa import PrivateKey
from repro.errors import InvalidBlockError


@dataclass(frozen=True)
class Validator:
    """One sealing authority: a named key pair."""

    name: str
    key: PrivateKey

    @property
    def address(self) -> str:
        return self.key.address


class ProofOfAuthority:
    """Round-robin proof-of-authority over a fixed validator set."""

    def __init__(self, validators: list[Validator]):
        if not validators:
            raise ValueError("PoA needs at least one validator")
        addresses = [validator.address for validator in validators]
        if len(set(addresses)) != len(addresses):
            raise ValueError("duplicate validator addresses")
        self._validators = list(validators)

    @classmethod
    def with_generated_validators(cls, count: int,
                                  rng: np.random.Generator) -> "ProofOfAuthority":
        """Create a validator set with freshly generated keys."""
        validators = [
            Validator(name=f"validator-{index}", key=PrivateKey.generate(rng))
            for index in range(count)
        ]
        return cls(validators)

    @property
    def validators(self) -> list[Validator]:
        return list(self._validators)

    def proposer_for(self, block_number: int) -> Validator:
        """The validator whose turn it is to seal ``block_number``."""
        return self._validators[block_number % len(self._validators)]

    def seal(self, header: BlockHeader) -> None:
        """Sign the header in place with the scheduled proposer's key."""
        proposer = self.proposer_for(header.number)
        if header.validator != proposer.address:
            raise InvalidBlockError(
                f"block {header.number} must be sealed by {proposer.name}"
            )
        header.validator_public_key = proposer.key.public_key
        header.seal = proposer.key.sign(header.sealing_bytes())

    def verify_seal(self, header: BlockHeader) -> None:
        """Check the header was sealed by the scheduled proposer."""
        proposer = self.proposer_for(header.number)
        if header.validator != proposer.address:
            raise InvalidBlockError(
                f"block {header.number} sealed by wrong validator"
            )
        if header.seal is None or header.validator_public_key is None:
            raise InvalidBlockError("block header is unsealed")
        if header.validator_public_key.address != proposer.address:
            raise InvalidBlockError("seal public key does not match proposer")
        if not header.validator_public_key.verify(header.sealing_bytes(),
                                                  header.seal):
            raise InvalidBlockError("invalid block seal signature")
