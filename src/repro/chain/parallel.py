"""Block execution engines: serial and optimistic-parallel application.

The parallel engine applies non-conflicting transactions concurrently while
guaranteeing results **byte-identical** to serial execution:

1. *Predicted* access paths per transaction (sender account, target account,
   the target contract's :meth:`~repro.chain.contract.Contract.access_hints`
   or, absent hints, the whole contract) feed a union-find that groups
   potentially conflicting transactions.  Same-sender transactions always
   share a group via ``("acct", sender)``, preserving nonce order.
2. Groups are pinned to execution lanes by account-range sharding
   (:func:`~repro.chain.state.shard_of` of the group's anchor address) and
   run on a thread pool — serial in block order within a group, concurrent
   across lanes.  Each transaction runs under a per-thread
   :class:`~repro.chain.state.AccessTracker` and write journal.
3. The *recorded* access sets are validated after the fact: any cross-group
   pair of paths where one is a prefix of the other and at least one side
   wrote is a conflict.  Prediction is best-effort; this validation is what
   correctness rests on.  On conflict — or any unexpected exception, or any
   transaction reading the validator's account — the engine restores the
   block-start snapshot and re-runs everything serially.
4. Validator fees are deferred into a per-transaction fee sink and credited
   in serial commit order at block end (an inline credit would conflict
   every transaction on the validator account).  Deferral is invisible
   unless someone *reads* the validator account mid-block, which is exactly
   the fallback trigger above.

Both engines implement the same admission policy: a transaction that fails
block admission (bad nonce, unaffordable) is rejected with an error string,
and the same sender's **later transactions are deferred back to the pool**
instead of being run into certain ``bad nonce`` failures — the fix for the
chain-drop bug the flat pending list had.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.chain.state import AccessTracker, WorldState, shard_of
from repro.chain.transaction import CREATE, Receipt, Transaction
from repro.chain.vm import VM, BlockContext
from repro.errors import ChainError
from repro.telemetry import metrics as _tm

#: Default number of execution lanes for the parallel engine.
DEFAULT_LANES = 4

_PARALLEL_BLOCKS = _tm.counter(
    "pds2_chain_parallel_blocks_total",
    "Blocks executed by the parallel engine, by outcome",
    labelnames=("outcome",),  # parallel | fallback
)
_PARALLEL_FALLBACKS = _tm.counter(
    "pds2_chain_parallel_fallbacks_total",
    "Parallel executions replayed serially, by reason",
    labelnames=("reason",),  # conflict | exception | validator_read
)
_PARALLEL_GROUPS = _tm.histogram(
    "pds2_chain_parallel_groups",
    "Independent conflict groups per parallel block",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128),
)
_SERIAL_CAUSES = _tm.counter(
    "pds2_chain_serial_causes_total",
    "Blocks the parallel engine ran serially, by attributed cause",
    # small_block | no_hints | predicted_conflict | conflict | exception
    # | validator_read
    labelnames=("cause",),
)


@dataclass
class BlockExecution:
    """Outcome of applying one block's worth of transactions."""

    #: Transactions included in the block, in commit order.
    included: list[Transaction] = field(default_factory=list)
    #: Receipt per included transaction hash.
    receipts: dict[bytes, Receipt] = field(default_factory=dict)
    #: Admission failures: ``(tx, error message)`` — the chain writes the
    #: synthetic failed receipt (it owns receipt bookkeeping).
    rejected: list[tuple[Transaction, str]] = field(default_factory=list)
    #: Transactions to put back in the pool (sender chain behind a failure).
    deferred: list[Transaction] = field(default_factory=list)
    gas_used: int = 0
    #: Conflict groups the parallel engine found (0 for the serial engine).
    groups: int = 0
    #: True when a parallel run was abandoned and replayed serially.
    fell_back: bool = False
    #: Why this block ran serially, or "" when it ran parallel.  One of
    #: ``small_block`` (too few txs / one lane), ``no_hints`` (predicted
    #: collapse into one group driven by a hint-less contract),
    #: ``predicted_conflict`` (one group despite hints), ``conflict``
    #: (recorded-set conflict after an optimistic run), ``exception``
    #: (lane raised outside the VM's revert envelope), ``validator_read``
    #: (a tx read the validator account mid-block, so fee deferral would
    #: be visible).
    serial_cause: str = ""
    #: Lane -> number of transactions executed on it (parallel runs only).
    lane_txs: dict[int, int] = field(default_factory=dict)
    #: Predicted-conflict merge keys ("kind:address") -> how many group
    #: merges that key caused.  This is the conflict matrix the ops plane
    #: aggregates to show which contracts/accounts cost parallelism.
    conflict_keys: dict[str, int] = field(default_factory=dict)
    #: Transactions whose target contract supplied slot-level access hints.
    hinted_txs: int = 0
    #: Transactions grouped on a whole-contract path for lack of hints.
    unhinted_txs: int = 0


# ---------------------------------------------------------------------------
# Serial engine
# ---------------------------------------------------------------------------


def execute_serial(vm: VM, state: WorldState, block: BlockContext,
                   txs: list[Transaction], *,
                   skip_signature: bool = False) -> BlockExecution:
    """Apply ``txs`` in order on the calling thread."""
    result = BlockExecution()
    failed_senders: set[str] = set()
    for tx in txs:
        if tx.sender in failed_senders:
            result.deferred.append(tx)
            continue
        try:
            receipt = vm.apply_transaction(
                state, block, tx, skip_signature=skip_signature
            )
        except ChainError as exc:
            result.rejected.append((tx, str(exc)))
            failed_senders.add(tx.sender)
            continue
        result.receipts[tx.tx_hash] = receipt
        result.included.append(tx)
        result.gas_used += receipt.gas_used
    return result


# ---------------------------------------------------------------------------
# Conflict grouping (predicted) and validation (recorded)
# ---------------------------------------------------------------------------


def _anchor_address(tx: Transaction) -> str:
    """The address a transaction is 'about', for lane sharding."""
    if tx.to is CREATE:
        return VM.contract_address_for(tx.sender, tx.nonce)
    return tx.to or tx.sender


def predicted_paths(state: WorldState, tx: Transaction,
                    meta: Optional[dict] = None) -> set[tuple]:
    """Best-effort prediction of the state paths ``tx`` may touch.

    Used only for grouping; the recorded sets are validated afterwards, so
    an optimistic (too narrow) prediction costs a serial replay, never
    correctness.  When ``meta`` is given it receives ``{"hinted": bool}`` —
    False exactly when the target contract declared no
    :meth:`~repro.chain.contract.Contract.access_hints` for this call and
    grouping had to assume the whole contract.
    """
    if meta is not None:
        meta["hinted"] = True
    paths: set[tuple] = {("acct", tx.sender)}
    if tx.to is CREATE:
        address = VM.contract_address_for(tx.sender, tx.nonce)
        paths.update(
            {("acct", address), ("code", address), ("store", address)}
        )
        return paths
    paths.add(("acct", tx.to))
    contract = state.contracts.get(tx.to)
    if contract is None or not tx.payload:
        return paths
    paths.add(("code", tx.to))
    method = tx.payload.get("method")
    args = tx.payload.get("args", {})
    hints = None
    if isinstance(method, str) and isinstance(args, dict):
        try:
            hints = type(contract).access_hints(method, args, tx.sender)
        except Exception:
            hints = None
    if hints is None:
        paths.add(("store", tx.to))
        if meta is not None:
            meta["hinted"] = False
    else:
        for hint in hints:
            paths.add(("store", tx.to) + tuple(hint))
    return paths


class _UnionFind:
    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, i: int) -> int:
        parent = self.parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Lower index wins so group identity follows block order.
            if rb < ra:
                ra, rb = rb, ra
            self.parent[rb] = ra


def _merge_key(path: tuple) -> str:
    """Human-readable conflict-matrix key for a predicted-path merge."""
    return f"{path[0]}:{path[1]}" if len(path) > 1 else str(path[0])


def _group_transactions(state: WorldState, txs: list[Transaction],
                        stats: Optional[dict] = None) -> list[list[int]]:
    """Partition tx indices into predicted conflict groups (block order).

    When ``stats`` is given it receives ``hinted``/``unhinted`` tx counts
    and ``merges``: a ``{merge key: count}`` map of which contract/account
    paths actually caused two groups to fuse — the data behind the ops
    plane's conflict matrix.
    """
    uf = _UnionFind(len(txs))
    exact: dict[tuple, int] = {}
    cover: dict[tuple, set[int]] = {}
    merges: dict[str, int] = {}
    hinted = unhinted = 0

    def merge(index: int, holder: int, path: tuple) -> None:
        if uf.find(index) != uf.find(holder):
            key = _merge_key(path)
            merges[key] = merges.get(key, 0) + 1
        uf.union(index, holder)

    for index, tx in enumerate(txs):
        meta: dict = {}
        # Sorted so the path that gets *credited* with a merge is stable
        # across processes (set order varies with hash randomization);
        # grouping itself is order-independent, attribution is not.
        paths = sorted(predicted_paths(state, tx, meta))
        if meta.get("hinted", True):
            hinted += 1
        else:
            unhinted += 1
        for path in paths:
            # Transactions whose full predicted path is a prefix of ours.
            for cut in range(1, len(path) + 1):
                holder = exact.get(path[:cut])
                if holder is not None:
                    merge(index, holder, path[:cut])
            # Transactions with a longer predicted path underneath ours.
            for holder in cover.get(path, ()):
                merge(index, holder, path)
        for path in paths:
            exact[path] = index
            for cut in range(1, len(path)):
                cover.setdefault(path[:cut], set()).add(index)
    if stats is not None:
        stats["hinted"] = hinted
        stats["unhinted"] = unhinted
        stats["merges"] = merges
    groups: dict[int, list[int]] = {}
    for index in range(len(txs)):
        groups.setdefault(uf.find(index), []).append(index)
    return [groups[root] for root in sorted(groups)]


def _recorded_sets_conflict(
        per_group: list[list[tuple[tuple, bool]]]) -> bool:
    """True when two groups' *recorded* access sets overlap with a write.

    Each entry is ``(path, wrote)``; overlap means one path is a prefix of
    the other (or equal).  Single pass with check-then-insert over an exact
    index (full paths) and a cover index (every strict prefix).
    """
    exact: dict[tuple, dict[int, bool]] = {}
    cover: dict[tuple, dict[int, bool]] = {}
    for group_id, accesses in enumerate(per_group):
        for path, wrote in accesses:
            for cut in range(1, len(path) + 1):
                holders = exact.get(path[:cut])
                if holders:
                    for other, other_wrote in holders.items():
                        if other != group_id and (wrote or other_wrote):
                            return True
            holders = cover.get(path)
            if holders:
                for other, other_wrote in holders.items():
                    if other != group_id and (wrote or other_wrote):
                        return True
        for path, wrote in accesses:
            slot = exact.setdefault(path, {})
            slot[group_id] = slot.get(group_id, False) or wrote
            for cut in range(1, len(path)):
                slot = cover.setdefault(path[:cut], {})
                slot[group_id] = slot.get(group_id, False) or wrote
    return False


# ---------------------------------------------------------------------------
# Parallel engine
# ---------------------------------------------------------------------------


class _FallbackNeeded(Exception):
    """Internal: abandon the parallel attempt and replay serially."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _serial_cause(cause: str) -> None:
    child = _SERIAL_CAUSES.labels(cause=cause)
    child.inc()
    _tm.annotate_exemplar(child)


def _annotate_grouping(result: BlockExecution, grouping: dict) -> None:
    result.conflict_keys = grouping.get("merges", {})
    result.hinted_txs = grouping.get("hinted", 0)
    result.unhinted_txs = grouping.get("unhinted", 0)


def execute_parallel(vm: VM, state: WorldState, block: BlockContext,
                     txs: list[Transaction], *,
                     skip_signature: bool = False,
                     lanes: int = DEFAULT_LANES) -> BlockExecution:
    """Apply ``txs`` concurrently where the conflict analysis allows.

    Commit order (receipts, fee credits, inclusion order) is the serial
    block order regardless of execution interleaving; any doubt about
    equivalence triggers a snapshot-restore and a serial replay.
    """
    if len(txs) < 2 or lanes <= 1:
        result = execute_serial(vm, state, block, txs,
                                skip_signature=skip_signature)
        if txs:
            result.serial_cause = "small_block"
            _serial_cause(result.serial_cause)
        return result
    grouping: dict = {}
    groups = _group_transactions(state, txs, grouping)
    if len(groups) < 2:
        # Everything predicted-conflicts into one group: nothing to overlap.
        result = execute_serial(vm, state, block, txs,
                                skip_signature=skip_signature)
        result.groups = 1
        # A hint-less contract widens its predictions to the whole
        # contract, which is the usual reason a block collapses; blame it
        # only when such a tx is actually present.
        result.serial_cause = ("no_hints" if grouping.get("unhinted")
                               else "predicted_conflict")
        _serial_cause(result.serial_cause)
        _annotate_grouping(result, grouping)
        return result
    snapshot = state.snapshot()
    try:
        outcomes, trackers, lane_txs = _run_groups(
            vm, state, block, txs, groups,
            skip_signature=skip_signature, lanes=lanes,
        )
        _validate(trackers, groups, block.validator)
    except _FallbackNeeded as fallback:
        state.restore(snapshot)
        child = _PARALLEL_FALLBACKS.labels(reason=fallback.reason)
        child.inc()
        _tm.annotate_exemplar(child)
        _PARALLEL_BLOCKS.labels(outcome="fallback").inc()
        result = execute_serial(vm, state, block, txs,
                                skip_signature=skip_signature)
        result.fell_back = True
        result.groups = len(groups)
        result.serial_cause = fallback.reason
        _serial_cause(result.serial_cause)
        _annotate_grouping(result, grouping)
        return result
    # Commit: receipts and fees in serial block order.
    result = BlockExecution(groups=len(groups))
    result.lane_txs = lane_txs
    _annotate_grouping(result, grouping)
    for index, tx in enumerate(txs):
        kind, payload = outcomes[index]
        if kind == "ok":
            receipt, fee = payload
            state.credit(block.validator, fee)
            result.receipts[tx.tx_hash] = receipt
            result.included.append(tx)
            result.gas_used += receipt.gas_used
        elif kind == "rejected":
            result.rejected.append((tx, payload))
        else:
            result.deferred.append(tx)
    _PARALLEL_BLOCKS.labels(outcome="parallel").inc()
    _PARALLEL_GROUPS.observe(len(groups))
    return result


def _run_groups(vm: VM, state: WorldState, block: BlockContext,
                txs: list[Transaction], groups: list[list[int]], *,
                skip_signature: bool,
                lanes: int) -> tuple[dict, dict, dict]:
    """Execute groups on sharded lanes.

    Returns per-tx outcomes, per-tx access trackers, and the lane
    occupancy map (lane -> tx count) the attribution report renders.
    """
    lane_work: dict[int, list[list[int]]] = {}
    for group in groups:
        lane = shard_of(_anchor_address(txs[group[0]]), lanes)
        lane_work.setdefault(lane, []).append(group)
    lane_txs = {lane: sum(len(group) for group in lane_groups)
                for lane, lane_groups in sorted(lane_work.items())}
    outcomes: dict[int, tuple] = {}
    trackers: dict[int, AccessTracker] = {}

    def run_lane(lane_groups: list[list[int]]) -> None:
        for group in lane_groups:
            failed_senders: set[str] = set()
            for index in group:
                tx = txs[index]
                if tx.sender in failed_senders:
                    outcomes[index] = ("deferred", None)
                    continue
                tracker = AccessTracker()
                state.begin_tx(tracker)
                fees: list[int] = []
                try:
                    receipt = vm.apply_transaction(
                        state, block, tx, skip_signature=skip_signature,
                        isolation="journal", fee_sink=fees,
                    )
                except ChainError as exc:
                    outcomes[index] = ("rejected", str(exc))
                    failed_senders.add(tx.sender)
                finally:
                    state.end_tx()
                trackers[index] = tracker
                if index not in outcomes:
                    outcomes[index] = ("ok", (receipt, fees[0] if fees else 0))

    with ThreadPoolExecutor(max_workers=min(lanes, len(lane_work))) as pool:
        futures = [pool.submit(run_lane, work)
                   for work in lane_work.values()]
        errors = [f.exception() for f in futures]
    if any(errors):
        raise _FallbackNeeded("exception")
    return outcomes, trackers, lane_txs


def _validate(trackers: dict[int, AccessTracker], groups: list[list[int]],
              validator: str) -> None:
    """Raise :class:`_FallbackNeeded` unless parallel == serial provably."""
    validator_acct = ("acct", validator)
    per_group: list[list[tuple[tuple, bool]]] = []
    for group in groups:
        accesses: list[tuple[tuple, bool]] = []
        for index in group:
            tracker = trackers.get(index)
            if tracker is None:
                continue
            if validator_acct in tracker.reads:
                # Fee deferral changes what a mid-block read of the
                # validator's balance sees; only serial is faithful then.
                raise _FallbackNeeded("validator_read")
            for path in tracker.writes:
                accesses.append((path, True))
            for path in tracker.reads - tracker.writes:
                accesses.append((path, False))
        per_group.append(accesses)
    if _recorded_sets_conflict(per_group):
        raise _FallbackNeeded("conflict")
