"""Continuous chain invariant auditing with forensic bundles.

A :class:`ChainAuditor` hooks every block commit and re-derives the
conservation laws the ledger is supposed to enforce by construction:

* native value conservation — fees are transfers, so the sum of all
  balances is constant across a block;
* nonce monotonicity — nonces never move backwards, and each sender's
  nonce advances by exactly its mined-transaction count;
* header consistency — the sealed ``state_root`` matches a recomputation
  over the live world state, the ``tx_root`` matches the block body, and
  the header's gas both matches the receipt sum and respects the limit;
* receipt completeness — every mined transaction has a receipt pinned to
  this block;
* mempool/chain disjointness — a mined hash never stays pooled;
* per-contract invariants — each deployed contract's
  :meth:`~repro.chain.contract.Contract.audit_invariants` (ERC-20 supply,
  ERC-721 ownership/balance agreement, workload escrow backing).

On a violation the auditor captures a **forensic bundle**: the offending
block, pre/post balance diffs with the accounts no mined transaction can
explain, a mempool snapshot, and the most recent trace spans — then emits
a ``chain.audit.violation`` span and (in strict mode) raises
:class:`~repro.errors.ChainAuditError`.  The default is record-only so an
always-on auditor cannot mask the original failure.

The module also provides the tamper seam the resilience harness uses:
:func:`install_state_corruption` flips one bit of one balance right after
a chosen block seals — precisely the silent corruption only this auditor
can catch (``FaultKind.CORRUPT_STATE`` in the fault-plan DSL).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Optional

from repro.chain.block import Block
from repro.chain.transaction import CREATE
from repro.errors import ChainAuditError
from repro.telemetry import metrics as _tm
from repro.telemetry.tracing import tracer as _tracer

_AUDIT_BLOCKS = _tm.counter(
    "pds2_chain_audit_blocks_total",
    "Blocks checked by the continuous invariant auditor",
)
_AUDIT_VIOLATIONS = _tm.counter(
    "pds2_chain_audit_violations_total",
    "Invariant violations found at block commit, by kind",
    labelnames=("kind",),
)


@dataclass
class Violation:
    """One violated invariant at one block commit."""

    block: int
    kind: str
    detail: str
    #: The account or contract address the violation points at, when one
    #: can be named (the forensic bundle's "suspects" complement this).
    account: str = ""

    def to_dict(self) -> dict:
        return {"block": self.block, "kind": self.kind,
                "detail": self.detail, "account": self.account}


class ChainAuditor:
    """Re-checks conservation invariants at every block commit."""

    def __init__(self, chain: Any, strict: bool = False,
                 forensics_dir: Optional[str] = None,
                 span_window: int = 25):
        self.chain = chain
        #: When True a violation raises :class:`ChainAuditError`; the
        #: default records it (counters, bundle, span event) and lets the
        #: chain continue, so auditing never masks the original bug.
        self.strict = strict
        #: Directory forensic bundles are written to (None = memory only).
        self.forensics_dir = forensics_dir
        #: How many recent finished spans a bundle captures.
        self.span_window = span_window
        self.blocks_checked = 0
        self.violations: list[Violation] = []
        self.bundles: list[dict] = []

    # -- lifecycle hooks (called by Blockchain.mine_block) ------------------

    def pre_block(self) -> dict:
        """Snapshot the audit-relevant pre-state before a block executes."""
        state = self.chain.state
        return {
            "balances": dict(state.balances),
            "nonces": dict(state.nonces),
            "native_sum": sum(state.balances.values()),
        }

    def post_block(self, block: Any, execution: Any,
                   pre: dict) -> list[Violation]:
        """Check every invariant against the sealed block; returns new
        violations (empty on a healthy block)."""
        header = block.header
        number = header.number
        state = self.chain.state
        found: list[Violation] = []

        def flag(kind: str, detail: str, account: str = "") -> None:
            found.append(Violation(number, kind, detail, account))

        # Native value conservation: every in-block movement (transfers,
        # gas fees) is account-to-account, so the total supply is fixed.
        post_sum = sum(state.balances.values())
        if post_sum != pre["native_sum"]:
            delta = post_sum - pre["native_sum"]
            flag("conservation",
                 f"native value drifted by {delta:+d} across block {number}")

        # Nonce monotonicity, and exact advancement for mined senders.
        mined: dict[str, int] = {}
        for tx in block.transactions:
            mined[tx.sender] = mined.get(tx.sender, 0) + 1
        for account, before in pre["nonces"].items():
            after = state.nonces.get(account, 0)
            if after < before:
                flag("nonce",
                     f"nonce of {account} moved backwards: "
                     f"{before} -> {after}", account)
        for sender, count in mined.items():
            before = pre["nonces"].get(sender, 0)
            after = state.nonces.get(sender, 0)
            if after != before + count:
                flag("nonce",
                     f"{sender} mined {count} tx(s) but its nonce went "
                     f"{before} -> {after}", sender)

        # Header consistency against recomputation.
        if header.state_root != state.state_root():
            flag("state_root",
                 f"block {number} header state_root does not match the "
                 f"recomputed world-state root")
        if header.tx_root != Block.compute_tx_root(block.transactions):
            flag("tx_root",
                 f"block {number} header tx_root does not match its body")

        # Receipt completeness and gas accounting.
        receipt_gas = 0
        for tx in block.transactions:
            receipt = self.chain._receipts.get(tx.tx_hash)
            if receipt is None or receipt.block_number != number:
                flag("receipts",
                     f"mined tx {tx.tx_hash.hex()[:16]} has no receipt "
                     f"pinned to block {number}", tx.sender)
            else:
                receipt_gas += receipt.gas_used
        if receipt_gas != header.gas_used:
            flag("receipts",
                 f"receipts sum to {receipt_gas} gas, header claims "
                 f"{header.gas_used}")
        if header.gas_used > self.chain.block_gas_limit:
            flag("gas_limit",
                 f"block {number} used {header.gas_used} gas over the "
                 f"{self.chain.block_gas_limit} limit")

        # Mempool/chain hash disjointness.
        for tx in block.transactions:
            if tx.tx_hash in self.chain.mempool:
                flag("mempool_overlap",
                     f"mined tx {tx.tx_hash.hex()[:16]} is still pooled",
                     tx.sender)

        # Per-contract invariants (token supply, deed ownership, escrow).
        for address in sorted(state.contracts):
            contract = state.contracts[address]
            try:
                problems = contract.audit_invariants(state)
            except Exception as exc:  # a broken check is itself a finding
                problems = [f"invariant check crashed: "
                            f"{type(exc).__name__}: {exc}"]
            for problem in problems:
                flag("contract_invariant",
                     f"{type(contract).__name__}@{address}: {problem}",
                     address)

        self.blocks_checked += 1
        _AUDIT_BLOCKS.inc()
        if found:
            self._report(block, found, pre)
        return found

    # -- violation handling -------------------------------------------------

    def _report(self, block: Any, found: list[Violation],
                pre: dict) -> None:
        self.violations.extend(found)
        for violation in found:
            child = _AUDIT_VIOLATIONS.labels(kind=violation.kind)
            child.inc()
            _tm.annotate_exemplar(child)
        bundle = self._forensic_bundle(block, found, pre)
        self.bundles.append(bundle)
        self._write_bundle(bundle)
        with _tracer().span(
            "chain.audit.violation", height=block.header.number,
            violations=len(found),
            kinds=",".join(sorted({v.kind for v in found})),
            suspects=",".join(bundle["suspect_accounts"][:4]),
        ):
            pass
        if self.strict:
            first = "; ".join(v.detail for v in found[:3])
            raise ChainAuditError(
                f"{len(found)} invariant violation(s) at block "
                f"{block.header.number}: {first}"
            )

    def _forensic_bundle(self, block: Any, found: list[Violation],
                         pre: dict) -> dict:
        state = self.chain.state
        touched = {block.header.validator}
        for tx in block.transactions:
            touched.add(tx.sender)
            if tx.to is not CREATE and tx.to:
                touched.add(tx.to)
            receipt = self.chain._receipts.get(tx.tx_hash)
            if receipt is not None and receipt.contract_address:
                touched.add(receipt.contract_address)
            if receipt is not None:
                for log in receipt.logs:
                    touched.add(log.address)
        diffs: dict[str, dict] = {}
        unexplained: list[str] = []
        for account in sorted(set(pre["balances"]) | set(state.balances)):
            before = pre["balances"].get(account, 0)
            after = state.balances.get(account, 0)
            if before == after:
                continue
            was_touched = account in touched
            diffs[account] = {"pre": before, "post": after,
                              "delta": after - before,
                              "touched": was_touched}
            if not was_touched:
                unexplained.append(account)
        return {
            "block": {
                "number": block.header.number,
                "timestamp": block.header.timestamp,
                "validator": block.header.validator,
                "gas_used": block.header.gas_used,
                "txs": len(block.transactions),
                "state_root": block.header.state_root.hex(),
                "tx_root": block.header.tx_root.hex(),
            },
            "violations": [v.to_dict() for v in found],
            #: Accounts whose balance changed without any mined tx
            #: touching them — under CORRUPT_STATE this names the victim.
            "suspect_accounts": unexplained,
            "account_diffs": diffs,
            "mempool": {
                "depth": len(self.chain.mempool),
                "hashes": sorted(tx.tx_hash.hex()
                                 for tx in self.chain.mempool),
            },
            "recent_spans": [
                span.to_dict() for span
                in list(_tracer().finished)[-self.span_window:]
            ],
        }

    def _write_bundle(self, bundle: dict) -> None:
        if not self.forensics_dir:
            return
        os.makedirs(self.forensics_dir, exist_ok=True)
        path = os.path.join(self.forensics_dir,
                            f"block-{bundle['block']['number']}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(bundle, fh, sort_keys=True, indent=2)
            fh.write("\n")

    # -- reporting ----------------------------------------------------------

    def summary(self) -> dict:
        """The ``audit.json`` shape the run recorder and CLI consume."""
        return {
            "blocks_checked": self.blocks_checked,
            "violation_count": len(self.violations),
            "violations": [v.to_dict() for v in self.violations],
            "strict": self.strict,
        }


# ---------------------------------------------------------------------------
# Fault seam: seeded single-slot state corruption at a block boundary
# ---------------------------------------------------------------------------


def install_state_corruption(chain: Any, block_number: int,
                             seed: int = 0, bit: int = 20) -> None:
    """Arm a tamper hook that bit-flips one balance after a block seals.

    The victim is drawn deterministically from ``(seed, block_number)``
    among funded accounts the block's transactions did *not* touch, so the
    corruption is invisible to every receipt and header — exactly the
    failure mode only the auditor's conservation sweep can see.
    """

    def tamper(chain_: Any, block: Any) -> Optional[str]:
        if block.header.number != block_number:
            return None
        state = chain_.state
        touched = {tx.sender for tx in block.transactions}
        touched.add(block.header.validator)
        for tx in block.transactions:
            if tx.to is not CREATE and tx.to:
                touched.add(tx.to)
        candidates = sorted(account for account, value
                            in state.balances.items()
                            if value and account not in touched)
        if not candidates:
            candidates = sorted(account for account, value
                                in state.balances.items() if value)
        if not candidates:
            return None
        index = (seed * 2654435761 + block_number * 40503) % len(candidates)
        victim = candidates[index]
        state.balances[victim] ^= (1 << bit)
        span = _tracer().current
        if span is not None:
            span.set_attribute("fault_kind", "corrupt_state")
            span.set_attribute("fault_point", "chain.block_boundary")
            span.set_attribute("fault_target", victim)
        return victim

    chain.tamper_hooks.append(tamper)


def install_fault_plan(chain: Any, plan: Any, seed: int = 0) -> int:
    """Arm every ``corrupt_state`` fault of a resilience FaultPlan.

    Duck-typed on purpose: importing :mod:`repro.core.resilience` here
    would close a chain -> core -> chain import cycle.  ``Fault.target``
    carries the boundary as ``block:<n>`` (missing/unparsable defaults to
    block 1); ``times`` arms consecutive boundaries.  Returns the number
    of hooks installed, so callers can assert the plan actually bound.
    """
    installed = 0
    for fault in getattr(plan, "faults", ()):
        kind = getattr(fault, "kind", "")
        if getattr(kind, "value", kind) != "corrupt_state":
            continue
        target = getattr(fault, "target", "") or "block:1"
        try:
            block_number = int(str(target).split(":", 1)[1])
        except (IndexError, ValueError):
            block_number = 1
        for occurrence in range(max(1, int(getattr(fault, "times", 1)))):
            install_state_corruption(chain, block_number + occurrence,
                                     seed=seed + occurrence)
            installed += 1
    return installed
