"""World state: balances, nonces, and deployed contracts.

The state object supports deep snapshots so the VM can roll back every effect
of a reverted call — the property the governance layer's audit guarantees
rest on.  Contract *instances* survive a rollback (they are identity-stable);
only their ``storage`` dicts are restored.

For the parallel transaction engine the state additionally supports a
*thread-local transaction context*: an :class:`AccessTracker` recording the
read/write path set of the transaction executing on the current thread, and a
:class:`WriteJournal` — a per-transaction undo log that replaces the O(state)
deep snapshot with an O(writes) revert.  Both are opt-in: with no context
attached (the default, and the serial engine's mode) every accessor behaves
exactly as before.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chain.contract import Contract
from repro.crypto.hashing import hash_object
from repro.errors import InsufficientBalanceError, UnknownContractError

#: Sentinel for "slot absent" in journal pre-images.
_ABSENT = object()


def shard_of(address: str, shards: int) -> int:
    """Account-range shard of ``address``: first two address bytes mod shards.

    The parallel engine uses this to pin conflict groups to execution lanes,
    so transactions landing in the same account range (ERC-20/721 hot
    accounts, busy contracts) serialize on one lane instead of contending.
    """
    if shards <= 1:
        return 0
    try:
        return int(address[2:6], 16) % shards
    except (ValueError, TypeError):
        return 0


class AccessTracker:
    """Read/write path sets recorded while one transaction executes.

    Paths are tuples: ``("acct", address)`` for account balance/nonce,
    ``("code", address)`` for contract existence, and
    ``("store", address, *slot_path)`` for storage slots.  Two paths touch
    the same state iff one is a prefix of the other; the parallel engine
    treats any cross-group prefix overlap involving a write as a conflict.
    """

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: set[tuple] = set()
        self.writes: set[tuple] = set()


class WriteJournal:
    """Undo log for one transaction's state mutations.

    Each mutation appends a record *before* it is applied; :meth:`revert`
    replays the records in reverse.  Storage writes that create intermediate
    dicts record the topmost *newly created* node so revert removes it
    wholesale — leftover empty dicts would diverge the state root from a
    never-executed baseline.
    """

    __slots__ = ("state", "records")

    def __init__(self, state: "WorldState") -> None:
        self.state = state
        self.records: list[tuple] = []

    # -- recording hooks (called by WorldState/ExecutionContext) ----------

    def record_balance(self, address: str) -> None:
        self.records.append(
            ("balance", address, self.state.balances.get(address, _ABSENT))
        )

    def record_nonce(self, address: str) -> None:
        self.records.append(
            ("nonce", address, self.state.nonces.get(address, _ABSENT))
        )

    def record_contract(self, address: str) -> None:
        self.records.append(("contract", address))

    def record_slot(self, contract: Contract, path: tuple,
                    parent: dict, created: Optional[tuple]) -> None:
        """Record one storage-slot write.

        ``parent`` is the dict holding the leaf key; ``created`` is the path
        of the topmost intermediate dict this write created (None when the
        whole path already existed).
        """
        if created is not None:
            # Reverting the created node removes the leaf with it.
            self.records.append(("mknode", contract, created))
            return
        old = parent.get(path[-1], _ABSENT)
        if old is not _ABSENT and isinstance(old, (dict, list)):
            old = copy.deepcopy(old)
        self.records.append(("slot", contract, path, old))

    # -- revert ------------------------------------------------------------

    def revert(self) -> None:
        state = self.state
        for record in reversed(self.records):
            kind = record[0]
            if kind == "balance":
                _, address, old = record
                if old is _ABSENT:
                    state.balances.pop(address, None)
                else:
                    state.balances[address] = old
            elif kind == "nonce":
                _, address, old = record
                if old is _ABSENT:
                    state.nonces.pop(address, None)
                else:
                    state.nonces[address] = old
            elif kind == "slot":
                _, contract, path, old = record
                node: Any = contract.storage
                for key in path[:-1]:
                    if not isinstance(node, dict) or key not in node:
                        node = None
                        break
                    node = node[key]
                if isinstance(node, dict):
                    if old is _ABSENT:
                        node.pop(path[-1], None)
                    else:
                        node[path[-1]] = old
            elif kind == "mknode":
                _, contract, created = record
                node = contract.storage
                for key in created[:-1]:
                    if not isinstance(node, dict) or key not in node:
                        node = None
                        break
                    node = node[key]
                if isinstance(node, dict):
                    node.pop(created[-1], None)
            elif kind == "contract":
                state.contracts.pop(record[1], None)
        self.records.clear()


@dataclass
class StateSnapshot:
    """An opaque deep copy of the mutable world state."""

    balances: dict[str, int]
    nonces: dict[str, int]
    contract_storages: dict[str, dict]


@dataclass
class WorldState:
    """Mutable ledger state shared by all blocks of one chain."""

    balances: dict[str, int] = field(default_factory=dict)
    nonces: dict[str, int] = field(default_factory=dict)
    contracts: dict[str, Contract] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Thread-local transaction context: each engine thread attaches its
        # own tracker/journal, so concurrent transactions record into their
        # own structures without any locking.
        self._tls = threading.local()

    # -- per-thread transaction context ---------------------------------------

    @property
    def tx_tracker(self) -> Optional[AccessTracker]:
        """The access tracker of the transaction on this thread (or None)."""
        return getattr(self._tls, "tracker", None)

    @property
    def tx_journal(self) -> Optional[WriteJournal]:
        """The write journal of the transaction on this thread (or None)."""
        return getattr(self._tls, "journal", None)

    def begin_tx(self, tracker: Optional[AccessTracker]) -> None:
        """Attach an access tracker to this thread's transaction."""
        self._tls.tracker = tracker

    def attach_journal(self, journal: Optional[WriteJournal]) -> None:
        """Attach a write journal to this thread's transaction."""
        self._tls.journal = journal

    def end_tx(self) -> None:
        """Detach this thread's tracker and journal."""
        self._tls.tracker = None
        self._tls.journal = None

    # -- balances -------------------------------------------------------------

    def balance_of(self, address: str) -> int:
        """Current base-currency balance of ``address`` (0 if untouched)."""
        tracker = getattr(self._tls, "tracker", None)
        if tracker is not None:
            tracker.reads.add(("acct", address))
        return self.balances.get(address, 0)

    def credit(self, address: str, amount: int) -> None:
        """Add ``amount`` to an account balance."""
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        tracker = getattr(self._tls, "tracker", None)
        if tracker is not None:
            tracker.writes.add(("acct", address))
        journal = getattr(self._tls, "journal", None)
        if journal is not None:
            journal.record_balance(address)
        self.balances[address] = self.balances.get(address, 0) + amount

    def debit(self, address: str, amount: int) -> None:
        """Remove ``amount`` from an account, raising if it overdraws."""
        if amount < 0:
            raise ValueError("debit amount must be non-negative")
        balance = self.balances.get(address, 0)
        if balance < amount:
            raise InsufficientBalanceError(
                f"{address} holds {balance}, cannot pay {amount}"
            )
        tracker = getattr(self._tls, "tracker", None)
        if tracker is not None:
            tracker.writes.add(("acct", address))
        journal = getattr(self._tls, "journal", None)
        if journal is not None:
            journal.record_balance(address)
        self.balances[address] = balance - amount

    def transfer(self, sender: str, recipient: str, amount: int) -> None:
        """Move base currency between two accounts atomically."""
        self.debit(sender, amount)
        self.credit(recipient, amount)

    # -- nonces ---------------------------------------------------------------

    def nonce_of(self, address: str) -> int:
        """The next expected transaction nonce for ``address``."""
        tracker = getattr(self._tls, "tracker", None)
        if tracker is not None:
            tracker.reads.add(("acct", address))
        return self.nonces.get(address, 0)

    def bump_nonce(self, address: str) -> None:
        """Advance the account's nonce after accepting a transaction."""
        tracker = getattr(self._tls, "tracker", None)
        if tracker is not None:
            tracker.writes.add(("acct", address))
        journal = getattr(self._tls, "journal", None)
        if journal is not None:
            journal.record_nonce(address)
        self.nonces[address] = self.nonces.get(address, 0) + 1

    # -- contracts ------------------------------------------------------------

    def contract_at(self, address: str) -> Contract:
        """The contract deployed at ``address`` or raise UnknownContractError."""
        tracker = getattr(self._tls, "tracker", None)
        if tracker is not None:
            tracker.reads.add(("code", address))
        contract = self.contracts.get(address)
        if contract is None:
            raise UnknownContractError(f"no contract at {address}")
        return contract

    def has_contract(self, address: str) -> bool:
        """True when a contract is deployed at ``address``."""
        tracker = getattr(self._tls, "tracker", None)
        if tracker is not None:
            tracker.reads.add(("code", address))
        return address in self.contracts

    def install_contract(self, address: str, contract: Contract) -> None:
        """Bind a freshly constructed contract instance to ``address``."""
        if address in self.contracts:
            raise UnknownContractError(f"address {address} already occupied")
        tracker = getattr(self._tls, "tracker", None)
        if tracker is not None:
            tracker.writes.add(("code", address))
            tracker.writes.add(("store", address))
        journal = getattr(self._tls, "journal", None)
        if journal is not None:
            journal.record_contract(address)
        contract.address = address
        self.contracts[address] = contract

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> StateSnapshot:
        """Deep-copy everything a reverted call could have touched."""
        return StateSnapshot(
            balances=dict(self.balances),
            nonces=dict(self.nonces),
            contract_storages={
                address: copy.deepcopy(contract.storage)
                for address, contract in self.contracts.items()
            },
        )

    def restore(self, snap: StateSnapshot) -> None:
        """Roll back to ``snap``; contracts deployed since are removed."""
        self.balances = dict(snap.balances)
        self.nonces = dict(snap.nonces)
        for address in list(self.contracts):
            if address not in snap.contract_storages:
                del self.contracts[address]
        for address, storage in snap.contract_storages.items():
            self.contracts[address].storage = copy.deepcopy(storage)

    # -- commitments ------------------------------------------------------------

    def state_root(self) -> bytes:
        """A digest committing to the full state (used in block headers)."""
        summary = {
            "balances": {k: v for k, v in sorted(self.balances.items()) if v},
            "nonces": dict(sorted(self.nonces.items())),
            "contracts": {
                address: contract.storage
                for address, contract in sorted(self.contracts.items())
            },
        }
        return hash_object(summary)
