"""World state: balances, nonces, and deployed contracts.

The state object supports deep snapshots so the VM can roll back every effect
of a reverted call — the property the governance layer's audit guarantees
rest on.  Contract *instances* survive a rollback (they are identity-stable);
only their ``storage`` dicts are restored.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.chain.contract import Contract
from repro.crypto.hashing import hash_object
from repro.errors import InsufficientBalanceError, UnknownContractError


@dataclass
class StateSnapshot:
    """An opaque deep copy of the mutable world state."""

    balances: dict[str, int]
    nonces: dict[str, int]
    contract_storages: dict[str, dict]


@dataclass
class WorldState:
    """Mutable ledger state shared by all blocks of one chain."""

    balances: dict[str, int] = field(default_factory=dict)
    nonces: dict[str, int] = field(default_factory=dict)
    contracts: dict[str, Contract] = field(default_factory=dict)

    # -- balances -------------------------------------------------------------

    def balance_of(self, address: str) -> int:
        """Current base-currency balance of ``address`` (0 if untouched)."""
        return self.balances.get(address, 0)

    def credit(self, address: str, amount: int) -> None:
        """Add ``amount`` to an account balance."""
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        self.balances[address] = self.balance_of(address) + amount

    def debit(self, address: str, amount: int) -> None:
        """Remove ``amount`` from an account, raising if it overdraws."""
        if amount < 0:
            raise ValueError("debit amount must be non-negative")
        balance = self.balance_of(address)
        if balance < amount:
            raise InsufficientBalanceError(
                f"{address} holds {balance}, cannot pay {amount}"
            )
        self.balances[address] = balance - amount

    def transfer(self, sender: str, recipient: str, amount: int) -> None:
        """Move base currency between two accounts atomically."""
        self.debit(sender, amount)
        self.credit(recipient, amount)

    # -- nonces ---------------------------------------------------------------

    def nonce_of(self, address: str) -> int:
        """The next expected transaction nonce for ``address``."""
        return self.nonces.get(address, 0)

    def bump_nonce(self, address: str) -> None:
        """Advance the account's nonce after accepting a transaction."""
        self.nonces[address] = self.nonce_of(address) + 1

    # -- contracts ------------------------------------------------------------

    def contract_at(self, address: str) -> Contract:
        """The contract deployed at ``address`` or raise UnknownContractError."""
        contract = self.contracts.get(address)
        if contract is None:
            raise UnknownContractError(f"no contract at {address}")
        return contract

    def has_contract(self, address: str) -> bool:
        """True when a contract is deployed at ``address``."""
        return address in self.contracts

    def install_contract(self, address: str, contract: Contract) -> None:
        """Bind a freshly constructed contract instance to ``address``."""
        if address in self.contracts:
            raise UnknownContractError(f"address {address} already occupied")
        contract.address = address
        self.contracts[address] = contract

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> StateSnapshot:
        """Deep-copy everything a reverted call could have touched."""
        return StateSnapshot(
            balances=dict(self.balances),
            nonces=dict(self.nonces),
            contract_storages={
                address: copy.deepcopy(contract.storage)
                for address, contract in self.contracts.items()
            },
        )

    def restore(self, snap: StateSnapshot) -> None:
        """Roll back to ``snap``; contracts deployed since are removed."""
        self.balances = dict(snap.balances)
        self.nonces = dict(snap.nonces)
        for address in list(self.contracts):
            if address not in snap.contract_storages:
                del self.contracts[address]
        for address, storage in snap.contract_storages.items():
            self.contracts[address].storage = copy.deepcopy(storage)

    # -- commitments ------------------------------------------------------------

    def state_root(self) -> bytes:
        """A digest committing to the full state (used in block headers)."""
        summary = {
            "balances": {k: v for k, v in sorted(self.balances.items()) if v},
            "nonces": dict(sorted(self.nonces.items())),
            "contracts": {
                address: contract.storage
                for address, contract in sorted(self.contracts.items())
            },
        }
        return hash_object(summary)
