"""Command-line interface for the PDS2 reproduction.

Usage::

    python -m repro info                 # package and subsystem summary
    python -m repro quickstart           # run one workload end to end
    python -m repro experiments          # list the experiment suite
    python -m repro aggregate --kind mean --dp-epsilon 1.0
                                         # run a DP aggregate workload
    python -m repro faults crash-execute # inject a fault, watch recovery
    python -m repro quickstart --trace run.jsonl
    python -m repro trace run.jsonl      # replay a session's event timeline
    python -m repro metrics run.jsonl    # Prometheus view of a run
    python -m repro spans run.jsonl      # flame-style span tree of a run
    python -m repro bench --suite quick --compare BENCH_seed.json
                                         # benchmark trajectory + CI gate
    python -m repro profile --format collapsed
                                         # deterministic sampling profile
    python -m repro batch submit RUNS/b --jobs 240
                                         # sharded, crash-resumable batch
    python -m repro top RUNS/b --watch 2 # live ops view: workers, SLO burn
    python -m repro batch trace RUNS/b --chrome t.json
                                         # assembled distributed trace

The CLI exists so a downstream user can see the platform move without
writing code; anything serious should use the Python API (see README).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, TextIO

import numpy as np


def _labeled_snapshot() -> dict:
    """Snapshot the process registry with run provenance attached.

    Readers (``repro metrics``, the bench harness) ignore unknown top-level
    keys, so old sidecars without ``provenance`` stay loadable.
    """
    from repro import telemetry
    from repro.bench.schema import provenance

    snap = telemetry.snapshot(telemetry.REGISTRY)
    snap["provenance"] = provenance()
    return snap


class OutputWriter:
    """Single sink for all CLI output so text and JSON modes compose.

    In text mode (default), :meth:`line` prints to stdout.  In JSON mode,
    text lines are suppressed, handlers attach structured results with
    :meth:`set`, and :meth:`emit` prints one JSON document at the end —
    commands never mix prose into machine-readable output.  Errors always
    go to stderr in both modes.
    """

    def __init__(self, json_mode: bool = False,
                 stream: TextIO | None = None,
                 err_stream: TextIO | None = None):
        self.json_mode = json_mode
        self._stream = stream if stream is not None else sys.stdout
        self._err = err_stream if err_stream is not None else sys.stderr
        self._payload: dict[str, Any] = {}

    def line(self, text: str = "") -> None:
        """One line of human-facing text (dropped in JSON mode)."""
        if not self.json_mode:
            print(text, file=self._stream)

    def error(self, text: str) -> None:
        """Diagnostics: stderr in both modes."""
        print(text, file=self._err)

    def set(self, key: str, value: Any) -> None:
        """Attach one field of the machine-readable result."""
        self._payload[key] = value

    def emit(self) -> None:
        """Flush the JSON payload (no-op in text mode or when empty)."""
        if self.json_mode and self._payload:
            json.dump(self._payload, self._stream, indent=2, default=str)
            self._stream.write("\n")


def _cmd_info(args: argparse.Namespace, out: OutputWriter) -> int:
    import repro

    subsystems = [
        ("repro.crypto", "ECDSA, Merkle, Paillier, SMC, symmetric crypto"),
        ("repro.chain", "Ethereum-style ledger, contract VM, tokens"),
        ("repro.governance", "registries, workload contracts, audit"),
        ("repro.tee", "enclaves, attestation, oblivious primitives"),
        ("repro.storage", "local/swarm/cloud backends, semantic catalog"),
        ("repro.net", "discrete-event network, topologies, churn"),
        ("repro.ml", "models, datasets, gossip learning, FedAvg"),
        ("repro.privacy", "DP mechanisms, DP-SGD, membership inference"),
        ("repro.rewards", "Shapley, pricing, distribution, economics"),
        ("repro.identity", "device keys, signed readings, verification"),
        ("repro.core", "the marketplace facade (paper Fig. 1/2)"),
        ("repro.telemetry", "metrics registry, span tracing, exporters"),
    ]
    out.line(f"PDS2 reproduction, version {repro.__version__}")
    out.line("Giaretta et al., ICDE 2021 — full implementation\n")
    for name, description in subsystems:
        out.line(f"  {name:<18} {description}")
    out.line("\nSee DESIGN.md for the system inventory and EXPERIMENTS.md "
             "for the paper-vs-measured record.")
    out.set("version", repro.__version__)
    out.set("subsystems", [name for name, _ in subsystems])
    return 0


def _cmd_quickstart(args: argparse.Namespace, out: OutputWriter) -> int:
    from repro.core import Marketplace, ModelSpec, TrainingSpec, WorkloadSpec
    from repro.ml.datasets import (
        make_iot_activity,
        split_dirichlet,
        train_test_split,
    )
    from repro.storage.semantic import ConceptRequirement, SemanticAnnotation

    rng = np.random.default_rng(args.seed)
    data = make_iot_activity(1600, rng)
    train, validation = train_test_split(data, 0.25, rng)
    parts = split_dirichlet(train, args.providers, 1.0, rng, min_samples=15)

    market = Marketplace(seed=args.seed)
    for index, part in enumerate(parts):
        market.add_provider(f"user-{index}", part,
                            SemanticAnnotation("heart_rate",
                                               {"rate_hz": 1.0}))
    consumer = market.add_consumer("consumer", validation=validation)
    for index in range(args.executors):
        market.add_executor(f"executor-{index}")

    spec = WorkloadSpec(
        workload_id="cli-quickstart",
        requirement=ConceptRequirement("physiological"),
        model=ModelSpec(family="softmax", num_features=6, num_classes=5),
        training=TrainingSpec(steps=150, learning_rate=0.3),
        reward_pool=1_000_000,
        min_providers=max(1, args.providers // 2),
        min_samples=100,
        required_confirmations=min(2, args.executors),
        dp_epsilon=args.dp_epsilon,
    )
    out.line(f"running workload with {args.providers} providers, "
             f"{args.executors} executors…")
    if args.trace:
        from repro.core.events import JSONLSink

        with JSONLSink(args.trace) as sink:
            market.events.attach(sink)
            try:
                report = market.run_workload(consumer, spec)
            finally:
                market.events.detach(sink)
        # Sidecar snapshot of the process-wide registry: `repro metrics`
        # prefers this exact view over a replay-derived approximation.
        metrics_path = args.trace + ".metrics.json"
        with open(metrics_path, "w", encoding="utf-8") as fh:
            json.dump(_labeled_snapshot(), fh, indent=2)
        out.line(f"event trace written to {args.trace} "
                 f"(replay: python -m repro trace {args.trace})")
        out.line(f"metrics snapshot written to {metrics_path} "
                 f"(view: python -m repro metrics {metrics_path})")
        out.set("trace", args.trace)
        out.set("metrics_snapshot", metrics_path)
    else:
        report = market.run_workload(consumer, spec)
    out.line(f"accuracy: {report.consumer_score:.3f}")
    out.line(f"gas used: {report.gas_used:,}")
    out.line(f"rewards paid: {report.total_paid:,} "
             f"across {len(report.payouts)} recipients")
    if report.achieved_epsilon is not None:
        out.line("differential privacy: epsilon = "
                 f"{report.achieved_epsilon:.2f}")
    out.line(f"audit clean: {report.audit.clean}")
    out.set("accuracy", report.consumer_score)
    out.set("gas_used", report.gas_used)
    out.set("rewards_paid", report.total_paid)
    out.set("recipients", len(report.payouts))
    out.set("dp_epsilon", report.achieved_epsilon)
    out.set("audit_clean", report.audit.clean)
    return 0 if report.audit.clean else 1


def _cmd_faults(args: argparse.Namespace, out: OutputWriter) -> int:
    from repro.core import Marketplace, ModelSpec, TrainingSpec, WorkloadSpec
    from repro.core.resilience import SCENARIOS, run_with_faults
    from repro.ml.datasets import (
        make_iot_activity,
        split_dirichlet,
        train_test_split,
    )
    from repro.storage.semantic import ConceptRequirement, SemanticAnnotation

    scenario = SCENARIOS[args.scenario]
    out.line(f"scenario {scenario.name}: {scenario.description}")

    rng = np.random.default_rng(args.seed)
    data = make_iot_activity(900, rng)
    train, validation = train_test_split(data, 0.25, rng)
    parts = split_dirichlet(train, args.providers, 1.0, rng, min_samples=15)

    market = Marketplace(seed=args.seed)
    provider_names = []
    for index, part in enumerate(parts):
        provider = market.add_provider(
            f"user-{index}", part,
            SemanticAnnotation("heart_rate", {"rate_hz": 1.0}),
        )
        provider_names.append(provider.name)
    consumer = market.add_consumer("consumer", validation=validation)
    executor_names = [
        market.add_executor(f"executor-{index}").name
        for index in range(args.executors)
    ]

    spec = WorkloadSpec(
        workload_id=f"cli-faults-{scenario.name}",
        requirement=ConceptRequirement("physiological"),
        model=ModelSpec(family="softmax", num_features=6, num_classes=5),
        training=TrainingSpec(steps=80, learning_rate=0.3),
        reward_pool=600_000,
        # One provider may be dropped by recovery and the match still holds.
        min_providers=max(1, args.providers - 1),
        min_samples=50,
        required_confirmations=min(2, args.executors),
    )
    plan = scenario.plan(executor_names, provider_names)
    for line in plan.describe():
        out.line(f"  armed: {line}")
    recover = not args.no_recovery
    out.line(f"recovery policy: {'on' if recover else 'off (baseline)'}")

    if args.trace:
        from repro.core.events import JSONLSink

        with JSONLSink(args.trace) as sink:
            market.events.attach(sink)
            try:
                result = run_with_faults(market, consumer, spec, plan,
                                         recover=recover)
            finally:
                market.events.detach(sink)
        metrics_path = args.trace + ".metrics.json"
        with open(metrics_path, "w", encoding="utf-8") as fh:
            json.dump(_labeled_snapshot(), fh, indent=2)
        out.line(f"event trace written to {args.trace} "
                 f"(replay: python -m repro trace {args.trace})")
        out.line(f"metrics snapshot written to {metrics_path} "
                 f"(view: python -m repro metrics {metrics_path})")
        out.set("trace", args.trace)
        out.set("metrics_snapshot", metrics_path)
    else:
        result = run_with_faults(market, consumer, spec, plan,
                                 recover=recover)

    out.line(f"outcome: {result.outcome} "
             f"(session {result.session_state}, "
             f"contract {result.contract_state or 'not deployed'})")
    out.line(f"faults injected: {len(result.injected)}")
    for action in result.recoveries:
        out.line(f"  recovery: {action['action']} in {action['phase']} "
                 f"-> {action['target']} ({action['reason']})")
    if result.blacklisted:
        out.line(f"blacklisted executors: {', '.join(result.blacklisted)}")
    if result.dropped_providers:
        out.line("dropped providers: "
                 f"{', '.join(result.dropped_providers)}")
    if result.completed:
        out.line(f"rewards paid: {sum(result.payouts.values()):,} "
                 f"across {len(result.payouts)} recipients")
    if result.refunded:
        out.line(f"escrow refunded to consumer: {result.refunded:,}")
    if result.error:
        out.line(f"terminal error: {result.error}")
    out.line(f"gas used: {result.gas_used:,}")
    out.set("scenario", scenario.name)
    out.set("recovery", recover)
    out.set("outcome", result.outcome)
    out.set("completed", result.completed)
    out.set("degraded", result.degraded)
    out.set("contract_state", result.contract_state)
    out.set("faults_injected", len(result.injected))
    out.set("recoveries", result.recoveries)
    out.set("blacklisted", result.blacklisted)
    out.set("dropped_providers", result.dropped_providers)
    out.set("rewards_paid", sum(result.payouts.values()))
    out.set("refunded", result.refunded)
    out.set("gas_used", result.gas_used)
    out.set("error", result.error)
    return 0 if result.completed else 1


def _cmd_experiments(args: argparse.Namespace, out: OutputWriter) -> int:
    experiments = [
        ("E1", "five-role lifecycle end to end", "bench_e1_lifecycle.py"),
        ("E2", "Fig. 3 hardware configurations",
         "bench_e2_hardware_configs.py"),
        ("E3", "oblivious backend overheads (plain/TEE/SMC/HE)",
         "bench_e3_oblivious_backends.py"),
        ("E4", "backend scaling with model size",
         "bench_e4_backend_scaling.py"),
        ("E5", "gossip vs federated learning",
         "bench_e5_gossip_vs_federated.py"),
        ("E6", "churn and coordinator failure",
         "bench_e6_churn_robustness.py"),
        ("E7", "Shapley: exponential exact, cheap approximations",
         "bench_e7_shapley.py"),
        ("E8", "model-based pricing curve", "bench_e8_pricing.py"),
        ("E9", "data-authenticity detection", "bench_e9_authenticity.py"),
        ("E10", "metadata leakage vs matching precision",
         "bench_e10_discovery.py"),
        ("E11", "DP vs membership inference",
         "bench_e11_privacy_leakage.py"),
        ("E12", "governance gas scalability",
         "bench_e12_governance_scalability.py"),
        ("E13", "ERC-20/721 gas ablation", "bench_e13_token_ablation.py"),
        ("E14", "gossip merge-strategy ablation",
         "bench_e14_merge_ablation.py"),
        ("E15", "gossip message compression", "bench_e15_compression.py"),
        ("E16", "executor fault injection vs quorum",
         "bench_e16_fault_injection.py"),
        ("E17", "executor economics", "bench_e17_economics.py"),
        ("E18", "lifecycle fault recovery sweep",
         "bench_e18_fault_recovery.py"),
        ("E20", "vectorized gossip kernels",
         "bench_e20_kernel_scale.py"),
        ("E21", "sharded batch control plane at sweep scale",
         "bench_e21_batch_scale.py"),
        ("E22", "distributed trace assembly under chaos kills",
         "bench_e22_trace_assembly.py"),
    ]
    out.line("experiment suite (run: pytest benchmarks/ --benchmark-only)\n")
    for exp_id, title, bench in experiments:
        out.line(f"  {exp_id:<4} {title:<48} benchmarks/{bench}")
    out.set("experiments", [
        {"id": exp_id, "title": title, "benchmark": f"benchmarks/{bench}"}
        for exp_id, title, bench in experiments
    ])
    return 0


def _cmd_aggregate(args: argparse.Namespace, out: OutputWriter) -> int:
    from repro.core.aggregates import (
        AggregateKind,
        AggregateResult,
        AggregateSpec,
        aggregate_enclave_entry_point,
    )
    from repro.ml.datasets import make_iot_activity
    from repro.tee.enclave import EnclaveCode, TEEPlatform
    from repro.utils.serialization import canonical_json_bytes

    rng = np.random.default_rng(args.seed)
    data = make_iot_activity(1000, rng)
    half = len(data) // 2
    inputs = {}
    for index, rows in enumerate((range(0, half), range(half, len(data)))):
        payload = canonical_json_bytes([
            {"x": [float(v) for v in data.features[i]],
             "y": float(data.targets[i])}
            for i in rows
        ])
        inputs[f"provider:0x{index:040x}"] = payload

    spec = AggregateSpec(
        kind=AggregateKind(args.kind),
        field_index=args.field,
        bin_edges=(-2.0, -1.0, 0.0, 1.0, 2.0) if args.kind == "histogram"
        else (),
        dp_epsilon=args.dp_epsilon,
        sensitivity=0.01,
    )
    platform = TEEPlatform("cli", rng)
    enclave = platform.launch(EnclaveCode(
        "aggregate", "1", aggregate_enclave_entry_point
    ))
    for label, blob in inputs.items():
        enclave.provision_plain(label, blob)
    enclave.run(agg_spec=spec.to_dict(), noise_seed=args.seed)
    result = AggregateResult.from_output(enclave.extract_output())
    out.line(f"{result.kind.value} over feature {args.field} "
             f"({result.total_samples} samples from "
             f"{len(result.sample_counts)} providers)")
    if result.dp_epsilon is not None:
        out.line("released with differential privacy, "
                 f"epsilon = {result.dp_epsilon}")
    out.line(f"statistic: {result.statistic}")
    out.set("kind", result.kind.value)
    out.set("field", args.field)
    out.set("total_samples", result.total_samples)
    out.set("dp_epsilon", result.dp_epsilon)
    out.set("statistic", result.statistic)
    return 0


def _cmd_gossip(args: argparse.Namespace, out: OutputWriter) -> int:
    """Run one seeded gossip-learning experiment on either engine.

    The population gets an even per-node split of the seeded HAR corpus
    (scales to tens of thousands of nodes, unlike the Dirichlet sampler,
    which needs a huge corpus to satisfy its minimum-partition size).
    Both engines accept the same flags and — by the kernel contract —
    produce byte-identical histories at matched seeds.
    """
    import time as _time

    from repro.ml.datasets import make_iot_activity, train_test_split
    from repro.ml.gossip import GossipConfig, GossipTrainer
    from repro.ml.models import SoftmaxRegressionModel
    from repro.net.churn import ChurnModel

    rng = np.random.default_rng(424242)
    total = args.nodes * args.per_node
    test_size = max(500, min(2000, total // 10))
    data = make_iot_activity(total + test_size, rng)
    train, test = train_test_split(data, test_size / (total + test_size),
                                   rng)
    split_cls = type(train)
    parts = [
        split_cls(
            features=train.features[i * args.per_node:
                                    (i + 1) * args.per_node],
            targets=train.targets[i * args.per_node:
                                  (i + 1) * args.per_node],
        )
        for i in range(args.nodes)
    ]
    churn = None
    if args.availability < 1.0:
        churn = ChurnModel.from_availability(args.availability,
                                             mean_online_s=60.0)

    out.line(f"gossip: {args.nodes} nodes x {args.per_node} samples, "
             f"engine={args.engine}, {args.duration:.0f}s simulated")
    start = _time.perf_counter()
    trainer = GossipTrainer(
        lambda: SoftmaxRegressionModel(6, 5, l2=0.01), parts, test,
        GossipConfig(engine=args.engine, batch_size=args.batch_size),
        seed=args.seed, churn=churn,
    )
    result = trainer.run(args.duration, eval_interval_s=args.eval_interval)
    wall = _time.perf_counter() - start

    for t, accuracy in result.history:
        out.line(f"  t={t:>7.0f}s  accuracy {accuracy:.3f}")
    out.line(f"final accuracy: {result.final_mean_score:.3f} "
             f"(online nodes: {result.final_online_score:.3f})")
    out.line(f"events: {result.events_processed:,} "
             f"(wakes {result.wakes:,}, merges {result.merges:,})")
    out.line(f"traffic: {result.bytes_delivered:,} B delivered, "
             f"{result.messages_delivered:,} messages "
             f"({result.messages_dropped:,} dropped)")
    out.line(f"wall time: {wall:.2f}s "
             f"({result.events_processed / wall:,.0f} events/s)")
    out.set("engine", args.engine)
    out.set("nodes", args.nodes)
    out.set("final_accuracy", result.final_mean_score)
    out.set("history", result.history)
    out.set("events_processed", result.events_processed)
    out.set("bytes_delivered", result.bytes_delivered)
    out.set("messages_dropped", result.messages_dropped)
    out.set("wall_s", wall)
    return 0


def _cmd_trace(args: argparse.Namespace, out: OutputWriter) -> int:
    from repro.core.events import phase_gas_totals, read_jsonl_events

    try:
        events = read_jsonl_events(args.run)
    except OSError as exc:
        out.error(f"cannot read trace {args.run!r}: {exc}")
        return 1
    if not events:
        out.error(f"no events in {args.run!r}")
        return 1

    sessions: list[str] = []
    for event in events:
        if event.session_id and event.session_id not in sessions:
            sessions.append(event.session_id)
    if args.session:
        if args.session not in sessions:
            out.error(f"session {args.session!r} not in trace "
                      f"(have: {', '.join(sessions) or 'none'})")
            return 1
        selected = args.session
    elif sessions:
        selected = sessions[-1]  # default: the most recent session
    else:
        out.error("trace has only platform-level events (no sessions)")
        return 1

    timeline = [e for e in events if e.session_id == selected]
    out.line(f"session {selected} — {len(timeline)} events"
             + (f" (of {len(sessions)} sessions in trace)"
                if len(sessions) > 1 else ""))
    header = (f"{'#':>4}  {'clock':>6}  {'phase':<18} {'event':<26} "
              f"{'gas':>8}  {'block':>5}  actor")
    out.line(header)
    out.line("-" * len(header))
    for event in timeline:
        block = str(event.block_height) if event.block_height >= 0 else ""
        gas = str(event.gas_delta) if event.gas_delta else ""
        actor = event.actor[:14] + "…" if len(event.actor) > 15 else event.actor
        out.line(f"{event.sequence:>4}  {event.sim_clock:>6.1f}  "
                 f"{event.phase:<18} {event.name:<26} {gas:>8}  {block:>5}  "
                 f"{actor}")
    out.line("-" * len(header))
    total_gas = sum(e.gas_delta for e in timeline)
    out.line(f"total gas: {total_gas:,}")
    for phase, gas in phase_gas_totals(timeline).items():
        if gas:
            out.line(f"  {phase:<20} {gas:>10,}")
    out.set("session", selected)
    out.set("events", len(timeline))
    out.set("total_gas", total_gas)
    out.set("gas_by_phase",
            {p: g for p, g in phase_gas_totals(timeline).items() if g})
    return 0


def _load_metrics_registry(source: str, out: OutputWriter):
    """Build a registry from either a snapshot sidecar or a JSONL trace.

    ``*.json`` sources are parsed as ``pds2-metrics-snapshot`` documents
    (the exact registry state at the end of a run); anything else is
    treated as an event trace and replayed into the derived event/gas/span
    metrics.  Returns None after printing an error.
    """
    from repro.errors import TelemetryError
    from repro.telemetry import MetricsRegistry, registry_from_events

    if source.endswith(".json"):
        try:
            with open(source, encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError as exc:
            out.error(f"cannot read snapshot {source!r}: {exc}")
            return None
        except json.JSONDecodeError as exc:
            out.error(f"snapshot {source!r} is not valid JSON: {exc}")
            return None
        try:
            return MetricsRegistry.from_snapshot(data)
        except TelemetryError as exc:
            out.error(f"snapshot {source!r} rejected: {exc}")
            return None
    from repro.core.events import read_jsonl_events

    try:
        events = read_jsonl_events(source)
    except OSError as exc:
        out.error(f"cannot read trace {source!r}: {exc}")
        return None
    if not events:
        out.error(f"no events in {source!r}")
        return None
    return registry_from_events(events)


def _cmd_metrics(args: argparse.Namespace, out: OutputWriter) -> int:
    from repro.telemetry import snapshot, to_prometheus

    registry = _load_metrics_registry(args.source, out)
    if registry is None:
        return 1
    exposition = to_prometheus(registry)
    if not exposition.strip():
        out.error(f"{args.source!r} produced an empty registry")
        return 1
    if out.json_mode:
        out.set("source", args.source)
        out.set("snapshot", snapshot(registry))
    else:
        out.line(exposition.rstrip("\n"))
    return 0


def _cmd_spans(args: argparse.Namespace, out: OutputWriter) -> int:
    """Render spans from an event trace, a span sidecar, or a batch dir.

    The source is sniffed, not flagged: a directory is treated as a batch
    root (all ``spans/*.jsonl`` sidecars merged), a JSONL file whose
    records carry ``"type": "span"`` as one sidecar shard, and anything
    else as a lifecycle event trace carrying ``span.end`` events.
    """
    import os

    from repro.errors import PDS2Error
    from repro.telemetry import (
        read_span_records,
        render_span_tree,
        span_from_record,
        spans_from_events,
    )

    source = args.run
    try:
        if os.path.isdir(source):
            from repro.control import JobsDB

            db = JobsDB.open(source)
            try:
                records = db.span_records()
            finally:
                db.close()
        else:
            records = read_span_records(source)
    except (OSError, PDS2Error) as exc:
        out.error(f"cannot read {source!r}: {exc}")
        return 1

    if any(r.get("type") == "span" for r in records):
        spans = [span_from_record(r) for r in records
                 if r.get("type") == "span"]
    else:
        from repro.core.events import read_jsonl_events

        try:
            events = read_jsonl_events(source)
        except OSError as exc:
            out.error(f"cannot read trace {source!r}: {exc}")
            return 1
        spans = spans_from_events(events)
    if args.session:
        spans = [s for s in spans
                 if s.attributes.get("session_id") == args.session]
    if args.trace_id:
        spans = [s for s in spans
                 if s.attributes.get("trace_id") == args.trace_id]
    if not spans:
        filters = [f"session {args.session!r}" if args.session else "",
                   f"trace {args.trace_id!r}" if args.trace_id else ""]
        applied = " for " + " and ".join(f for f in filters if f) \
            if any(filters) else ""
        out.error(f"no finished spans in {source!r}{applied}"
                  " (was the trace written with span support?)")
        return 1
    out.line(f"{len(spans)} spans from {source}")
    out.line(render_span_tree(spans))
    out.set("trace", source)
    out.set("span_count", len(spans))
    out.set("spans", [span.to_dict() for span in spans])
    return 0


def _cmd_bench(args: argparse.Namespace, out: OutputWriter) -> int:
    from pathlib import Path

    from repro.bench import compare_trajectories, git_sha, run_suite

    try:
        trajectory = run_suite(
            suite=args.suite,
            only=args.only or None,
            progress=out.line,
        )
    except (ValueError, FileNotFoundError) as exc:
        out.error(str(exc))
        return 2

    output = args.output or f"BENCH_{git_sha()}.json"
    try:
        Path(output).write_text(
            json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
        )
    except OSError as exc:
        out.error(f"cannot write {output!r}: {exc}")
        return 2
    out.line(f"trajectory written to {output}")
    out.set("output", output)
    out.set("suite", args.suite)

    exit_code = 0
    errored = sorted(
        experiment_id
        for experiment_id, entry in trajectory["experiments"].items()
        if entry["status"] != "ok"
    )
    if errored:
        out.error("experiment(s) errored: " + ", ".join(errored))
        exit_code = 1

    if args.compare:
        try:
            baseline = json.loads(Path(args.compare).read_text())
        except OSError as exc:
            out.error(f"cannot read baseline {args.compare!r}: {exc}")
            return 2
        except json.JSONDecodeError as exc:
            out.error(f"baseline {args.compare!r} is not valid JSON: {exc}")
            return 2
        try:
            report = compare_trajectories(baseline, trajectory)
        except ValueError as exc:
            out.error(str(exc))
            return 2
        out.line("")
        out.line(f"comparison against {args.compare}:")
        out.line(report.render())
        out.set("comparison_ok", report.ok)
        out.set("regressions",
                [delta.describe() for delta in report.regressions])
        if not report.ok:
            exit_code = 1
    out.set("ok", exit_code == 0)
    return exit_code


def _cmd_profile(args: argparse.Namespace, out: OutputWriter) -> int:
    """Profile one seeded quickstart workload and print flame data.

    ``calls`` mode is the default so two identical invocations in fresh
    processes emit byte-identical collapsed stacks (the determinism tests
    run this command twice via subprocess and diff the output).
    """
    from repro.core import Marketplace, ModelSpec, TrainingSpec, WorkloadSpec
    from repro.ml.datasets import (
        make_iot_activity,
        split_dirichlet,
        train_test_split,
    )
    from repro.storage.semantic import ConceptRequirement, SemanticAnnotation
    from repro.telemetry import (
        Profiler,
        profile_snapshot,
        profile_to_collapsed,
        render_profile_tree,
    )

    rng = np.random.default_rng(args.seed)
    data = make_iot_activity(800, rng)
    train, validation = train_test_split(data, 0.25, rng)
    parts = split_dirichlet(train, args.providers, 1.0, rng, min_samples=15)

    market = Marketplace(seed=args.seed)
    for index, part in enumerate(parts):
        market.add_provider(f"user-{index}", part,
                            SemanticAnnotation("heart_rate",
                                               {"rate_hz": 1.0}))
    consumer = market.add_consumer("consumer", validation=validation)
    for index in range(args.executors):
        market.add_executor(f"executor-{index}")

    spec = WorkloadSpec(
        workload_id="cli-profile",
        requirement=ConceptRequirement("physiological"),
        model=ModelSpec(family="softmax", num_features=6, num_classes=5),
        training=TrainingSpec(steps=60, learning_rate=0.3),
        reward_pool=1_000_000,
        min_providers=max(1, args.providers // 2),
        min_samples=100,
        required_confirmations=min(2, args.executors),
    )
    profiler = Profiler(mode=args.mode, hz=args.hz,
                        call_interval=args.interval)
    with profiler:
        market.run_workload(consumer, spec)
    profile = profiler.result()

    if not profile.total_samples:
        out.error("profiler captured no samples")
        return 1
    if args.format == "collapsed":
        # Raw flamegraph fodder on stdout; everything else would pollute
        # the byte-identical output the determinism tests diff.
        out.line(profile_to_collapsed(profile).rstrip("\n"))
    else:
        out.line(f"{profile.total_samples} samples "
                 f"({profile.attribution_ratio:.1%} span-attributed, "
                 f"mode={profile.mode})")
        out.line(render_profile_tree(profile))
    out.set("profile", profile_snapshot(profile))
    return 0


def _batch_status_lines(out: OutputWriter, index: dict,
                        manifest: dict | None) -> None:
    batch = index.get("batch", {})
    out.line(f"batch status: {batch.get('status', 'pending')}")
    counts = index.get("counts", {})
    for outcome in sorted(counts):
        out.line(f"  {outcome:>18}: {counts[outcome]}")
    if index.get("divergent"):
        out.line(f"  DIVERGENT checkpoints: {len(index['divergent'])}")
    if manifest:
        out.line(f"manifest: {manifest.get('status')} "
                 f"({manifest.get('jobs')} jobs, "
                 f"{manifest.get('worker_deaths')} worker deaths, "
                 f"{manifest.get('requeues')} requeues, "
                 f"{manifest.get('wall_s', 0.0):.1f}s)")
        out.line(f"batch digest: {manifest.get('batch_digest', '')}")


def _batch_run(args: argparse.Namespace, out: OutputWriter) -> int:
    from repro.control import TERMINAL_BATCH_STATES, JobsDB, batch_execute

    last = [-1]

    def progress(done: int, total: int) -> None:
        # One line every ~5% keeps 10k-job sweeps readable.
        step = max(1, total // 20)
        if done == total or done // step > last[0]:
            last[0] = done // step
            out.line(f"  {done}/{total} jobs settled")

    report = batch_execute(
        args.root, workers=args.workers,
        max_attempts=args.max_attempts,
        kill_after=tuple(args.kill_worker_after or ()),
        progress=progress,
    )
    db = JobsDB.open(args.root)
    _batch_status_lines(out, db.load_index(), db.read_manifest())
    db.close()
    out.set("status", report.status)
    out.set("counts", report.counts)
    out.set("batch_digest", report.batch_digest)
    out.set("trace_id", report.trace_id)
    out.set("worker_deaths", report.worker_deaths)
    out.set("requeues", report.requeues)
    out.set("manifest", report.manifest_path)
    ok = report.status in TERMINAL_BATCH_STATES and report.status != "failed"
    return 0 if ok else 1


def _cmd_top(args: argparse.Namespace, out: OutputWriter) -> int:
    """Live (or one-shot) operator view of a batch directory."""
    import dataclasses
    import time as _time

    from repro.control import TERMINAL_BATCH_STATES, ops_snapshot, render_top
    from repro.errors import PDS2Error

    snap = None
    while True:
        try:
            snap = ops_snapshot(args.root,
                                settled_objective=args.slo_settled,
                                p95_objective_s=args.slo_p95)
        except PDS2Error as exc:
            out.error(f"cannot read batch at {args.root!r}: {exc}")
            return 1
        out.line(render_top(snap).rstrip("\n"))
        if args.watch is None or snap.batch_status in TERMINAL_BATCH_STATES:
            break
        out.line("")
        _time.sleep(args.watch)
    out.set("snapshot", dataclasses.asdict(snap))
    return 0


def _batch_trace(args: argparse.Namespace, out: OutputWriter) -> int:
    from repro.control import assemble_batch_trace
    from repro.errors import PDS2Error
    from repro.telemetry import (
        critical_path,
        render_critical_path,
        to_chrome_trace,
    )

    try:
        assembled = assemble_batch_trace(args.root)
    except PDS2Error as exc:
        out.error(f"cannot assemble trace for {args.root!r}: {exc}")
        return 1
    out.line(f"trace {assembled.trace_id}")
    out.line(f"spans: {len(assembled.spans)} "
             f"(lost-worker: {len(assembled.lost)}, "
             f"orphans: {len(assembled.orphans)})")
    out.line(f"completeness: {assembled.completeness:.3f}"
             + (f"  unwitnessed: {', '.join(assembled.unwitnessed)}"
                if assembled.unwitnessed else ""))
    path = critical_path(assembled)
    out.line("")
    out.line(render_critical_path(path).rstrip("\n"))
    out.set("trace_id", assembled.trace_id)
    out.set("span_count", len(assembled.spans))
    out.set("completeness", assembled.completeness)
    out.set("orphans", len(assembled.orphans))
    out.set("lost_workers", len(assembled.lost))
    out.set("unwitnessed", assembled.unwitnessed)
    out.set("critical_path", {"job_id": path.job_id,
                              "total_sim": path.total_sim,
                              "chain": path.chain})
    if args.chrome:
        payload = to_chrome_trace(assembled)
        with open(args.chrome, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
            fh.write("\n")
        out.line(f"chrome trace written to {args.chrome} "
                 "(load at chrome://tracing or https://ui.perfetto.dev)")
        out.set("chrome", args.chrome)
    # Orphaned spans mean the causal story has holes; fail loudly so the
    # CI trace-smoke job catches it.
    return 0 if not assembled.orphans else 1


def _cmd_batch(args: argparse.Namespace, out: OutputWriter) -> int:
    from repro.control import JobSpec, JobsDB, submit_batch

    if args.batch_command == "trace":
        return _batch_trace(args, out)

    if args.batch_command == "submit":
        specs = []
        for index in range(args.jobs):
            faulted = (args.fault_rate > 0
                       and index % max(1, args.fault_every) == 0)
            specs.append(JobSpec(
                job_id=f"job-{index:05d}",
                seed=args.seed + index,
                workload=args.workload,
                fault_rate=args.fault_rate if faulted else 0.0,
            ))
        submit_batch(args.root, specs)
        out.line(f"submitted {len(specs)} jobs to {args.root}")
        out.set("root", args.root)
        out.set("jobs", len(specs))
        if args.no_execute:
            out.line(f"execute with: python -m repro batch resume "
                     f"{args.root}")
            return 0
        return _batch_run(args, out)
    if args.batch_command == "resume":
        return _batch_run(args, out)
    if args.batch_command == "status":
        db = JobsDB.open(args.root)
        _batch_status_lines(out, db.load_index(), db.read_manifest())
        index = db.load_index()
        out.set("batch", index.get("batch", {}))
        out.set("counts", index.get("counts", {}))
        out.set("divergent", index.get("divergent", []))
        db.close()
        return 0
    if args.batch_command == "kill":
        db = JobsDB.open(args.root)
        db.request_kill("cli")
        db.close()
        out.line(f"kill requested for {args.root} (the running coordinator "
                 f"aborts at its next poll; resume clears it)")
        return 0
    out.error(f"unknown batch command {args.batch_command!r}")
    return 2


def _chain_run(args: argparse.Namespace, out: OutputWriter) -> int:
    """Mine a deterministic synthetic workload into a run directory."""
    import numpy as np

    from repro.chain.audit import install_state_corruption
    from repro.chain.blockchain import Blockchain, Wallet
    from repro.chain.consensus import ProofOfAuthority
    from repro.chain.observe import ChainRunRecorder

    rng = np.random.default_rng(args.seed)
    consensus = ProofOfAuthority.with_generated_validators(1, rng)
    chain = Blockchain(consensus, verify_mode="mined",
                       execution=args.execution)
    recorder = ChainRunRecorder(args.root)
    recorder.attach(chain)
    wallets = [Wallet.generate(chain, rng, f"w{index}")
               for index in range(args.wallets)]
    for wallet in wallets:
        chain.state.credit(wallet.address, 10**12)
    # A funded bystander that never transacts: under a corrupt_state fault
    # it is a candidate victim, and the forensic bundle can then name it.
    chain.state.credit("0x" + "b7" * 20, 10**9)
    if args.corrupt_block is not None:
        install_state_corruption(chain, args.corrupt_block, seed=args.seed)
    token = wallets[0].deploy_and_mine("erc20", initial_supply=10**9)
    for wallet in wallets[1:]:
        wallets[0].call(token, "transfer", recipient=wallet.address,
                        amount=10**6)
    chain.mine_block()
    count = len(wallets)
    for block in range(args.blocks):
        # Disjoint transfer pairs so the parallel engine has real groups;
        # every third block goes through the token for a mixed tx profile.
        offset = 1 + int(rng.integers(1, max(2, count - 1)))
        for index, wallet in enumerate(wallets):
            partner = wallets[(index + offset) % count]
            if partner is wallet:
                continue
            if block % 3 == 2:
                wallet.call(token, "transfer", recipient=partner.address,
                            amount=1 + int(rng.integers(1, 50)))
            else:
                wallet.transfer(partner.address,
                                1000 + int(rng.integers(0, 1000)))
        chain.mine_block()
    recorder.close(chain)
    violations = (len(chain.auditor.violations)
                  if chain.auditor is not None else 0)
    out.line(f"mined {chain.height} blocks into {args.root} "
             f"({args.execution} execution)")
    out.line(f"audit: {violations} violation(s) over "
             f"{chain.auditor.blocks_checked} blocks")
    out.set("root", args.root)
    out.set("blocks", chain.height)
    out.set("violations", violations)
    return 0


def _chain_top(args: argparse.Namespace, out: OutputWriter) -> int:
    """Render the chain ops panel from a (possibly live) run directory."""
    import time as _time

    from repro.chain.observe import read_chain_run, render_chain_top

    data = None
    while True:
        data = read_chain_run(args.root)
        out.line(render_chain_top(data["records"], data["attribution"],
                                  data["audit"]).rstrip("\n"))
        # audit.json only appears when the run finalizes — the chain
        # equivalent of a terminal batch state for --watch.
        if args.watch is None or data["audit"] is not None:
            break
        out.line("")
        _time.sleep(args.watch)
    out.set("blocks", len(data["records"]))
    out.set("attribution", data["attribution"])
    return 0


def _chain_audit(args: argparse.Namespace, out: OutputWriter) -> int:
    """Report audit verdicts for a finished run; nonzero on violations."""
    import os as _os

    from repro.chain.observe import read_chain_run

    data = read_chain_run(args.root)
    audit = data["audit"]
    if audit is None:
        out.error(f"no audit report in {args.root!r} (run not finalized, "
                  "or the auditor was disabled)")
        return 2
    checked = audit.get("blocks_checked", 0)
    violations = audit.get("violations", [])
    out.line(f"audit: {checked} blocks checked, "
             f"{len(violations)} violation(s)")
    for violation in violations:
        out.line(f"  block {violation.get('block')} "
                 f"[{violation.get('kind')}] {violation.get('detail')}")
    forensics = _os.path.join(args.root, "forensics")
    if violations and _os.path.isdir(forensics):
        bundles = sorted(_os.listdir(forensics))
        out.line(f"forensic bundles: "
                 f"{', '.join(_os.path.join(forensics, b) for b in bundles)}")
    out.set("blocks_checked", checked)
    out.set("violations", violations)
    return 1 if violations else 0


def _cmd_chain(args: argparse.Namespace, out: OutputWriter) -> int:
    if args.chain_command == "run":
        return _chain_run(args, out)
    if args.chain_command == "top":
        return _chain_top(args, out)
    if args.chain_command == "audit":
        return _chain_audit(args, out)
    out.error(f"unknown chain command {args.chain_command!r}")
    return 2


#: Scenario names accepted by `repro faults` (mirrors
#: ``repro.core.resilience.SCENARIOS``; a test asserts the two match).
FAULT_SCENARIOS = (
    "chain-flaky",
    "churn-provider",
    "crash-execute",
    "crash-register",
    "crash-submit",
    "drop-provider",
    "drop-submission",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PDS2 decentralized data marketplace (ICDE 2021) "
                    "reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_json_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--json", action="store_true",
                         help="emit one JSON document instead of text")

    info = subparsers.add_parser("info", help="package summary")
    add_json_flag(info)
    info.set_defaults(handler=_cmd_info)

    quickstart = subparsers.add_parser(
        "quickstart", help="run one workload end to end"
    )
    quickstart.add_argument("--providers", type=int, default=8)
    quickstart.add_argument("--executors", type=int, default=2)
    quickstart.add_argument("--seed", type=int, default=42)
    quickstart.add_argument("--dp-epsilon", type=float, default=None)
    quickstart.add_argument("--trace", default=None, metavar="PATH",
                            help="write the lifecycle event trace to a "
                                 "JSONL file (replay with `repro trace`) "
                                 "plus a PATH.metrics.json snapshot")
    add_json_flag(quickstart)
    quickstart.set_defaults(handler=_cmd_quickstart)

    experiments = subparsers.add_parser(
        "experiments", help="list the experiment suite"
    )
    add_json_flag(experiments)
    experiments.set_defaults(handler=_cmd_experiments)

    faults = subparsers.add_parser(
        "faults", help="run a workload under an injected fault scenario"
    )
    # Kept in sync with repro.core.resilience.SCENARIOS (tested); listing
    # them statically keeps `repro info` etc. free of the core import.
    faults.add_argument("scenario", choices=FAULT_SCENARIOS,
                        help="named fault scenario to arm")
    faults.add_argument("--providers", type=int, default=3)
    faults.add_argument("--executors", type=int, default=3)
    faults.add_argument("--seed", type=int, default=42)
    faults.add_argument("--no-recovery", action="store_true",
                        help="run the fail-fast baseline engine (no retry/"
                             "re-match/degrade); injected faults are "
                             "terminal")
    faults.add_argument("--trace", default=None, metavar="PATH",
                        help="write the lifecycle event trace to a JSONL "
                             "file plus a PATH.metrics.json snapshot")
    add_json_flag(faults)
    faults.set_defaults(handler=_cmd_faults)

    aggregate = subparsers.add_parser(
        "aggregate", help="run a statistical aggregate workload in a TEE"
    )
    aggregate.add_argument("--kind", default="mean",
                           choices=["mean", "sum", "count", "histogram",
                                    "quantile"])
    aggregate.add_argument("--field", type=int, default=0)
    aggregate.add_argument("--dp-epsilon", type=float, default=None)
    aggregate.add_argument("--seed", type=int, default=7)
    add_json_flag(aggregate)
    aggregate.set_defaults(handler=_cmd_aggregate)

    gossip = subparsers.add_parser(
        "gossip", help="run one gossip-learning experiment on either engine"
    )
    gossip.add_argument("--nodes", type=int, default=64,
                        help="population size (the kernel engine handles "
                             "tens of thousands)")
    gossip.add_argument("--per-node", type=int, default=24,
                        help="training samples per node")
    gossip.add_argument("--duration", type=float, default=300.0,
                        help="simulated seconds")
    gossip.add_argument("--eval-interval", type=float, default=100.0,
                        help="accuracy checkpoint spacing in simulated "
                             "seconds")
    gossip.add_argument("--engine", choices=["objects", "kernel"],
                        default="kernel",
                        help="per-node object simulation or the vectorized "
                             "flat-array kernels (byte-identical results)")
    gossip.add_argument("--batch-size", type=int, default=8)
    gossip.add_argument("--availability", type=float, default=1.0,
                        help="node availability in (0, 1]; below 1 enables "
                             "the churn model")
    gossip.add_argument("--seed", type=int, default=0)
    add_json_flag(gossip)
    gossip.set_defaults(handler=_cmd_gossip)

    trace = subparsers.add_parser(
        "trace", help="replay a recorded lifecycle event trace"
    )
    trace.add_argument("run", help="path to a JSONL trace written by "
                                   "`repro quickstart --trace`")
    trace.add_argument("--session", default=None,
                       help="session id to replay (default: the last "
                            "session in the trace)")
    add_json_flag(trace)
    trace.set_defaults(handler=_cmd_trace)

    metrics = subparsers.add_parser(
        "metrics", help="render run metrics in Prometheus text format"
    )
    metrics.add_argument("source",
                         help="a *.metrics.json snapshot written by "
                              "`repro quickstart --trace`, or a JSONL "
                              "trace to replay into derived metrics")
    add_json_flag(metrics)
    metrics.set_defaults(handler=_cmd_metrics)

    spans = subparsers.add_parser(
        "spans", help="render the span tree recorded in a trace"
    )
    spans.add_argument("run", help="a JSONL event trace (from `repro "
                                   "quickstart --trace`), a span sidecar "
                                   "(spans/<shard>.jsonl), or a batch "
                                   "directory (all sidecars merged)")
    spans.add_argument("--session", default=None,
                       help="only spans of one session id")
    spans.add_argument("--trace", dest="trace_id", default=None,
                       metavar="TRACE_ID",
                       help="only spans of one distributed trace id")
    add_json_flag(spans)
    spans.set_defaults(handler=_cmd_spans)

    top = subparsers.add_parser(
        "top", help="live ops view of a batch: workers, heartbeats, "
                    "outcomes, SLO burn"
    )
    top.add_argument("root", help="batch directory (running or settled)")
    top.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                     help="refresh every SECONDS until the batch reaches "
                          "a terminal state (default: print once)")
    top.add_argument("--slo-settled", type=float, default=0.95,
                     metavar="FRACTION",
                     help="settled-fraction objective for the burn gauge")
    top.add_argument("--slo-p95", type=float, default=5.0,
                     metavar="SECONDS",
                     help="p95 job wall-time objective for the burn gauge")
    add_json_flag(top)
    top.set_defaults(handler=_cmd_top)

    bench = subparsers.add_parser(
        "bench", help="run the benchmark suite into a BENCH trajectory"
    )
    bench.add_argument("--suite", choices=["quick", "full"],
                       default="quick",
                       help="quick = reduced parameterizations for the CI "
                            "gate; full = the complete experiment sweep")
    bench.add_argument("--only", action="append", metavar="ID",
                       help="run only these experiment ids (repeatable, "
                            "e.g. --only E1 --only E12)")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="diff the run against a committed BENCH_*.json "
                            "baseline; exit nonzero on regression")
    bench.add_argument("-o", "--output", default=None, metavar="PATH",
                       help="trajectory output path (default: "
                            "BENCH_<git-sha>.json)")
    add_json_flag(bench)
    bench.set_defaults(handler=_cmd_bench)

    profile = subparsers.add_parser(
        "profile", help="sampling-profile one workload into flame data"
    )
    profile.add_argument("--mode", choices=["calls", "sim", "wall"],
                         default="calls",
                         help="sampling trigger (calls = deterministic, "
                              "the default)")
    profile.add_argument("--interval", type=int, default=64,
                         help="calls mode: sample every Nth profile event")
    profile.add_argument("--hz", type=float, default=97.0,
                         help="wall/sim mode: sampling rate")
    profile.add_argument("--format", choices=["collapsed", "tree"],
                         default="tree",
                         help="collapsed = flamegraph.pl input lines; "
                              "tree = indented terminal view")
    profile.add_argument("--providers", type=int, default=6)
    profile.add_argument("--executors", type=int, default=2)
    profile.add_argument("--seed", type=int, default=42)
    add_json_flag(profile)
    profile.set_defaults(handler=_cmd_profile)

    batch = subparsers.add_parser(
        "batch", help="submit and drive a sharded, crash-resumable "
                      "batch of workload sessions"
    )
    batch_sub = batch.add_subparsers(dest="batch_command", required=True)

    def add_execute_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--workers", type=int, default=4,
                         help="worker processes to shard across")
        sub.add_argument("--max-attempts", type=int, default=3,
                         help="attempts per job before it counts as lost")
        sub.add_argument("--kill-worker-after", type=int, action="append",
                         metavar="N",
                         help="chaos hook: SIGKILL one busy worker after "
                              "the N-th result lands (repeatable; used by "
                              "the CI batch smoke)")

    submit = batch_sub.add_parser(
        "submit", help="create a batch of job specs (and run it)"
    )
    submit.add_argument("root", help="batch directory to create")
    submit.add_argument("--jobs", type=int, default=100)
    submit.add_argument("--seed", type=int, default=0,
                        help="job i runs with seed SEED+i")
    submit.add_argument("--workload", default="ml-train",
                        help="registered workload handler")
    submit.add_argument("--fault-rate", type=float, default=0.0,
                        help="per-actor fault probability for faulted jobs")
    submit.add_argument("--fault-every", type=int, default=1,
                        help="arm faults on every N-th job only")
    submit.add_argument("--no-execute", action="store_true",
                        help="only write the specs; run later with "
                             "`repro batch resume`")
    add_execute_flags(submit)
    add_json_flag(submit)
    submit.set_defaults(handler=_cmd_batch)

    resume = batch_sub.add_parser(
        "resume", help="run (or continue) every unfinished job"
    )
    resume.add_argument("root", help="existing batch directory")
    add_execute_flags(resume)
    add_json_flag(resume)
    resume.set_defaults(handler=_cmd_batch)

    status = batch_sub.add_parser(
        "status", help="show batch progress from the journal"
    )
    status.add_argument("root", help="existing batch directory")
    add_json_flag(status)
    status.set_defaults(handler=_cmd_batch)

    kill = batch_sub.add_parser(
        "kill", help="write the KILL sentinel: abort the running batch"
    )
    kill.add_argument("root", help="existing batch directory")
    add_json_flag(kill)
    kill.set_defaults(handler=_cmd_batch)

    batch_trace = batch_sub.add_parser(
        "trace", help="assemble the distributed trace: completeness, "
                      "lost workers, critical path"
    )
    batch_trace.add_argument("root", help="existing batch directory")
    batch_trace.add_argument("--chrome", default=None, metavar="PATH",
                             help="also write Chrome trace-event JSON "
                                  "(chrome://tracing / ui.perfetto.dev)")
    add_json_flag(batch_trace)
    batch_trace.set_defaults(handler=_cmd_batch)

    chain_cmd = subparsers.add_parser(
        "chain", help="run, watch, and audit the blockchain substrate's "
                      "ops plane"
    )
    chain_sub = chain_cmd.add_subparsers(dest="chain_command", required=True)

    chain_run = chain_sub.add_parser(
        "run", help="mine a deterministic synthetic workload into a "
                    "recorded run directory"
    )
    chain_run.add_argument("root", help="run directory to create")
    chain_run.add_argument("--blocks", type=int, default=12,
                           help="workload blocks to mine (plus setup)")
    chain_run.add_argument("--wallets", type=int, default=8)
    chain_run.add_argument("--seed", type=int, default=0)
    chain_run.add_argument("--execution", choices=("serial", "parallel"),
                           default="parallel")
    chain_run.add_argument("--corrupt-block", type=int, default=None,
                           metavar="N",
                           help="arm a corrupt_state fault right after "
                                "block N seals (auditor must catch it)")
    add_json_flag(chain_run)
    chain_run.set_defaults(handler=_cmd_chain)

    chain_top = chain_sub.add_parser(
        "top", help="ops panel: utilization, fees, mempool, lanes, "
                    "serial causes, audit verdict"
    )
    chain_top.add_argument("root", help="chain run directory")
    chain_top.add_argument("--watch", type=float, default=None,
                           metavar="SECONDS",
                           help="refresh every SECONDS until the run "
                                "finalizes (default: print once)")
    add_json_flag(chain_top)
    chain_top.set_defaults(handler=_cmd_chain)

    chain_audit = chain_sub.add_parser(
        "audit", help="report invariant-audit verdicts for a finished "
                      "run (exit 1 on violations)"
    )
    chain_audit.add_argument("root", help="chain run directory")
    add_json_flag(chain_audit)
    chain_audit.set_defaults(handler=_cmd_chain)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    out = OutputWriter(json_mode=getattr(args, "json", False))
    try:
        code = args.handler(args, out)
        out.emit()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly, and hand
        # stdout a dead fd so interpreter shutdown doesn't re-raise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
