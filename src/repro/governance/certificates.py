"""Participation certificates (paper Section II-D).

When a provider sends data to an executor it attaches a certificate
"confirming that they have indeed accepted to participate in the workload".
The executor forwards the certificate hash to the governance layer, which
uses it to (a) prove the executor was granted access and (b) track provider
contributions for rewarding.

A certificate binds: workload id, provider address, executor address, the
Merkle root of the submitted data items, the item count, and a timestamp —
all signed by the provider's account key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ecdsa import PrivateKey, PublicKey, Signature
from repro.crypto.hashing import hash_object
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.errors import CertificateError
from repro.utils.serialization import canonical_json_bytes


@dataclass(frozen=True)
class ParticipationCertificate:
    """A provider's signed consent to use specific data in one workload."""

    workload_id: str
    provider: str
    executor: str
    data_root: bytes
    item_count: int
    issued_at: float
    provider_public_key: PublicKey
    signature: Signature

    def signed_payload(self) -> dict:
        return {
            "workload_id": self.workload_id,
            "provider": self.provider,
            "executor": self.executor,
            "data_root": self.data_root,
            "item_count": self.item_count,
            "issued_at": self.issued_at,
        }

    @property
    def certificate_hash(self) -> bytes:
        """The identifier recorded on-chain."""
        return hash_object(self.signed_payload())

    def verify(self) -> None:
        """Check signature validity and key/address consistency."""
        if self.item_count < 1:
            raise CertificateError("certificate covers no data items")
        if self.provider_public_key.address != self.provider:
            raise CertificateError(
                "certificate key does not control the provider address"
            )
        message = canonical_json_bytes(self.signed_payload())
        if not self.provider_public_key.verify(message, self.signature):
            raise CertificateError("certificate signature invalid")

    def verify_item(self, item: bytes, proof: MerkleProof) -> None:
        """Check one data item is covered by this certificate's consent."""
        MerkleTree.require_proof(self.data_root, item, proof,
                                 self.item_count)


def issue_certificate(provider_key: PrivateKey, workload_id: str,
                      executor: str, data_items: list[bytes],
                      issued_at: float) -> ParticipationCertificate:
    """Provider-side: sign consent over an exact set of data items.

    The Merkle root pins the certificate to *these* bytes: an executor
    substituting or adding items can no longer match the root.
    """
    if not data_items:
        raise CertificateError("cannot certify an empty data set")
    tree = MerkleTree(data_items)
    payload = {
        "workload_id": workload_id,
        "provider": provider_key.address,
        "executor": executor,
        "data_root": tree.root,
        "item_count": len(data_items),
        "issued_at": issued_at,
    }
    signature = provider_key.sign(canonical_json_bytes(payload))
    return ParticipationCertificate(
        workload_id=workload_id,
        provider=provider_key.address,
        executor=executor,
        data_root=tree.root,
        item_count=len(data_items),
        issued_at=issued_at,
        provider_public_key=provider_key.public_key,
        signature=signature,
    )
