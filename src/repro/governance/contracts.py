"""Governance-layer smart contracts (paper Sections II-C, II-D, III-A).

Three contracts implement the on-chain half of PDS2:

* :class:`ActorRegistry` — "registration of all actors, by using their
  blockchain addresses";
* :class:`DataRegistry` — "registration of datasets ... by means of their
  hashes", optionally minting an ERC-721 deed per dataset;
* :class:`WorkloadContract` — "a separate smart contract instance is
  deployed for managing the lifetime of each workload and validate all of
  its steps": it escrows the reward, gathers executor registrations and
  provider participation certificates, gates execution on the consumer's
  preconditions, collects quorum-confirmed results, and pays out.

The workload lifecycle state machine::

    OPEN --start_execution()--> EXECUTING --quorum of results--> COMPLETE
      \\--cancel() (consumer)--> CANCELLED
"""

from __future__ import annotations

from repro.chain.contract import Contract

STATE_OPEN = "open"
STATE_EXECUTING = "executing"
STATE_COMPLETE = "complete"
STATE_CANCELLED = "cancelled"

#: Basis points denominator for share arithmetic.
BPS = 10_000


class ActorRegistry(Contract):
    """On-chain directory of marketplace participants and their roles."""

    ROLES = ("provider", "consumer", "executor")

    def setup(self) -> None:
        self.swrite(0, "actor_count")

    def register(self, role: str) -> None:
        """Register the caller under ``role`` (idempotent per role)."""
        self.require(role in self.ROLES, f"unknown role {role!r}")
        sender = self.ctx.sender
        roles = self.sread("roles", sender, default=[])
        if role not in roles:
            if not roles:
                self.swrite(self.sread("actor_count") + 1, "actor_count")
            self.swrite(sorted(roles + [role]), "roles", sender)
            self.emit("ActorRegistered", actor=sender, role=role)

    def roles_of(self, actor: str) -> list:
        """Roles the actor registered (empty when unknown)."""
        return self.sread("roles", actor, default=[])

    def has_role(self, actor: str, role: str) -> bool:
        """True when ``actor`` registered as ``role``."""
        return role in self.sread("roles", actor, default=[])

    def actor_count(self) -> int:
        """Number of distinct registered actors."""
        return self.sread("actor_count")


class DataRegistry(Contract):
    """On-chain index of dataset commitments (hashes only, never data)."""

    def setup(self, deed_token: str | None = None) -> None:
        """``deed_token``: optional ERC-721 address to mint deeds from.

        The token's minter must be set to this registry's address.
        """
        self.swrite(deed_token, "deed_token")
        self.swrite(0, "dataset_count")

    def register_dataset(self, record_id: str, content_hash: str,
                         annotation_hash: str, size_bytes: int) -> int:
        """Commit a dataset; returns the deed token id (-1 when no token).

        The caller becomes the registered owner; the content hash pins the
        exact bytes; the annotation hash commits to the semantic metadata
        without revealing it on-chain.
        """
        self.require(size_bytes >= 0, "size must be non-negative")
        self.require(
            self.sread("datasets", record_id, default=None) is None,
            f"dataset {record_id!r} already registered",
        )
        sender = self.ctx.sender
        entry = {
            "owner": sender,
            "content_hash": content_hash,
            "annotation_hash": annotation_hash,
            "size_bytes": size_bytes,
            "registered_in_block": self.ctx.block.number,
            "deed_id": -1,
        }
        deed_token = self.sread("deed_token")
        if deed_token is not None:
            deed_id = self.ctx.call(
                deed_token, "mint", recipient=sender,
                uri=f"pds2://dataset/{record_id}", content_hash=content_hash,
            )
            entry["deed_id"] = deed_id
        self.swrite(entry, "datasets", record_id)
        self.swrite(self.sread("dataset_count") + 1, "dataset_count")
        self.emit("DatasetRegistered", record_id=record_id, owner=sender,
                  content_hash=content_hash, deed_id=entry["deed_id"])
        return entry["deed_id"]

    def revoke_dataset(self, record_id: str) -> None:
        """Owner-only: withdraw a dataset from the marketplace index."""
        entry = self.sread("datasets", record_id, default=None)
        self.require(entry is not None, f"unknown dataset {record_id!r}")
        self.require(entry["owner"] == self.ctx.sender,
                     "only the owner may revoke a dataset")
        self.sdelete("datasets", record_id)
        self.swrite(self.sread("dataset_count") - 1, "dataset_count")
        self.emit("DatasetRevoked", record_id=record_id,
                  owner=self.ctx.sender)

    def dataset_info(self, record_id: str) -> dict:
        """The stored commitment for one dataset."""
        entry = self.sread("datasets", record_id, default=None)
        self.require(entry is not None, f"unknown dataset {record_id!r}")
        return entry

    def dataset_count(self) -> int:
        """Number of currently registered datasets."""
        return self.sread("dataset_count")


class WorkloadContract(Contract):
    """Per-workload escrow, participation ledger and payout engine."""

    def audit_invariants(self, state) -> list[str]:
        """Escrow backing: unsettled workloads must hold their pool.

        While a workload is OPEN or EXECUTING the escrowed reward has not
        been paid out, so the contract account (native pool) or the reward
        token's ledger (ERC-20 pool) must still hold at least the recorded
        ``escrow``.  Settled states release the pool, so the slot carries
        no obligation there.
        """
        if self.storage.get("state") not in (STATE_OPEN, STATE_EXECUTING):
            return []
        escrow = self.storage.get("escrow", 0)
        if escrow < 0:
            return [f"negative escrow {escrow}"]
        if escrow == 0:
            return []
        token = self.storage.get("reward_token")
        if token is None:
            held = state.balances.get(self.address, 0)
            if held < escrow:
                return [
                    f"native escrow underfunded: holds {held}, "
                    f"owes {escrow}"
                ]
            return []
        token_contract = state.contracts.get(token)
        if token_contract is None:
            return [f"reward token {token} does not exist"]
        held = token_contract.storage.get("balances", {}).get(self.address, 0)
        if held < escrow:
            return [
                f"token escrow underfunded: holds {held} of {token}, "
                f"owes {escrow}"
            ]
        return []

    def setup(self, spec_hash: str, code_measurement: str,
              min_providers: int = 1, min_samples: int = 1,
              infra_share_bps: int = 1000,
              required_confirmations: int = 1,
              deadline_blocks: int = 0,
              reward_token: str | None = None,
              reward_amount: int = 0) -> None:
        """Deploy one workload.

        The deploying transaction's value becomes the escrowed reward pool.
        ``code_measurement`` is the hex enclave measurement providers will
        demand at attestation time; recording it on-chain is what binds the
        off-chain TEE check to this contract.

        ``deadline_blocks`` > 0 sets an expiry: if the workload has not
        completed within that many blocks of deployment, *anyone* may call
        :meth:`expire` to refund the consumer — so escrowed funds can never
        be stranded by absent providers or executors.

        Rewards are denominated either in the native currency (default:
        the deploy transaction's value is the pool) or in an ERC-20 token
        (Section III-A's choice): pass ``reward_token`` and
        ``reward_amount``, after approving this contract's address for
        that amount — setup pulls the tokens into escrow via
        ``transfer_from``.
        """
        self.require(min_providers >= 1, "need at least one provider")
        self.require(min_samples >= 1, "need at least one sample")
        self.require(0 <= infra_share_bps < BPS, "bad infra share")
        self.require(required_confirmations >= 1,
                     "need at least one confirmation")
        self.require(deadline_blocks >= 0, "bad deadline")
        self.swrite(self.ctx.block.number, "created_in_block")
        self.swrite(deadline_blocks, "deadline_blocks")
        self.swrite(self.ctx.sender, "consumer")
        self.swrite(spec_hash, "spec_hash")
        self.swrite(code_measurement, "code_measurement")
        self.swrite(min_providers, "min_providers")
        self.swrite(min_samples, "min_samples")
        self.swrite(infra_share_bps, "infra_share_bps")
        self.swrite(required_confirmations, "required_confirmations")
        self.swrite(reward_token, "reward_token")
        if reward_token is not None:
            self.require(reward_amount > 0,
                         "token rewards need a positive amount")
            self.require(self.ctx.value == 0,
                         "choose native OR token rewards, not both")
            self.ctx.call(reward_token, "transfer_from",
                          owner=self.ctx.sender, recipient=self.address,
                          amount=reward_amount)
            self.swrite(reward_amount, "escrow")
        else:
            self.swrite(self.ctx.value, "escrow")
        self.swrite(STATE_OPEN, "state")
        self.swrite([], "executors")
        self.swrite({}, "provider_samples")
        self.swrite({}, "provider_executors")
        self.swrite([], "certificates")
        self.swrite({}, "result_votes")
        self.emit("WorkloadCreated", consumer=self.ctx.sender,
                  spec_hash=spec_hash, escrow=self.sread("escrow"),
                  reward_token=reward_token,
                  code_measurement=code_measurement)

    # -- phase 1: executor registration ---------------------------------------

    def register_executor(self, claimed_measurement: str) -> None:
        """An executor opts in, claiming it runs the workload's code.

        The claim must match the recorded measurement; providers verify the
        *actual* attestation quote off-chain before sending data.
        """
        self._require_state(STATE_OPEN)
        self.require(
            claimed_measurement == self.sread("code_measurement"),
            "executor claims a different code measurement",
        )
        executors = self.sread("executors")
        sender = self.ctx.sender
        self.require(sender not in executors, "executor already registered")
        self.swrite(executors + [sender], "executors")
        self.emit("ExecutorRegistered", executor=sender)

    # -- phase 2: participation -------------------------------------------------

    def submit_participation(self, provider: str, certificate_hash: str,
                             data_root: str, item_count: int) -> None:
        """A registered executor records one provider's certified data.

        Mirrors Fig. 2: executors "register their own participation ...
        also submit[ting] the certificates from all the participants who
        sent data to them".
        """
        self._require_state(STATE_OPEN)
        sender = self.ctx.sender
        self.require(sender in self.sread("executors"),
                     "only registered executors may submit participation")
        self.require(item_count >= 1, "certificate covers no items")
        certificates = self.sread("certificates")
        self.require(certificate_hash not in certificates,
                     "certificate already submitted")
        samples = self.sread("provider_samples")
        mapping = self.sread("provider_executors")
        samples[provider] = samples.get(provider, 0) + item_count
        executors_of = mapping.get(provider, [])
        if sender not in executors_of:
            mapping[provider] = executors_of + [sender]
        self.swrite(samples, "provider_samples")
        self.swrite(mapping, "provider_executors")
        self.swrite(certificates + [certificate_hash], "certificates")
        self.emit("ParticipationRecorded", provider=provider,
                  executor=sender, certificate_hash=certificate_hash,
                  data_root=data_root, item_count=item_count)

    # -- phase 3: execution gate ----------------------------------------------------

    def conditions_met(self) -> bool:
        """True when the consumer's preconditions are satisfied."""
        samples = self.sread("provider_samples")
        total = sum(samples.values())
        return (len(samples) >= self.sread("min_providers")
                and total >= self.sread("min_samples"))

    def start_execution(self) -> None:
        """Anyone may trip the gate once the preconditions hold."""
        self._require_state(STATE_OPEN)
        self.require(self.conditions_met(),
                     "workload preconditions are not met")
        self.swrite(STATE_EXECUTING, "state")
        self.emit("ExecutionStarted",
                  providers=len(self.sread("provider_samples")),
                  executors=len(self.sread("executors")))

    # -- phase 4: results and payout ---------------------------------------------------

    def submit_result(self, result_hash: str,
                      provider_weights_bps: dict) -> None:
        """A participating executor votes for a result.

        ``provider_weights_bps`` maps provider addresses to payout weights
        in basis points (executors compute them inside the enclave, e.g.
        from Shapley values).  A vote is (result_hash, weights); payout
        happens when ``required_confirmations`` identical votes accumulate.
        """
        self._require_state(STATE_EXECUTING)
        sender = self.ctx.sender
        self.require(sender in self.sread("executors"),
                     "only registered executors may submit results")
        samples = self.sread("provider_samples")
        for provider, weight in provider_weights_bps.items():
            self.require(provider in samples,
                         f"weight for non-participating provider {provider}")
            self.require(isinstance(weight, int) and weight >= 0,
                         "weights must be non-negative integers")
        self.require(sum(provider_weights_bps.values()) == BPS,
                     "weights must sum to 10000 bps")
        votes = self.sread("result_votes")
        vote_key = result_hash + ":" + repr(sorted(
            provider_weights_bps.items()
        ))
        entry = votes.get(vote_key, {"executors": [], "weights": {}})
        self.require(sender not in entry["executors"],
                     "executor already voted for this result")
        entry["executors"] = entry["executors"] + [sender]
        entry["weights"] = dict(provider_weights_bps)
        entry["result_hash"] = result_hash
        votes[vote_key] = entry
        self.swrite(votes, "result_votes")
        self.emit("ResultSubmitted", executor=sender,
                  result_hash=result_hash,
                  confirmations=len(entry["executors"]))
        if len(entry["executors"]) >= self.sread("required_confirmations"):
            self._finalize(entry)

    def _pay(self, recipient: str, amount: int) -> None:
        """Move reward value: native currency or the ERC-20 pool token."""
        token = self.sread("reward_token")
        if token is None:
            self.ctx.transfer(recipient, amount)
        else:
            self.ctx.call(token, "transfer", recipient=recipient,
                          amount=amount)

    def _finalize(self, winning_vote: dict) -> None:
        """Pay everyone and complete the workload."""
        escrow = self.sread("escrow")
        infra_pool = escrow * self.sread("infra_share_bps") // BPS
        provider_pool = escrow - infra_pool
        weights = winning_vote["weights"]
        # Largest-remainder split of the provider pool by bps weights.
        providers = sorted(weights)
        paid = 0
        amounts: dict[str, int] = {}
        remainders: list[tuple[int, str]] = []
        for provider in providers:
            exact = provider_pool * weights[provider]
            amount = exact // BPS
            amounts[provider] = amount
            paid += amount
            remainders.append((exact % BPS, provider))
        leftover = provider_pool - paid
        for _, provider in sorted(remainders,
                                  key=lambda item: (-item[0], item[1])):
            if leftover <= 0:
                break
            amounts[provider] += 1
            leftover -= 1
        for provider in providers:
            if amounts[provider] > 0:
                self._pay(provider, amounts[provider])
                self.emit("RewardPaid", recipient=provider, role="provider",
                          amount=amounts[provider])
        # Equal split of the infra pool among confirming executors.
        confirmers = sorted(winning_vote["executors"])
        if confirmers and infra_pool > 0:
            base = infra_pool // len(confirmers)
            extra = infra_pool - base * len(confirmers)
            for index, executor in enumerate(confirmers):
                amount = base + (1 if index < extra else 0)
                if amount > 0:
                    self._pay(executor, amount)
                    self.emit("RewardPaid", recipient=executor,
                              role="executor", amount=amount)
        self.swrite(winning_vote["result_hash"], "final_result_hash")
        self.swrite(STATE_COMPLETE, "state")
        self.emit("WorkloadCompleted",
                  result_hash=winning_vote["result_hash"],
                  providers_paid=len(providers))

    # -- cancellation ----------------------------------------------------------------

    def cancel(self) -> None:
        """Consumer-only: abort an OPEN workload and reclaim the escrow."""
        self._require_state(STATE_OPEN)
        consumer = self.sread("consumer")
        self.require(self.ctx.sender == consumer,
                     "only the consumer may cancel")
        escrow = self.sread("escrow")
        if escrow > 0:
            self._pay(consumer, escrow)
        self.swrite(STATE_CANCELLED, "state")
        self.emit("WorkloadCancelled", consumer=consumer, refunded=escrow)

    def abort(self) -> None:
        """Consumer-only: abandon a workload that can no longer finish.

        Unlike :meth:`cancel`, abort is also legal while EXECUTING — the
        recovery engine calls it when a session dies after the execution
        gate tripped (e.g. too many crashed executors to reach quorum), so
        the escrow flows back to the consumer instead of being stranded in
        a contract that will never finalize.
        """
        state = self.sread("state")
        self.require(state in (STATE_OPEN, STATE_EXECUTING),
                     "only an unsettled workload can be aborted")
        consumer = self.sread("consumer")
        self.require(self.ctx.sender == consumer,
                     "only the consumer may abort")
        escrow = self.sread("escrow")
        if escrow > 0:
            self._pay(consumer, escrow)
        self.swrite(STATE_CANCELLED, "state")
        self.emit("WorkloadCancelled", consumer=consumer, refunded=escrow,
                  reason="aborted")

    def expire(self) -> None:
        """Refund the consumer after the deadline (anyone may call).

        Only non-complete workloads can expire; a deadline of 0 means no
        expiry.  This is the liveness backstop: escrow cannot be stranded.
        """
        deadline = self.sread("deadline_blocks")
        self.require(deadline > 0, "workload has no deadline")
        state = self.sread("state")
        self.require(state in (STATE_OPEN, STATE_EXECUTING),
                     "workload already settled")
        created = self.sread("created_in_block")
        self.require(
            self.ctx.block.number >= created + deadline,
            "deadline has not passed yet",
        )
        consumer = self.sread("consumer")
        escrow = self.sread("escrow")
        if escrow > 0:
            self._pay(consumer, escrow)
        self.swrite(STATE_CANCELLED, "state")
        self.emit("WorkloadCancelled", consumer=consumer, refunded=escrow,
                  reason="expired")

    # -- views -----------------------------------------------------------------------

    def deadline_info(self) -> dict:
        """Expiry data: creation block, deadline window, current block."""
        return {
            "created_in_block": self.sread("created_in_block"),
            "deadline_blocks": self.sread("deadline_blocks"),
            "current_block": self.ctx.block.number,
        }

    def state(self) -> str:
        """Current lifecycle state."""
        return self.sread("state")

    def consumer(self) -> str:
        """The address that deployed (and funds) this workload."""
        return self.sread("consumer")

    def escrow(self) -> int:
        """The reward pool held by the contract."""
        return self.sread("escrow")

    def spec_hash(self) -> str:
        """Hash of the off-chain workload specification."""
        return self.sread("spec_hash")

    def code_measurement(self) -> str:
        """The enclave measurement providers must see at attestation."""
        return self.sread("code_measurement")

    def executors(self) -> list:
        """Registered executor addresses."""
        return self.sread("executors")

    def provider_samples(self) -> dict:
        """Per-provider certified item counts."""
        return self.sread("provider_samples")

    def final_result_hash(self) -> str:
        """The confirmed result hash (COMPLETE state only)."""
        self._require_state(STATE_COMPLETE)
        return self.sread("final_result_hash")

    # -- helpers ----------------------------------------------------------------------

    def _require_state(self, expected: str) -> None:
        actual = self.sread("state")
        self.require(
            actual == expected,
            f"operation requires state {expected!r}, but workload is "
            f"{actual!r}",
        )
