"""Governance layer (paper Sections II-C/D, III-A).

Participation certificates, the on-chain actor/data registries, the
per-workload lifecycle contract with escrow and payout, and the trustless
audit procedures.
"""

from repro.governance.audit import AuditReport, audit_workload, require_clean_audit
from repro.governance.certificates import (
    ParticipationCertificate,
    issue_certificate,
)
from repro.governance.contracts import (
    BPS,
    STATE_CANCELLED,
    STATE_COMPLETE,
    STATE_EXECUTING,
    STATE_OPEN,
    ActorRegistry,
    DataRegistry,
    WorkloadContract,
)

__all__ = [
    "AuditReport",
    "audit_workload",
    "require_clean_audit",
    "ParticipationCertificate",
    "issue_certificate",
    "BPS",
    "STATE_CANCELLED",
    "STATE_COMPLETE",
    "STATE_EXECUTING",
    "STATE_OPEN",
    "ActorRegistry",
    "DataRegistry",
    "WorkloadContract",
]


def register_governance_contracts(registry) -> None:
    """Install the governance contract classes into a chain registry."""
    registry.register("actor_registry", ActorRegistry)
    registry.register("data_registry", DataRegistry)
    registry.register("workload", WorkloadContract)
