"""Trustless auditing of marketplace history (paper Section II-E).

"All actions in the platform should be automatically audited by the
governance layer, in a trustless decentralized fashion."  Because every
workload step emits events from a sealed chain, any party can re-derive and
check the full history.  :func:`audit_workload` performs the checks:

1. the chain itself verifies (seals, parent links, tx roots);
2. the workload's event sequence respects the lifecycle state machine;
3. every paid reward corresponds to a recorded participant;
4. reward conservation: total payouts equal the escrowed pool (when the
   workload completed);
5. every certificate hash recorded is unique (no double counting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.blockchain import Blockchain
from repro.errors import AuditError
from repro.governance.contracts import STATE_COMPLETE


@dataclass
class AuditReport:
    """Findings of one workload audit."""

    workload_address: str
    chain_valid: bool
    lifecycle_valid: bool
    rewards_conserved: bool
    total_paid: int
    escrow: int
    providers_paid: int
    executors_paid: int
    certificates: int
    violations: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no violations were found."""
        return not self.violations


_PHASE_ORDER = {
    "WorkloadCreated": 0,
    "ExecutorRegistered": 1,
    "ParticipationRecorded": 1,
    "ExecutionStarted": 2,
    "ResultSubmitted": 3,
    "RewardPaid": 3,
    "WorkloadCompleted": 4,
    "WorkloadCancelled": 4,
}


def audit_workload(chain: Blockchain, workload_address: str,
                   auditor: str | None = None) -> AuditReport:
    """Re-derive and verify one workload's full history from chain data."""
    violations: list[str] = []

    chain_valid = True
    try:
        chain.verify_chain()
    except Exception as exc:  # noqa: BLE001 - auditors report, not crash
        chain_valid = False
        violations.append(f"chain verification failed: {exc}")

    events = [
        log for _, log in chain.events(address=workload_address)
    ]
    if not events or events[0].name != "WorkloadCreated":
        violations.append("history does not begin with WorkloadCreated")
        return AuditReport(
            workload_address=workload_address, chain_valid=chain_valid,
            lifecycle_valid=False, rewards_conserved=False, total_paid=0,
            escrow=0, providers_paid=0, executors_paid=0, certificates=0,
            violations=violations,
        )

    escrow = int(events[0].data.get("escrow", 0))

    # 2. lifecycle monotonicity.
    lifecycle_valid = True
    phase = 0
    for event in events:
        event_phase = _PHASE_ORDER.get(event.name)
        if event_phase is None:
            continue
        if event_phase < phase:
            lifecycle_valid = False
            violations.append(
                f"event {event.name} arrived after phase {phase}"
            )
        phase = max(phase, event_phase)

    # 3 + 4. payout accounting.
    participants = {
        event.data["provider"] for event in events
        if event.name == "ParticipationRecorded"
    }
    executors = {
        event.data["executor"] for event in events
        if event.name == "ExecutorRegistered"
    }
    providers_paid = 0
    executors_paid = 0
    total_paid = 0
    for event in events:
        if event.name != "RewardPaid":
            continue
        amount = int(event.data["amount"])
        total_paid += amount
        recipient = event.data["recipient"]
        role = event.data["role"]
        if role == "provider":
            providers_paid += 1
            if recipient not in participants:
                violations.append(
                    f"provider reward to non-participant {recipient}"
                )
        elif role == "executor":
            executors_paid += 1
            if recipient not in executors:
                violations.append(
                    f"executor reward to unregistered executor {recipient}"
                )
        else:
            violations.append(f"unknown reward role {role!r}")

    completed = any(e.name == "WorkloadCompleted" for e in events)
    cancelled = any(e.name == "WorkloadCancelled" for e in events)
    rewards_conserved = True
    if completed:
        if total_paid != escrow:
            rewards_conserved = False
            violations.append(
                f"paid {total_paid} but escrow was {escrow}"
            )
        caller = auditor if auditor is not None else workload_address
        state = chain.view(caller, workload_address, "state")
        if state != STATE_COMPLETE:
            violations.append(
                f"events show completion but state is {state!r}"
            )
    elif cancelled:
        if total_paid != 0:
            rewards_conserved = False
            violations.append("cancelled workload paid rewards")

    # 5. certificate uniqueness.
    certificate_hashes = [
        event.data["certificate_hash"] for event in events
        if event.name == "ParticipationRecorded"
    ]
    if len(certificate_hashes) != len(set(certificate_hashes)):
        violations.append("duplicate certificate hash recorded")

    return AuditReport(
        workload_address=workload_address,
        chain_valid=chain_valid,
        lifecycle_valid=lifecycle_valid,
        rewards_conserved=rewards_conserved,
        total_paid=total_paid,
        escrow=escrow,
        providers_paid=providers_paid,
        executors_paid=executors_paid,
        certificates=len(certificate_hashes),
        violations=violations,
    )


def trail_covers_chain(chain: Blockchain, workload_address: str,
                       trail: "list") -> list[str]:
    """Check that an off-chain event trail covers the on-chain history.

    ``trail`` is a session's lifecycle event log (duck-typed: items need
    ``.name`` and ``.data``); every log the workload contract emitted must
    appear in it as a ``chain.log`` event, with matching multiplicity.
    Returns the list of violations (empty when the trail is complete), so
    callers can fold it into an :class:`AuditReport`.
    """
    from collections import Counter

    on_chain: Counter = Counter(
        log.name for _, log in chain.events(address=workload_address)
    )
    observed: Counter = Counter(
        event.data.get("log_name") for event in trail
        if event.name == "chain.log"
        and event.data.get("log_address") == workload_address
    )
    violations: list[str] = []
    for log_name, count in sorted(on_chain.items()):
        seen = observed.get(log_name, 0)
        if seen < count:
            violations.append(
                f"event trail missing {count - seen} on-chain "
                f"{log_name} event(s)"
            )
    return violations


def require_clean_audit(chain: Blockchain, workload_address: str) -> AuditReport:
    """Audit and raise :class:`AuditError` on any violation."""
    report = audit_workload(chain, workload_address)
    if not report.clean:
        raise AuditError(
            "audit violations: " + "; ".join(report.violations)
        )
    return report
