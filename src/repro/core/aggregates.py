"""Non-ML workloads: privacy-preserving statistical aggregates.

The paper notes that "while PDS2 generalizes to many kinds of workloads, we
focus on ML training tasks".  This module supplies the other kind: a
consumer buys an *aggregate statistic* (mean, sum, histogram, quantile)
over provider data, computed inside enclaves with optional differential
privacy on the released value — the lowest-risk output class of the
Section IV-D analyzer.

:func:`aggregate_enclave_entry_point` has the same contract as the ML entry
point (runs inside a TEE over provisioned ``provider:*`` inputs), so
aggregate workloads ride the existing attestation/certificate machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import WorkloadSpecError
from repro.utils.serialization import from_canonical_json


class AggregateKind(enum.Enum):
    """The statistic the consumer is buying."""

    MEAN = "mean"
    SUM = "sum"
    COUNT = "count"
    HISTOGRAM = "histogram"
    QUANTILE = "quantile"


@dataclass(frozen=True)
class AggregateSpec:
    """Specification of one aggregate query.

    ``field_index`` selects the feature column; histogram queries also take
    explicit ``bin_edges``; quantile queries take ``quantile`` in (0, 1).
    ``dp_epsilon``/``sensitivity`` switch on the Laplace mechanism over the
    released statistic.
    """

    kind: AggregateKind
    field_index: int = 0
    bin_edges: tuple[float, ...] = ()
    quantile: float = 0.5
    dp_epsilon: float | None = None
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.field_index < 0:
            raise WorkloadSpecError("field index must be non-negative")
        if self.kind is AggregateKind.HISTOGRAM and len(self.bin_edges) < 2:
            raise WorkloadSpecError("histograms need at least two bin edges")
        if self.kind is AggregateKind.QUANTILE and not 0 < self.quantile < 1:
            raise WorkloadSpecError("quantile must be in (0, 1)")
        if self.dp_epsilon is not None and self.dp_epsilon <= 0:
            raise WorkloadSpecError("dp epsilon must be positive")
        if self.sensitivity <= 0:
            raise WorkloadSpecError("sensitivity must be positive")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "field_index": self.field_index,
            "bin_edges": list(self.bin_edges),
            "quantile": self.quantile,
            "dp_epsilon": self.dp_epsilon,
            "sensitivity": self.sensitivity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AggregateSpec":
        return cls(
            kind=AggregateKind(data["kind"]),
            field_index=int(data["field_index"]),
            bin_edges=tuple(data.get("bin_edges", ())),
            quantile=float(data.get("quantile", 0.5)),
            dp_epsilon=data.get("dp_epsilon"),
            sensitivity=float(data.get("sensitivity", 1.0)),
        )


def _compute_statistic(values: np.ndarray, spec: AggregateSpec):
    if spec.kind is AggregateKind.MEAN:
        return float(values.mean())
    if spec.kind is AggregateKind.SUM:
        return float(values.sum())
    if spec.kind is AggregateKind.COUNT:
        return float(len(values))
    if spec.kind is AggregateKind.HISTOGRAM:
        counts, _ = np.histogram(values, bins=np.asarray(spec.bin_edges))
        return [float(c) for c in counts]
    return float(np.quantile(values, spec.quantile))


def _dp_noise_for(spec: AggregateSpec, shape_like,
                  rng: np.random.Generator):
    scale = spec.sensitivity / spec.dp_epsilon
    if isinstance(shape_like, list):
        return rng.laplace(0.0, scale, len(shape_like)).tolist()
    return float(rng.laplace(0.0, scale))


def aggregate_enclave_entry_point(inputs: dict[str, Any], agg_spec: dict,
                                  noise_seed: int) -> dict:
    """Compute one aggregate over all provisioned partitions, in-enclave.

    Returns the (optionally DP-noised) statistic, per-provider sample
    counts for rewarding, and the exact value kept *inside* the output dict
    only when no DP was requested — with DP the exact value never leaves
    the enclave.
    """
    spec = AggregateSpec.from_dict(agg_spec)
    all_values = []
    sample_counts: dict[str, int] = {}
    for label, blob in inputs.items():
        if not label.startswith("provider:"):
            continue
        rows = from_canonical_json(blob)
        features = np.asarray([row["x"] for row in rows], dtype=float)
        if spec.field_index >= features.shape[1]:
            raise WorkloadSpecError(
                f"field index {spec.field_index} out of range for "
                f"{features.shape[1]} features"
            )
        column = features[:, spec.field_index]
        all_values.append(column)
        sample_counts[label.split(":", 1)[1]] = len(column)
    if not all_values:
        raise WorkloadSpecError("no provider data provisioned")
    values = np.concatenate(all_values)
    exact = _compute_statistic(values, spec)

    if spec.dp_epsilon is None:
        released = exact
        output_exact = exact
    else:
        from repro.utils.rng import rng_from_seed

        noise = _dp_noise_for(spec, exact, rng_from_seed(noise_seed))
        if isinstance(exact, list):
            released = [max(0.0, e + n) for e, n in zip(exact, noise)]
        else:
            released = exact + noise
        output_exact = None  # the exact value stays in the enclave
    return {
        "statistic": released,
        "exact": output_exact,
        "kind": spec.kind.value,
        "dp_epsilon": spec.dp_epsilon,
        "sample_counts": sample_counts,
        "total_samples": int(len(values)),
    }


def combine_aggregate_outputs(kind: AggregateKind,
                              outputs: list[dict]) -> Any:
    """Decentralized combination of per-executor aggregate outputs.

    SUM/COUNT add; MEAN is the sample-weighted mean of means; HISTOGRAM
    adds bin-wise; QUANTILE is combined as the sample-weighted mean of
    per-executor quantiles — an approximation (exact distributed quantiles
    need mergeable sketches), recorded as such in EXPERIMENTS.md.
    """
    if not outputs:
        raise WorkloadSpecError("no outputs to combine")
    weights = np.array([out["total_samples"] for out in outputs],
                       dtype=float)
    stats = [out["statistic"] for out in outputs]
    if kind in (AggregateKind.SUM, AggregateKind.COUNT):
        return float(sum(stats))
    if kind is AggregateKind.HISTOGRAM:
        stacked = np.array(stats, dtype=float)
        return [float(v) for v in stacked.sum(axis=0)]
    # MEAN and QUANTILE: sample-weighted average.
    values = np.array(stats, dtype=float)
    return float((weights / weights.sum()) @ values)


@dataclass
class AggregateResult:
    """Client-side view of an aggregate workload's output."""

    statistic: Any
    kind: AggregateKind
    dp_epsilon: float | None
    total_samples: int
    sample_counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_output(cls, output: dict) -> "AggregateResult":
        return cls(
            statistic=output["statistic"],
            kind=AggregateKind(output["kind"]),
            dp_epsilon=output.get("dp_epsilon"),
            total_samples=int(output["total_samples"]),
            sample_counts=dict(output.get("sample_counts", {})),
        )
