"""Deterministic fault injection and recovery for the workload lifecycle.

Section VI of the paper leaves "feasibility testing under realistic
failure" open; this module closes the loop for the reproduction.  It has
two halves that meet inside :class:`~repro.core.lifecycle.WorkloadSession`:

* **Injection** — a :class:`FaultPlan` is a declarative list of
  :class:`Fault` entries (what kind, which actor, how many times).  The
  session's named ``fault_point`` hooks hand every would-be failure site
  to a :class:`FaultInjector`, which raises an
  :class:`~repro.errors.InjectedFaultError` exactly when the plan says so.
  Plans are plain data and every stochastic choice is made by
  :func:`derive_rng`, so an injected run is as byte-deterministic as a
  clean one.

* **Recovery** — a :class:`RecoveryPolicy` decides what the engine does
  about a failure: transient faults back off and **retry** on the sim
  clock (:class:`RetryPolicy`); an executor that died while the contract
  is still OPEN is blacklisted and its providers **re-matched** onto the
  survivors; an executor that died mid-execute takes its enclave (and the
  data inside) with it, so the run **degrades** to the surviving quorum
  and the largest-remainder payout only rewards actual contributors; a
  provider that keeps failing past its retry budget is **dropped** as
  long as ``min_providers`` still holds.

:func:`run_with_faults` wires both halves to one session and reports what
happened; :data:`SCENARIOS` names the canned plans the CLI
(``python -m repro faults <scenario>``) and the CI smoke job run.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.lifecycle import (
    PHASE_EXECUTE,
    PHASE_REGISTER,
    PHASE_SUBMIT,
    TERMINAL_COMPLETE,
    LifecyclePhase,
    MLTrainingKind,
    RecoveryDirective,
    WorkloadKind,
    WorkloadSession,
)
from repro.core.workload import WorkloadSpec
from repro.errors import InjectedFaultError, LifecycleError, PDS2Error
from repro.telemetry import metrics as _tm
from repro.telemetry import tracing as _tt
from repro.utils.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.actors import ConsumerActor, ExecutorActor, ProviderActor
    from repro.core.marketplace import Marketplace

_FAULTS_INJECTED = _tm.counter(
    "pds2_faults_injected_total", "Faults fired by the injection harness",
    labelnames=("kind",),
)


# ---------------------------------------------------------------------------
# The fault plan DSL
# ---------------------------------------------------------------------------


class FaultKind(str, enum.Enum):
    """Failure modes the harness can inject, mapped to lifecycle points."""

    #: Executor host dies before attestation (while registering).
    CRASH_REGISTER = "crash_register"
    #: Executor host dies after attestation, while receiving data.
    CRASH_SUBMIT = "crash_submit"
    #: Executor host dies mid-execute — enclave and data are gone.
    CRASH_EXECUTE = "crash_execute"
    #: A provider's encrypted submission is lost in transit (transient).
    DROP_SUBMISSION = "drop_submission"
    #: A provider's submission arrives corrupted (transient: resend).
    CORRUPT_SUBMISSION = "corrupt_submission"
    #: The provider is churned offline at submission time (transient —
    #: until the retry budget runs out and the policy drops it).
    PROVIDER_CHURN = "provider_churn"
    #: A chain transaction is rejected this attempt (transient).
    CHAIN_REJECT = "chain_reject"
    #: One world-state balance slot is silently bit-flipped right after a
    #: block seals.  Neither transient nor a crash: nothing retries, nothing
    #: dies — only the chain auditor's conservation checks can catch it.
    #: Armed via :func:`repro.chain.audit.install_fault_plan`, not the
    #: lifecycle injector (``target`` carries the block, e.g. ``block:3``).
    CORRUPT_STATE = "corrupt_state"


#: Injection points each kind can fire at (``Fault.point`` can pin one).
KIND_POINTS: dict[FaultKind, tuple[str, ...]] = {
    FaultKind.CRASH_REGISTER: ("register.executor",),
    FaultKind.CRASH_SUBMIT: ("submit.executor",),
    FaultKind.CRASH_EXECUTE: ("execute.executor",),
    FaultKind.DROP_SUBMISSION: ("submit.provider",),
    FaultKind.CORRUPT_SUBMISSION: ("submit.provider",),
    FaultKind.PROVIDER_CHURN: ("submit.provider",),
    FaultKind.CHAIN_REJECT: ("deploy.chain_tx", "start.chain_tx",
                             "settle.chain_tx"),
    FaultKind.CORRUPT_STATE: ("chain.block_boundary",),
}

#: Kinds a plain retry can clear.
TRANSIENT_KINDS = frozenset({
    FaultKind.DROP_SUBMISSION, FaultKind.CORRUPT_SUBMISSION,
    FaultKind.PROVIDER_CHURN, FaultKind.CHAIN_REJECT,
})

#: Kinds that kill the executor they target.
CRASH_KINDS = frozenset({
    FaultKind.CRASH_REGISTER, FaultKind.CRASH_SUBMIT,
    FaultKind.CRASH_EXECUTE,
})


@dataclass(frozen=True)
class Fault:
    """One planned fault.

    ``target`` names the actor it strikes (actor name or address; empty
    matches any actor at the point), ``times`` bounds how often it fires,
    and ``point`` optionally pins a multi-point kind (chain rejection) to
    one specific injection point.
    """

    kind: FaultKind
    target: str = ""
    times: int = 1
    point: str = ""

    def describe(self) -> str:
        where = self.point or "/".join(KIND_POINTS[self.kind])
        who = self.target or "any"
        return f"{self.kind.value} @ {where} on {who} (x{self.times})"

    def to_dict(self) -> dict:
        return {"kind": self.kind.value, "target": self.target,
                "times": self.times, "point": self.point}

    @classmethod
    def from_dict(cls, record: dict) -> "Fault":
        return cls(kind=FaultKind(record["kind"]),
                   target=record.get("target", ""),
                   times=int(record.get("times", 1)),
                   point=record.get("point", ""))


def job_fault_seed(job_id: str) -> int:
    """Deterministic fault seed derived from a batch job spec id alone.

    Sharding must not change fault sequences: whichever worker (or how
    many workers) runs a job, its plan derives from the spec id, never
    from process-global state — so a sharded sweep reproduces the
    single-process fault sequence exactly.
    """
    payload = b"pds2-job-fault|" + job_id.encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, deterministic set of faults for one session."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def single(cls, kind: FaultKind, target: str = "", times: int = 1,
               point: str = "") -> "FaultPlan":
        return cls(faults=(Fault(kind, target=target, times=times,
                                 point=point),))

    @classmethod
    def sample(cls, rate: float, executor_names: Sequence[str],
               provider_names: Sequence[str], seed: int) -> "FaultPlan":
        """Draw a plan where each actor independently fails with ``rate``.

        Used by the E18 sweep: executors draw a mid-execute crash,
        providers a dropped submission, and the run as a whole a transient
        chain rejection.  All draws come from one derived rng, so the same
        (rate, actors, seed) triple always yields the same plan.
        """
        rng = derive_rng(seed, f"fault-plan-{rate}")
        faults: list[Fault] = []
        for name in executor_names:
            if rng.random() < rate:
                faults.append(Fault(FaultKind.CRASH_EXECUTE, target=name))
        for name in provider_names:
            if rng.random() < rate:
                faults.append(Fault(FaultKind.DROP_SUBMISSION, target=name))
        if rng.random() < rate:
            faults.append(Fault(FaultKind.CHAIN_REJECT,
                                point="start.chain_tx"))
        return cls(faults=tuple(faults))

    @classmethod
    def for_job(cls, job_id: str, rate: float,
                executor_names: Sequence[str],
                provider_names: Sequence[str]) -> "FaultPlan":
        """The :meth:`sample` distribution, seeded per job spec id.

        Composable with batch sharding: the plan depends only on
        ``(job_id, rate, actors)``, so every worker — and the
        single-process baseline — draws the identical plan for a job.
        """
        return cls.sample(rate, executor_names, provider_names,
                          seed=job_fault_seed(job_id))

    def describe(self) -> list[str]:
        return [fault.describe() for fault in self.faults]

    def to_dict(self) -> dict:
        return {"faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, record: dict) -> "FaultPlan":
        return cls(faults=tuple(
            Fault.from_dict(entry) for entry in record.get("faults", ())
        ))


class FaultInjector:
    """Arms a plan against one session's ``fault_point`` hooks."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._remaining = {index: fault.times
                           for index, fault in enumerate(plan.faults)}
        #: Every fault that actually fired, in order.
        self.injected: list[dict] = []

    def state_dict(self) -> dict:
        """Checkpointable injector state (plan + remaining budgets)."""
        return {
            "plan": self.plan.to_dict(),
            "remaining": {str(index): count
                          for index, count in self._remaining.items()},
            "injected": [dict(entry) for entry in self.injected],
        }

    @classmethod
    def restore_state(cls, state: dict) -> "FaultInjector":
        """Rebuild an injector mid-plan, so resumed sessions keep facing
        exactly the faults the plan still owes them."""
        injector = cls(FaultPlan.from_dict(state["plan"]))
        for index, count in state.get("remaining", {}).items():
            injector._remaining[int(index)] = int(count)
        injector.injected = [dict(entry)
                             for entry in state.get("injected", ())]
        return injector

    def fire(self, session: WorkloadSession, point: str,
             executor: Optional["ExecutorActor"] = None,
             provider: Optional["ProviderActor"] = None) -> None:
        """Raise the first still-armed fault matching this point/actor."""
        actor = provider if provider is not None else executor
        names = {actor.name, actor.address} if actor is not None else set()
        for index, fault in enumerate(self.plan.faults):
            if self._remaining[index] <= 0:
                continue
            if point not in KIND_POINTS[fault.kind]:
                continue
            if fault.point and fault.point != point:
                continue
            if fault.target and fault.target not in names:
                continue
            self._remaining[index] -= 1
            self._inject(session, point, fault, executor=executor,
                         provider=provider)

    def _inject(self, session: WorkloadSession, point: str, fault: Fault,
                executor: Optional["ExecutorActor"],
                provider: Optional["ProviderActor"]) -> None:
        dead_executor = ""
        if fault.kind in CRASH_KINDS and executor is not None:
            dead_executor = executor.address
            # The host is gone: its enclave (and any provisioned data)
            # does not survive the crash.
            enclave = executor.enclaves.get(session.kind.workload_id)
            if enclave is not None:
                enclave.terminate()
        provider_address = provider.address if provider is not None else ""
        record = {
            "kind": fault.kind.value,
            "point": point,
            "target": fault.target,
            "executor": executor.address if executor is not None else "",
            "provider": provider_address,
            "sim_clock": session.market.clock,
        }
        self.injected.append(record)
        _FAULTS_INJECTED.labels(kind=fault.kind.value).inc()
        # Stamp the innermost open span so the distributed trace shows
        # *where* the fault fired without correlating against the event
        # log (the span will also be marked status=error by the raise).
        current = _tt.tracer().current
        if current is not None:
            current.set_attribute("fault_kind", fault.kind.value)
            current.set_attribute("fault_point", point)
        session.emit("fault.injected", point=point, kind=fault.kind.value,
                     target=fault.target, dead_executor=dead_executor,
                     provider=provider_address)
        raise InjectedFaultError(
            f"injected {fault.kind.value} at {point}"
            + (f" on {fault.target}" if fault.target else ""),
            snapshot=session.snapshot(),
            point=point,
            transient=fault.kind in TRANSIENT_KINDS,
            dead_executor=dead_executor,
            provider=provider_address,
        )


# ---------------------------------------------------------------------------
# Recovery policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff, waited out on the *sim* clock."""

    max_attempts: int = 5
    base_delay_s: float = 1.0
    multiplier: float = 2.0
    max_delay_s: float = 30.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return min(self.max_delay_s,
                   self.base_delay_s * self.multiplier ** attempt)


@dataclass
class RecoveryPolicy:
    """Maps one phase failure to a :class:`RecoveryDirective` (or None).

    The engine fails the session whenever this returns None, exactly as
    it would with no policy at all — so a policy only ever *adds* ways to
    survive.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    rematch: bool = True
    degrade: bool = True
    drop_providers: bool = True
    #: Hard cap on total recovery actions per session (loop backstop).
    max_recoveries: int = 16

    def decide(self, session: WorkloadSession, phase: LifecyclePhase,
               error: LifecycleError) -> Optional[RecoveryDirective]:
        if len(session.ctx.recovery_log) >= self.max_recoveries:
            return None
        if getattr(error, "transient", False):
            return self._transient(session, phase, error)
        dead = getattr(error, "dead_executor", "")
        if dead:
            return self._executor_dead(session, phase, dead)
        return None

    # -- transient faults: retry, then (for providers) drop ----------------

    def _retry(self, session: WorkloadSession, phase: LifecyclePhase,
               reason: str) -> Optional[RecoveryDirective]:
        attempt = session.ctx.retries.get(phase.name, 0)
        if attempt >= self.max_attempts_for(phase):
            return None
        return RecoveryDirective(
            action="retry", target=phase.name,
            delay_s=self.retry.delay(attempt), reason=reason,
        )

    def max_attempts_for(self, phase: LifecyclePhase) -> int:
        """Per-phase retry budget (uniform by default; easy to override)."""
        return self.retry.max_attempts

    def _transient(self, session: WorkloadSession, phase: LifecyclePhase,
                   error: LifecycleError) -> Optional[RecoveryDirective]:
        directive = self._retry(session, phase,
                                reason=f"transient: {type(error).__name__}")
        if directive is not None:
            return directive
        # Retry budget exhausted.  A provider that keeps failing can be
        # cut loose as long as the match still satisfies the spec.
        provider = getattr(error, "provider", "")
        if self.drop_providers and provider:
            remaining = len(session.ctx.participants) - 1
            if remaining >= session.kind.min_providers:
                return RecoveryDirective(
                    action="drop_provider", target=phase.name,
                    provider=provider,
                    reason="retry budget exhausted; dropping provider",
                )
        return None

    # -- dead executors: re-match while OPEN, degrade while EXECUTING ------

    def _executor_dead(self, session: WorkloadSession,
                       phase: LifecyclePhase,
                       dead: str) -> Optional[RecoveryDirective]:
        ctx = session.ctx
        live = [e for e in ctx.executors if e.address != dead]
        need = session.kind.required_confirmations
        if phase.name in (PHASE_REGISTER, PHASE_SUBMIT):
            if self.rematch and live and len(live) >= need:
                return RecoveryDirective(
                    action="rematch", target=PHASE_REGISTER,
                    dead_executor=dead,
                    reason="executor crashed before start; re-matching "
                           "its providers onto the survivors",
                )
            return None
        if phase.name == PHASE_EXECUTE and self.degrade:
            # Data provisioned into the dead enclave is unrecoverable, so
            # only executors that still hold data can carry the quorum.
            live_active = [e for e in live if ctx.assignments.get(e.address)]
            if live_active and len(live_active) >= need:
                return RecoveryDirective(
                    action="degrade", target=PHASE_EXECUTE,
                    dead_executor=dead,
                    reason="executor crashed mid-execute; continuing on "
                           "the surviving quorum",
                )
        return None


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


@dataclass
class FaultRunOutcome:
    """What one injected run did, for tests, the CLI and the benchmark."""

    outcome: str            # "settled" | "settled_degraded" | "failed"
    completed: bool
    degraded: bool
    session_state: str      # the session's terminal state
    contract_state: str     # the workload contract's final state
    session_id: str
    workload_address: str
    injected: list[dict]
    recoveries: list[dict]
    blacklisted: list[str]
    dropped_providers: list[str]
    payouts: dict[str, int]
    refunded: int
    gas_used: int
    blocks_mined: int
    error: str = ""
    report: object = None


def run_with_faults(market: "Marketplace", consumer: "ConsumerActor",
                    kind: WorkloadKind | WorkloadSpec,
                    plan: FaultPlan,
                    policy: Optional[RecoveryPolicy] = None,
                    *, recover: bool = True,
                    **session_kwargs) -> FaultRunOutcome:
    """Run one lifecycle session with ``plan`` armed.

    ``recover=False`` (or ``policy=None`` with ``recover=False``) runs the
    pre-recovery engine — every injected fault is terminal — which is the
    baseline the acceptance criterion and the E18 sweep compare against.
    The function never raises on lifecycle failure; it reports.
    """
    if isinstance(kind, WorkloadSpec):
        kind = MLTrainingKind(kind)
    if recover and policy is None:
        policy = RecoveryPolicy()
    injector = FaultInjector(plan)
    session = market.session_for(
        consumer, kind, recovery=policy if recover else None,
        injector=injector, **session_kwargs,
    )
    report: object = None
    error = ""
    try:
        report = session.run()
    except LifecycleError as exc:
        error = f"{type(exc).__name__}: {exc}"
    ctx = session.ctx
    contract_state = ""
    if ctx.workload_address:
        try:
            contract_state = session.read_state()
        except PDS2Error:  # pragma: no cover - defensive
            contract_state = "unknown"
    completed = session.state == TERMINAL_COMPLETE
    if completed:
        outcome = "settled_degraded" if ctx.degraded else "settled"
    else:
        outcome = "failed"
    return FaultRunOutcome(
        outcome=outcome,
        completed=completed,
        degraded=ctx.degraded,
        session_state=session.state,
        contract_state=contract_state,
        session_id=session.session_id,
        workload_address=ctx.workload_address,
        injected=list(injector.injected),
        recoveries=[dict(entry) for entry in ctx.recovery_log],
        blacklisted=list(ctx.blacklist),
        dropped_providers=sorted(ctx.dropped_providers),
        payouts=dict(ctx.payouts),
        refunded=ctx.refunded,
        gas_used=session.gas_used,
        blocks_mined=session.blocks_mined,
        error=error,
        report=report,
    )


# ---------------------------------------------------------------------------
# Named scenarios (CLI + CI smoke)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A canned fault plan parameterized by the session's actor names."""

    name: str
    description: str
    kind: FaultKind
    #: Which executor/provider (by position) the fault strikes.
    executor_index: Optional[int] = None
    provider_index: Optional[int] = None
    times: int = 1

    def plan(self, executor_names: Sequence[str],
             provider_names: Sequence[str]) -> FaultPlan:
        target = ""
        if self.executor_index is not None and executor_names:
            target = executor_names[self.executor_index % len(executor_names)]
        elif self.provider_index is not None and provider_names:
            target = provider_names[self.provider_index % len(provider_names)]
        return FaultPlan.single(self.kind, target=target, times=self.times)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario for scenario in (
        Scenario("crash-execute",
                 "one executor dies mid-execute; the run degrades to the "
                 "surviving quorum and only contributors are paid",
                 FaultKind.CRASH_EXECUTE, executor_index=1),
        Scenario("crash-register",
                 "one executor dies before attestation; it is blacklisted "
                 "and registration re-enters over the survivors",
                 FaultKind.CRASH_REGISTER, executor_index=1),
        Scenario("crash-submit",
                 "one executor dies while receiving data; its providers "
                 "are re-matched onto the survivors",
                 FaultKind.CRASH_SUBMIT, executor_index=1),
        Scenario("drop-submission",
                 "one provider's submission is lost once; the retry "
                 "policy resends it after backoff",
                 FaultKind.DROP_SUBMISSION, provider_index=0),
        Scenario("churn-provider",
                 "one provider flaps offline twice at submission; retries "
                 "ride out the churn",
                 FaultKind.PROVIDER_CHURN, provider_index=0, times=2),
        Scenario("drop-provider",
                 "one provider never comes back; after the retry budget "
                 "it is dropped and the match degrades",
                 FaultKind.PROVIDER_CHURN, provider_index=0, times=1_000),
        Scenario("chain-flaky",
                 "transient chain-level rejections; every affected "
                 "transaction is retried with backoff",
                 FaultKind.CHAIN_REJECT, times=2),
    )
}
