"""Adversarial actors: misbehaving executors and how the protocol holds.

Section II-E requires that executors have "no way to tamper with the results
without being detected".  Two mechanisms enforce this in PDS2:

1. **attestation** — providers only send data to enclaves whose measurement
   matches the on-chain workload code, so an executor cannot substitute its
   own training code and still receive inputs;
2. **result quorum** — the workload contract pays only when
   ``required_confirmations`` *identical* (result hash, payout weights)
   votes accumulate, so a minority of lying executors cannot corrupt the
   result or the rewards.

This module provides the attack harness used by tests and the E15 fault
bench.  It plugs into the lifecycle engine as a *phase interceptor*: the
session runs every phase honestly up to aggregation, then the intercepted
settle phase casts one vote per executor according to its assigned
behavior — no marketplace internals are duplicated or reached into.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.chain.blockchain import Blockchain
from repro.core.lifecycle import (
    PHASE_SETTLE,
    LifecyclePhase,
    MLTrainingKind,
    SettlePhase,
    WorkloadSession,
)
from repro.core.marketplace import Marketplace, WorkloadRunReport
from repro.core.workload import WorkloadSpec
from repro.errors import MarketplaceError
from repro.governance.contracts import BPS


class ExecutorBehavior(enum.Enum):
    """How an executor acts when submitting results."""

    HONEST = "honest"
    WRONG_RESULT = "wrong_result"       # votes for a fabricated model hash
    SELF_DEALING = "self_dealing"       # reroutes payout weights to a crony
    SILENT = "silent"                   # never submits (lazy/crashed)


@dataclass
class AdversarialOutcome:
    """What happened when a workload ran against misbehaving executors."""

    completed: bool
    honest_result_hash: str | None
    final_state: str
    paid_total: int
    crony_payout: int
    report: WorkloadRunReport | None = None


def adversarial_settle_interceptor(behaviors: list["ExecutorBehavior"]):
    """Build a settle-phase interceptor casting one vote per behavior.

    The default settle phase has the first ``required_confirmations``
    active executors vote the honest (hash, weights) pair; this replacement
    lets *every* active executor vote according to its assigned behavior,
    then reuses the phase's own :meth:`~SettlePhase.finalize` tail (mine,
    state check, payout accounting).
    """

    def intercept(session: WorkloadSession, phase: LifecyclePhase) -> None:
        assert isinstance(phase, SettlePhase)
        ctx = session.ctx
        for executor, behavior in zip(ctx.executors, behaviors):
            if executor not in ctx.active_executors:
                continue
            if behavior is ExecutorBehavior.HONEST:
                session.cast_vote(executor, ctx.result_hash, ctx.weights_bps)
            elif behavior is ExecutorBehavior.WRONG_RESULT:
                session.cast_vote(executor, "ff" * 32, ctx.weights_bps)
            elif behavior is ExecutorBehavior.SELF_DEALING:
                # Route everything to one (possibly sybil) provider the
                # attacker controls — the contract only accepts registered
                # participants, so the crony must be a participant to even
                # be a valid key.
                corrupt = dict.fromkeys(ctx.weights_bps, 0)
                victim = sorted(corrupt)[0]
                corrupt[victim] = BPS
                session.cast_vote(executor, ctx.result_hash, corrupt)
            # SILENT: do nothing.
        phase.finalize(session)

    return intercept


def run_with_adversaries(market: Marketplace, consumer, spec: WorkloadSpec,
                         behaviors: list[ExecutorBehavior],
                         crony_address: str | None = None,
                         ) -> AdversarialOutcome:
    """Run the Fig. 2 lifecycle with per-executor behaviors.

    Drives the same :class:`~repro.core.lifecycle.WorkloadSession` engine
    as :meth:`Marketplace.run_workload`, with the settle phase intercepted
    so each executor votes according to its assigned behavior.  The
    function never raises on adversarial failure; it reports what the
    contract did.
    """
    executors = market.executors
    if len(behaviors) != len(executors):
        raise MarketplaceError("one behavior per marketplace executor")
    if crony_address is None:
        crony_address = "0x" + "c0" * 20

    session = market.session_for(
        consumer, MLTrainingKind(spec),
        interceptors={PHASE_SETTLE: adversarial_settle_interceptor(behaviors)},
        require_completion=False,
        audit=False,
    )
    report = session.run()
    ctx = session.ctx

    crony_paid = sum(
        int(log.data["amount"])
        for _, log in market.chain.events(name="RewardPaid",
                                          address=ctx.workload_address)
        if log.data["recipient"] == crony_address
    )
    completed = ctx.final_state == "complete"
    return AdversarialOutcome(
        completed=completed,
        honest_result_hash=ctx.result_hash,
        final_state=ctx.final_state,
        paid_total=sum(ctx.payouts.values()),
        crony_payout=crony_paid,
        report=report if completed else None,
    )


def confirmed_result(chain: Blockchain, workload_address: str,
                     caller: str) -> str | None:
    """The finalized result hash, or None while unconfirmed."""
    state = chain.view(caller, workload_address, "state")
    if state != "complete":
        return None
    return chain.view(caller, workload_address, "final_result_hash")
