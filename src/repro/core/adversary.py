"""Adversarial actors: misbehaving executors and how the protocol holds.

Section II-E requires that executors have "no way to tamper with the results
without being detected".  Two mechanisms enforce this in PDS2:

1. **attestation** — providers only send data to enclaves whose measurement
   matches the on-chain workload code, so an executor cannot substitute its
   own training code and still receive inputs;
2. **result quorum** — the workload contract pays only when
   ``required_confirmations`` *identical* (result hash, payout weights)
   votes accumulate, so a minority of lying executors cannot corrupt the
   result or the rewards.

This module provides the attack harness used by tests and the E15 fault
bench: adversarial executor behaviors that plug into a normal
:class:`~repro.core.marketplace.Marketplace` run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.chain.blockchain import Blockchain
from repro.core.actors import ExecutorActor, result_hash_of
from repro.core.marketplace import Marketplace, WorkloadRunReport
from repro.core.workload import WorkloadSpec
from repro.errors import MarketplaceError
from repro.governance.contracts import BPS


class ExecutorBehavior(enum.Enum):
    """How an executor acts when submitting results."""

    HONEST = "honest"
    WRONG_RESULT = "wrong_result"       # votes for a fabricated model hash
    SELF_DEALING = "self_dealing"       # reroutes payout weights to a crony
    SILENT = "silent"                   # never submits (lazy/crashed)


@dataclass
class AdversarialOutcome:
    """What happened when a workload ran against misbehaving executors."""

    completed: bool
    honest_result_hash: str | None
    final_state: str
    paid_total: int
    crony_payout: int
    report: WorkloadRunReport | None = None


def run_with_adversaries(market: Marketplace, consumer, spec: WorkloadSpec,
                         behaviors: list[ExecutorBehavior],
                         crony_address: str | None = None,
                         ) -> AdversarialOutcome:
    """Run the Fig. 2 lifecycle with per-executor behaviors.

    Mirrors :meth:`Marketplace.run_workload` up to result submission, then
    lets each executor vote according to its assigned behavior.  The
    function never raises on adversarial failure; it reports what the
    contract did.
    """
    executors = market.executors
    if len(behaviors) != len(executors):
        raise MarketplaceError("one behavior per marketplace executor")
    if crony_address is None:
        crony_address = "0x" + "c0" * 20

    workload_address = market.submit_workload(consumer, spec)
    participants = market.matching_providers(spec)
    if len(participants) < spec.min_providers:
        raise MarketplaceError("not enough providers for the attack harness")

    code = ExecutorActor.code_for(spec)
    for executor in executors:
        executor.launch_enclave(spec)
        executor.wallet.call(workload_address, "register_executor",
                             claimed_measurement=code.measurement.hex())
    market._mine()

    onchain_measurement = consumer.wallet.view(workload_address,
                                               "code_measurement")
    assignments = {executor.address: [] for executor in executors}
    from repro.utils.rng import derive_rng

    for index, provider in enumerate(participants):
        executor = executors[index % len(executors)]
        quote = executor.quote_for(spec)
        enclave_key = market.attestation.verify(
            quote, expected_measurement=bytes.fromhex(onchain_measurement)
        )
        envelope, certificate = provider.prepare_submission(
            spec, executor.address, enclave_key,
            issued_at=market._tick(),
            rng=derive_rng(market.seed, f"adv-submit-{provider.name}"),
        )
        executor.accept_data(spec, provider.address, envelope,
                             provider.wallet.key.public_key)
        executor.wallet.call(
            workload_address, "submit_participation",
            provider=provider.address,
            certificate_hash=certificate.certificate_hash.hex(),
            data_root=certificate.data_root.hex(),
            item_count=certificate.item_count,
        )
        assignments[executor.address].append(provider)
    market._mine()
    consumer.wallet.call(workload_address, "start_execution")
    market._mine()

    # Honest computation happens in every enclave that received data.
    active = [e for e in executors if assignments[e.address]]
    outputs = [e.execute(spec, training_seed=market.seed) for e in active]
    final_params, weights_bps, _ = Marketplace._aggregate_outputs(
        spec, outputs
    )
    honest_hash = result_hash_of(final_params, weights_bps)

    for executor, behavior in zip(executors, behaviors):
        if executor not in active and behavior is not ExecutorBehavior.SILENT:
            continue
        if behavior is ExecutorBehavior.HONEST:
            executor.wallet.call(workload_address, "submit_result",
                                 result_hash=honest_hash,
                                 provider_weights_bps=weights_bps)
        elif behavior is ExecutorBehavior.WRONG_RESULT:
            executor.wallet.call(workload_address, "submit_result",
                                 result_hash="ff" * 32,
                                 provider_weights_bps=weights_bps)
        elif behavior is ExecutorBehavior.SELF_DEALING:
            # Route everything to one (possibly sybil) provider the attacker
            # controls — the contract only accepts registered participants,
            # so the crony must be a participant to even be a valid key.
            corrupt = dict.fromkeys(weights_bps, 0)
            victim = sorted(corrupt)[0]
            corrupt[victim] = BPS
            executor.wallet.call(workload_address, "submit_result",
                                 result_hash=honest_hash,
                                 provider_weights_bps=corrupt)
        # SILENT: do nothing.
    market._mine()

    state = consumer.wallet.view(workload_address, "state")
    paid = sum(
        int(log.data["amount"])
        for _, log in market.chain.events(name="RewardPaid",
                                          address=workload_address)
    )
    crony_paid = sum(
        int(log.data["amount"])
        for _, log in market.chain.events(name="RewardPaid",
                                          address=workload_address)
        if log.data["recipient"] == crony_address
    )
    return AdversarialOutcome(
        completed=state == "complete",
        honest_result_hash=honest_hash,
        final_state=state,
        paid_total=paid,
        crony_payout=crony_paid,
    )


def confirmed_result(chain: Blockchain, workload_address: str,
                     caller: str) -> str | None:
    """The finalized result hash, or None while unconfirmed."""
    state = chain.view(caller, workload_address, "state")
    if state != "complete":
        return None
    return chain.view(caller, workload_address, "final_result_hash")
