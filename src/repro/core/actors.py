"""Marketplace actors: providers, consumers, executors (paper Section II-A).

Each actor couples a blockchain wallet with its off-chain resources:

* a :class:`ProviderActor` owns a dataset, a storage backend, a semantic
  annotation, and (optionally) the IoT devices that signed the data;
* a :class:`ConsumerActor` authors workload specs and decrypts results;
* an :class:`ExecutorActor` owns a TEE platform and runs attested enclaves.

Actors hold *policy* too: providers decide whether to join a workload via a
pluggable participation policy, the user-centered control knob of
Section II-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.chain.blockchain import Wallet
from repro.crypto.ecdsa import PublicKey
from repro.crypto.symmetric import Envelope
from repro.errors import MarketplaceError
from repro.governance.certificates import (
    ParticipationCertificate,
    issue_certificate,
)
from repro.ml.datasets import Dataset
from repro.storage.base import StorageBackend
from repro.storage.semantic import Ontology, SemanticAnnotation
from repro.tee.attestation import AttestationService, Quote
from repro.tee.enclave import Enclave, EnclaveCode, TEEPlatform
from repro.core.workload import (
    WorkloadSpec,
    enclave_entry_point,
    serialize_partition,
)
from repro.utils.serialization import canonical_json_bytes

#: A provider policy: (spec, own matching record count) -> participate?
ParticipationPolicy = Callable[[WorkloadSpec, int], bool]


def accept_all_policy(spec: WorkloadSpec, matching_records: int) -> bool:
    """The default policy: join every workload with eligible data."""
    return matching_records > 0


def minimum_reward_policy(min_reward_per_sample: float) -> ParticipationPolicy:
    """A policy that joins only adequately paying workloads."""

    def policy(spec: WorkloadSpec, matching_records: int) -> bool:
        if matching_records <= 0:
            return False
        expected_share = spec.reward_pool / max(1, spec.min_samples)
        return expected_share >= min_reward_per_sample

    return policy


@dataclass
class ProviderActor:
    """A data provider: wallet + dataset + storage + annotation + policy."""

    name: str
    wallet: Wallet
    dataset: Dataset
    annotation: SemanticAnnotation
    store: StorageBackend
    policy: ParticipationPolicy = accept_all_policy
    record_id: str = ""
    stored_object_id: str = ""
    rewards_received: int = 0

    @property
    def address(self) -> str:
        return self.wallet.address

    def partition_payload(self) -> bytes:
        """The canonical serialized partition (rows as one JSON document)."""
        return canonical_json_bytes([
            {"x": [float(v) for v in self.dataset.features[i]],
             "y": float(self.dataset.targets[i])}
            for i in range(len(self.dataset))
        ])

    def store_dataset(self) -> str:
        """Persist the serialized partition into the provider's backend."""
        self.stored_object_id = self.store.put(
            self.partition_payload(), self.address
        )
        return self.stored_object_id

    def wants_to_participate(self, spec: WorkloadSpec,
                             ontology: Ontology) -> bool:
        """Apply the participation policy to one advertised workload."""
        matches = int(spec.requirement.matches(ontology, self.annotation))
        return self.policy(spec, matches)

    def prepare_submission_for(self, workload_id: str, executor_address: str,
                               enclave_key: PublicKey, issued_at: float,
                               rng: np.random.Generator
                               ) -> tuple[Envelope, ParticipationCertificate]:
        """Build the encrypted data blob and the participation certificate.

        The certificate Merkle-commits to the exact serialized rows; the
        envelope carries the same rows encrypted to the *attested* enclave
        key, so only the measured code can read them.  Kind-agnostic: both
        ML-training and aggregate workloads submit data this way.
        """
        rows = serialize_partition(self.dataset.features,
                                   self.dataset.targets)
        certificate = issue_certificate(
            self.wallet.key, workload_id, executor_address, rows,
            issued_at=issued_at,
        )
        envelope = Enclave.encrypt_for_enclave(
            enclave_key, self.wallet.key, self.partition_payload(), rng
        )
        return envelope, certificate

    def prepare_submission(self, spec: WorkloadSpec, executor_address: str,
                           enclave_key: PublicKey, issued_at: float,
                           rng: np.random.Generator
                           ) -> tuple[Envelope, ParticipationCertificate]:
        """Spec-based wrapper over :meth:`prepare_submission_for`."""
        return self.prepare_submission_for(
            spec.workload_id, executor_address, enclave_key,
            issued_at=issued_at, rng=rng,
        )


@dataclass
class ConsumerActor:
    """A data consumer: authors specs, pays escrow, collects results."""

    name: str
    wallet: Wallet
    validation: Optional[Dataset] = None

    @property
    def address(self) -> str:
        return self.wallet.address

    def evaluate_result(self, spec: WorkloadSpec,
                        params: np.ndarray) -> float:
        """Score the purchased model on the consumer's validation data."""
        if self.validation is None:
            raise MarketplaceError(f"consumer {self.name} has no validation set")
        model = spec.model.build(seed=spec.training.seed)
        model.set_params(np.asarray(params, dtype=float))
        return model.score(self.validation.features,
                           self.validation.targets)


@dataclass
class ExecutorActor:
    """An executor: wallet + TEE platform + per-workload enclaves."""

    name: str
    wallet: Wallet
    platform: TEEPlatform
    enclaves: dict[str, Enclave] = field(default_factory=dict)
    providers_served: dict[str, list[str]] = field(default_factory=dict)

    @property
    def address(self) -> str:
        return self.wallet.address

    @staticmethod
    def code_for(spec: WorkloadSpec) -> EnclaveCode:
        """The enclave code unit for a workload.

        Version-bound to the spec hash: two workloads with different specs
        have different measurements even though they share the entry point.
        """
        return EnclaveCode(
            name=f"pds2-workload-{spec.workload_id}",
            version=spec.spec_hash,
            entry_point=enclave_entry_point,
        )

    def launch_enclave_for(self, workload_id: str,
                           code: EnclaveCode) -> Enclave:
        """Launch (or return) the enclave for one workload by id + code.

        This is the kind-agnostic primitive both ML-training and aggregate
        workloads use; the spec-based helpers below delegate to it.
        """
        if workload_id not in self.enclaves:
            self.enclaves[workload_id] = self.platform.launch(code)
            self.providers_served[workload_id] = []
        return self.enclaves[workload_id]

    def launch_enclave(self, spec: WorkloadSpec) -> Enclave:
        """Launch (or return) the enclave for one ML workload."""
        return self.launch_enclave_for(spec.workload_id, self.code_for(spec))

    def quote_for_workload(self, workload_id: str, code: EnclaveCode) -> Quote:
        """Attestation quote for an arbitrary workload's enclave."""
        return AttestationService.produce_quote(
            self.launch_enclave_for(workload_id, code)
        )

    def quote_for(self, spec: WorkloadSpec) -> Quote:
        """Produce the attestation quote providers verify before sending."""
        return self.quote_for_workload(spec.workload_id, self.code_for(spec))

    def accept_data_for(self, workload_id: str, code: EnclaveCode,
                        provider_address: str, envelope: Envelope,
                        provider_key: PublicKey) -> None:
        """Provision one provider's encrypted partition into the enclave."""
        enclave = self.launch_enclave_for(workload_id, code)
        enclave.provision_input(
            f"provider:{provider_address}", envelope, provider_key
        )
        self.providers_served[workload_id].append(provider_address)

    def accept_data(self, spec: WorkloadSpec, provider_address: str,
                    envelope: Envelope,
                    provider_key: PublicKey) -> None:
        """Spec-based wrapper over :meth:`accept_data_for`."""
        self.accept_data_for(spec.workload_id, self.code_for(spec),
                             provider_address, envelope, provider_key)

    def execute_for(self, workload_id: str, code: EnclaveCode,
                    **run_kwargs: object) -> dict:
        """Run the measured enclave code and return its (plain) output.

        In the real deployment the output would stay encrypted end-to-end;
        the orchestration layer treats this dict as enclave output and only
        publishes its hash on-chain.
        """
        enclave = self.launch_enclave_for(workload_id, code)
        enclave.run(**run_kwargs)
        return enclave.extract_output()

    def execute(self, spec: WorkloadSpec, training_seed: int) -> dict:
        """Run the measured training code for one ML workload."""
        return self.execute_for(spec.workload_id, self.code_for(spec),
                                spec_dict=spec.to_dict(),
                                training_seed=training_seed)


def result_hash_of(params: np.ndarray, weights_bps: dict[str, int]) -> str:
    """Canonical hash executors vote on: parameters + payout weights.

    Parameters are rounded to 9 decimals so numerically identical runs
    produce identical hashes across executors.
    """
    from repro.crypto.hashing import hash_object

    payload = {
        "params": [round(float(v), 9) for v in params],
        "weights": {k: int(v) for k, v in sorted(weights_bps.items())},
    }
    return hash_object(payload).hex()
