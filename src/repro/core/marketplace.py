"""The PDS2 marketplace facade: the paper's Fig. 1/Fig. 2 wired together.

:class:`Marketplace` owns one instance of every substrate — blockchain +
governance contracts, attestation service, data catalog, manufacturer
registry — and provides the end-to-end lifecycle of a workload:

1. the consumer deploys a :class:`WorkloadContract` escrowing the reward;
2. storage subsystems match the spec's semantic requirement against each
   provider's catalog records; willing providers (per their policies) join;
3. executors launch measured enclaves and register on-chain;
4. each participating provider verifies the executor's attestation quote
   against the on-chain code measurement, then sends its encrypted data
   plus a signed participation certificate;
5. executors record certificates on-chain; once the consumer's conditions
   hold, execution starts;
6. enclaves train; executors aggregate parameters peer-to-peer (an
   all-reduce over their sample-weighted outputs), agree on payout weights,
   and submit quorum-confirmed results;
7. the contract pays providers and executors; the consumer retrieves and
   evaluates the model; anyone can audit the history.

Everything is deterministic under the marketplace seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.chain.blockchain import Blockchain, Wallet
from repro.chain.consensus import ProofOfAuthority
from repro.chain.contract import default_registry
from repro.chain.vm import VM
from repro.core.actors import (
    ConsumerActor,
    ExecutorActor,
    ParticipationPolicy,
    ProviderActor,
    accept_all_policy,
    result_hash_of,
)
from repro.core.workload import WorkloadSpec
from repro.errors import MarketplaceError, MatchingError
from repro.governance import register_governance_contracts
from repro.governance.audit import AuditReport, audit_workload
from repro.governance.contracts import BPS
from repro.identity.device import ManufacturerRegistry
from repro.ml.datasets import Dataset
from repro.storage.base import StorageBackend, content_address
from repro.storage.catalog import DataCatalog, DataRecord
from repro.storage.local import LocalEncryptedStore
from repro.storage.semantic import Ontology, SemanticAnnotation
from repro.tee.attestation import AttestationService
from repro.tee.enclave import TEEPlatform
from repro.utils.rng import derive_rng

#: Genesis balance granted to every actor wallet (covers gas + escrows).
DEFAULT_FUNDING = 10**12


@dataclass
class WorkloadRunReport:
    """Everything observable about one completed workload run."""

    workload_address: str
    spec: WorkloadSpec
    participants: list[str]
    executors: list[str]
    final_params: np.ndarray
    result_hash: str
    consumer_score: Optional[float]
    payouts: dict[str, int]
    weights_bps: dict[str, int]
    gas_used: int
    blocks_mined: int
    achieved_epsilon: Optional[float]
    audit: AuditReport

    @property
    def total_paid(self) -> int:
        return sum(self.payouts.values())


class Marketplace:
    """A complete, self-contained PDS2 deployment."""

    def __init__(self, seed: int = 0, validators: int = 3,
                 ontology: Optional[Ontology] = None,
                 mint_deeds: bool = True):
        self.seed = seed
        self._rng = derive_rng(seed, "marketplace")
        self.ontology = ontology if ontology is not None else Ontology.iot_default()
        self.catalog = DataCatalog(self.ontology)
        self.attestation = AttestationService()
        self.manufacturers = ManufacturerRegistry()
        self.clock = 0.0

        consensus = ProofOfAuthority.with_generated_validators(
            validators, derive_rng(seed, "validators")
        )
        registry = default_registry()
        register_governance_contracts(registry)
        self.chain = Blockchain(consensus, registry=registry)

        # Platform operator wallet deploys the shared registries.
        self.operator = self._new_wallet("operator")
        self.actor_registry = self.operator.deploy_and_mine("actor_registry")
        if mint_deeds:
            deed_minter = VM.contract_address_for(
                self.operator.address,
                self.chain.state.nonce_of(self.operator.address) + 1,
            )
            deed_tx = self.operator.deploy("erc721", name="PDS2 Data Deed",
                                           symbol="DEED", minter=deed_minter)
            self.chain.mine_block(self._tick())
            self.deed_token: Optional[str] = self.operator.deployed_address(
                deed_tx
            )
            self.data_registry = self.operator.deploy_and_mine(
                "data_registry", deed_token=self.deed_token
            )
        else:
            self.deed_token = None
            self.data_registry = self.operator.deploy_and_mine(
                "data_registry", deed_token=None
            )

        self.providers: list[ProviderActor] = []
        self.consumers: list[ConsumerActor] = []
        self.executors: list[ExecutorActor] = []

    # -- clock / wallet helpers ----------------------------------------------------

    def _tick(self) -> float:
        self.clock += 1.0
        return self.clock

    def _mine(self) -> None:
        self.chain.mine_block(self._tick())

    def _new_wallet(self, label: str) -> Wallet:
        wallet = Wallet.generate(
            self.chain, derive_rng(self.seed, f"wallet-{label}"), label
        )
        self.chain.state.credit(wallet.address, DEFAULT_FUNDING)
        return wallet

    # -- actor onboarding --------------------------------------------------------------

    def add_provider(self, name: str, dataset: Dataset,
                     annotation: SemanticAnnotation,
                     store: Optional[StorageBackend] = None,
                     policy: ParticipationPolicy = accept_all_policy,
                     ) -> ProviderActor:
        """Onboard a provider: wallet, role, storage, catalog + registry."""
        wallet = self._new_wallet(f"provider-{name}")
        if store is None:
            store = LocalEncryptedStore(
                wallet.address, derive_rng(self.seed, f"store-{name}")
            )
        provider = ProviderActor(
            name=name, wallet=wallet, dataset=dataset,
            annotation=annotation, store=store, policy=policy,
            record_id=f"record-{name}",
        )
        wallet.call(self.actor_registry, "register", role="provider")
        object_id = provider.store_dataset()
        payload_hash = content_address(provider.partition_payload())
        from repro.crypto.hashing import hash_object

        annotation_hash = hash_object(annotation.to_dict()).hex()
        wallet.call(
            self.data_registry, "register_dataset",
            record_id=provider.record_id, content_hash=payload_hash,
            annotation_hash=annotation_hash,
            size_bytes=len(provider.partition_payload()),
        )
        self._mine()
        self.catalog.register(DataRecord(
            record_id=provider.record_id,
            owner=wallet.address,
            backend_name=type(store).__name__,
            object_id=object_id,
            content_hash=payload_hash,
            size_bytes=len(provider.partition_payload()),
            created_at=self.clock,
            annotation=annotation,
        ))
        self.providers.append(provider)
        return provider

    def add_consumer(self, name: str,
                     validation: Optional[Dataset] = None) -> ConsumerActor:
        """Onboard a consumer with an optional private validation set."""
        wallet = self._new_wallet(f"consumer-{name}")
        wallet.call(self.actor_registry, "register", role="consumer")
        self._mine()
        consumer = ConsumerActor(name=name, wallet=wallet,
                                 validation=validation)
        self.consumers.append(consumer)
        return consumer

    def add_executor(self, name: str) -> ExecutorActor:
        """Onboard an executor: wallet, role, provisioned TEE platform."""
        wallet = self._new_wallet(f"executor-{name}")
        wallet.call(self.actor_registry, "register", role="executor")
        self._mine()
        platform = TEEPlatform(
            platform_id=f"platform-{name}",
            rng=derive_rng(self.seed, f"platform-{name}"),
        )
        self.attestation.provision_platform(platform)
        executor = ExecutorActor(name=name, wallet=wallet, platform=platform)
        self.executors.append(executor)
        return executor

    # -- the lifecycle -------------------------------------------------------------------

    def submit_workload(self, consumer: ConsumerActor,
                        spec: WorkloadSpec) -> str:
        """Phase 1 (Fig. 2): deploy the workload contract with escrow."""
        code = ExecutorActor.code_for(spec)
        address = consumer.wallet.deploy_and_mine(
            "workload", value=spec.reward_pool,
            spec_hash=spec.spec_hash,
            code_measurement=code.measurement.hex(),
            min_providers=spec.min_providers,
            min_samples=spec.min_samples,
            infra_share_bps=spec.infra_share_bps,
            required_confirmations=spec.required_confirmations,
        )
        return address

    def matching_providers(self, spec: WorkloadSpec) -> list[ProviderActor]:
        """Phase 2: storage-subsystem matching + provider consent."""
        willing = []
        for provider in self.providers:
            records = self.catalog.match_for_owner(
                spec.requirement, provider.address
            )
            if records and provider.wants_to_participate(spec,
                                                         self.ontology):
                willing.append(provider)
        return willing

    def run_workload(self, consumer: ConsumerActor, spec: WorkloadSpec,
                     executors: Optional[list[ExecutorActor]] = None,
                     ) -> WorkloadRunReport:
        """Run the complete Fig. 2 sequence and return the full report."""
        if executors is None:
            executors = list(self.executors)
        if not executors:
            raise MarketplaceError("no executors available")
        if spec.required_confirmations > len(executors):
            raise MarketplaceError(
                "spec requires more confirmations than executors exist"
            )
        gas_before = self._total_gas()
        blocks_before = self.chain.height

        workload_address = self.submit_workload(consumer, spec)

        participants = self.matching_providers(spec)
        if len(participants) < spec.min_providers:
            raise MatchingError(
                f"only {len(participants)} willing providers; "
                f"spec requires {spec.min_providers}"
            )

        # Phase 3: executors launch enclaves and register on-chain.
        code = ExecutorActor.code_for(spec)
        for executor in executors:
            executor.launch_enclave(spec)
            executor.wallet.call(
                workload_address, "register_executor",
                claimed_measurement=code.measurement.hex(),
            )
        self._mine()

        # Phase 4: providers attest executors, send data + certificates.
        onchain_measurement = consumer.wallet.view(
            workload_address, "code_measurement"
        )
        assignments: dict[str, list[ProviderActor]] = {
            executor.address: [] for executor in executors
        }
        for index, provider in enumerate(participants):
            executor = executors[index % len(executors)]
            quote = executor.quote_for(spec)
            enclave_key = self.attestation.verify(
                quote,
                expected_measurement=bytes.fromhex(onchain_measurement),
            )
            envelope, certificate = provider.prepare_submission(
                spec, executor.address, enclave_key,
                issued_at=self._tick(),
                rng=derive_rng(self.seed, f"submit-{provider.name}"),
            )
            certificate.verify()
            executor.accept_data(
                spec, provider.address, envelope,
                provider.wallet.key.public_key,
            )
            executor.wallet.call(
                workload_address, "submit_participation",
                provider=provider.address,
                certificate_hash=certificate.certificate_hash.hex(),
                data_root=certificate.data_root.hex(),
                item_count=certificate.item_count,
            )
            assignments[executor.address].append(provider)
        self._mine()

        # Phase 5: gate execution on the consumer's preconditions.
        consumer.wallet.call(workload_address, "start_execution")
        self._mine()

        # Phase 6: enclaves train; executors all-reduce and vote.
        outputs = []
        active_executors = [
            executor for executor in executors
            if assignments[executor.address]
        ]
        for executor in active_executors:
            outputs.append(executor.execute(spec, training_seed=self.seed))
        final_params, weights_bps, achieved_epsilon = (
            self._aggregate_outputs(spec, outputs)
        )
        result_hash = result_hash_of(final_params, weights_bps)
        for executor in active_executors[:spec.required_confirmations]:
            executor.wallet.call(
                workload_address, "submit_result",
                result_hash=result_hash,
                provider_weights_bps=weights_bps,
            )
        self._mine()

        state = consumer.wallet.view(workload_address, "state")
        if state != "complete":
            raise MarketplaceError(
                f"workload did not complete (state={state!r})"
            )

        # Phase 7: retrieval, payout accounting, audit.
        payouts: dict[str, int] = {}
        for _, log in self.chain.events(name="RewardPaid",
                                        address=workload_address):
            payouts[log.data["recipient"]] = (
                payouts.get(log.data["recipient"], 0)
                + int(log.data["amount"])
            )
        for provider in participants:
            provider.rewards_received += payouts.get(provider.address, 0)
        consumer_score = None
        if consumer.validation is not None:
            consumer_score = consumer.evaluate_result(spec, final_params)
        report = WorkloadRunReport(
            workload_address=workload_address,
            spec=spec,
            participants=[p.address for p in participants],
            executors=[e.address for e in executors],
            final_params=final_params,
            result_hash=result_hash,
            consumer_score=consumer_score,
            payouts=payouts,
            weights_bps=weights_bps,
            gas_used=self._total_gas() - gas_before,
            blocks_mined=self.chain.height - blocks_before,
            achieved_epsilon=achieved_epsilon,
            audit=audit_workload(self.chain, workload_address,
                                 auditor=consumer.address),
        )
        return report

    def run_aggregate_workload(self, consumer: ConsumerActor,
                               workload_id: str, requirement,
                               agg_spec, reward_pool: int = 100_000,
                               min_providers: int = 1,
                               min_samples: int = 1,
                               infra_share_bps: int = 1000,
                               required_confirmations: int = 1):
        """Run a *statistical aggregate* workload through the full lifecycle.

        The paper generalizes PDS2 beyond ML training; this is that other
        workload class on exactly the same machinery: the same contract,
        certificates, attestation and quorum — only the enclave entry point
        (and the result: a statistic, not a model) differ.  Returns
        ``(AggregateResult, AuditReport, workload_address)``.
        """
        from repro.core.aggregates import (
            AggregateResult,
            aggregate_enclave_entry_point,
            combine_aggregate_outputs,
        )
        from repro.core.actors import result_hash_of
        from repro.crypto.hashing import hash_object
        from repro.governance.audit import audit_workload
        from repro.tee.enclave import EnclaveCode

        executors = list(self.executors)
        if not executors:
            raise MarketplaceError("no executors available")
        spec_dict = agg_spec.to_dict()
        code = EnclaveCode(
            name=f"pds2-aggregate-{workload_id}",
            version=hash_object(spec_dict).hex(),
            entry_point=aggregate_enclave_entry_point,
        )
        workload_address = consumer.wallet.deploy_and_mine(
            "workload", value=reward_pool,
            spec_hash=hash_object(spec_dict).hex(),
            code_measurement=code.measurement.hex(),
            min_providers=min_providers, min_samples=min_samples,
            infra_share_bps=infra_share_bps,
            required_confirmations=required_confirmations,
        )
        participants = [
            provider for provider in self.providers
            if self.catalog.match_for_owner(requirement, provider.address)
        ]
        if len(participants) < min_providers:
            raise MatchingError("not enough providers for the aggregate")

        from repro.core.workload import serialize_partition
        from repro.governance.certificates import issue_certificate
        from repro.tee.enclave import Enclave

        enclaves = {}
        for executor in executors:
            enclave = executor.platform.launch(code)
            enclaves[executor.address] = enclave
            executor.wallet.call(
                workload_address, "register_executor",
                claimed_measurement=code.measurement.hex(),
            )
        self._mine()

        assignments = {executor.address: 0 for executor in executors}
        for index, provider in enumerate(participants):
            executor = executors[index % len(executors)]
            enclave = enclaves[executor.address]
            quote = AttestationService.produce_quote(enclave)
            enclave_key = self.attestation.verify(
                quote, expected_measurement=code.measurement,
            )
            rows = serialize_partition(provider.dataset.features,
                                       provider.dataset.targets)
            certificate = issue_certificate(
                provider.wallet.key, workload_id, executor.address, rows,
                issued_at=self._tick(),
            )
            envelope = Enclave.encrypt_for_enclave(
                enclave_key, provider.wallet.key,
                provider.partition_payload(),
                derive_rng(self.seed, f"agg-{workload_id}-{provider.name}"),
            )
            enclave.provision_input(
                f"provider:{provider.address}", envelope,
                provider.wallet.key.public_key,
            )
            executor.wallet.call(
                workload_address, "submit_participation",
                provider=provider.address,
                certificate_hash=certificate.certificate_hash.hex(),
                data_root=certificate.data_root.hex(),
                item_count=certificate.item_count,
            )
            assignments[executor.address] += 1
        self._mine()
        consumer.wallet.call(workload_address, "start_execution")
        self._mine()

        outputs = []
        sample_counts: dict[str, float] = {}
        for executor in executors:
            if assignments[executor.address] == 0:
                continue
            enclave = enclaves[executor.address]
            enclave.run(agg_spec=spec_dict, noise_seed=self.seed)
            output = enclave.extract_output()
            outputs.append(output)
            for provider, count in output["sample_counts"].items():
                sample_counts[provider] = (
                    sample_counts.get(provider, 0) + count
                )
        combined = combine_aggregate_outputs(agg_spec.kind, outputs)

        total = sum(sample_counts.values())
        providers_sorted = sorted(sample_counts)
        weights_bps: dict[str, int] = {}
        assigned = 0
        for provider in providers_sorted[:-1]:
            share = int(round(sample_counts[provider] / total * BPS))
            weights_bps[provider] = share
            assigned += share
        weights_bps[providers_sorted[-1]] = BPS - assigned

        statistic_vector = (np.atleast_1d(np.asarray(combined, dtype=float)))
        result_hash = result_hash_of(statistic_vector, weights_bps)
        for executor in executors[:required_confirmations]:
            executor.wallet.call(
                workload_address, "submit_result",
                result_hash=result_hash,
                provider_weights_bps=weights_bps,
            )
        self._mine()
        state = consumer.wallet.view(workload_address, "state")
        if state != "complete":
            raise MarketplaceError(
                f"aggregate workload did not complete (state={state!r})"
            )
        result = AggregateResult(
            statistic=combined, kind=agg_spec.kind,
            dp_epsilon=agg_spec.dp_epsilon,
            total_samples=int(total),
            sample_counts={k: int(v) for k, v in sample_counts.items()},
        )
        audit = audit_workload(self.chain, workload_address,
                               auditor=consumer.address)
        return result, audit, workload_address

    # -- aggregation helpers ----------------------------------------------------------------

    @staticmethod
    def _aggregate_outputs(spec: WorkloadSpec, outputs: list[dict]
                           ) -> tuple[np.ndarray, dict[str, int],
                                      Optional[float]]:
        """Decentralized aggregation: all-reduce executor enclave outputs.

        Parameters are averaged weighted by trained sample counts (the
        deterministic fixed point the executors' peer-to-peer averaging
        converges to); payout weights come from certified sample counts or
        from enclave-computed Shapley fractions scaled by each executor's
        data share.
        """
        if not outputs:
            raise MarketplaceError("no enclave outputs to aggregate")
        weights = np.array([out["trained_samples"] for out in outputs],
                           dtype=float)
        stacked = np.stack([
            np.asarray(out["params"], dtype=float) for out in outputs
        ])
        final_params = (weights / weights.sum()) @ stacked

        raw: dict[str, float] = {}
        total_samples = float(sum(out["trained_samples"] for out in outputs))
        for out in outputs:
            executor_share = out["trained_samples"] / total_samples
            if "shapley_fractions" in out:
                for provider, fraction in out["shapley_fractions"].items():
                    raw[provider] = (raw.get(provider, 0.0)
                                     + fraction * executor_share)
            else:
                executor_total = float(sum(out["sample_counts"].values()))
                for provider, count in out["sample_counts"].items():
                    raw[provider] = (raw.get(provider, 0.0)
                                     + (count / executor_total)
                                     * executor_share)
        total = sum(raw.values())
        providers = sorted(raw)
        bps: dict[str, int] = {}
        assigned = 0
        for provider in providers[:-1]:
            share = int(round(raw[provider] / total * BPS))
            bps[provider] = share
            assigned += share
        bps[providers[-1]] = BPS - assigned
        epsilons = [out.get("achieved_epsilon") for out in outputs]
        achieved = None
        known = [e for e in epsilons if e is not None]
        if known:
            achieved = max(known)
        return final_params, bps, achieved

    def _total_gas(self) -> int:
        return sum(block.header.gas_used for block in self.chain.blocks)
