"""The PDS2 marketplace facade: the paper's Fig. 1/Fig. 2 wired together.

:class:`Marketplace` owns one instance of every substrate — blockchain +
governance contracts, attestation service, data catalog, manufacturer
registry — plus the structured :class:`~repro.core.events.EventBus` every
layer reports into.  The Fig. 2 workload lifecycle itself lives in
:mod:`repro.core.lifecycle`: :meth:`Marketplace.run_workload` and
:meth:`Marketplace.run_aggregate_workload` are thin drivers that build a
:class:`~repro.core.lifecycle.WorkloadKind` strategy and hand it to one
:class:`~repro.core.lifecycle.WorkloadSession`, which walks the phase
state machine:

1. **deploy** — the consumer deploys a workload contract escrowing the
   reward;
2. **match** — storage subsystems match the spec's semantic requirement
   against each provider's catalog records; willing providers (per their
   policies) join;
3. **register_executors** — executors launch measured enclaves and
   register on-chain;
4. **attest_and_submit** — each participating provider verifies the
   executor's attestation quote against the on-chain code measurement,
   then sends its encrypted data plus a signed participation certificate;
5. **start_execution** — once the consumer's conditions hold, execution
   starts;
6. **execute / aggregate** — enclaves run; executors all-reduce their
   outputs and agree on payout weights;
7. **settle** — quorum-confirmed results trigger the contract payout;
8. **audit** — anyone re-derives the history and cross-checks it against
   the session's event trail.

Everything is deterministic under the marketplace seed.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.chain.block import Block
from repro.chain.blockchain import Blockchain, Wallet
from repro.chain.consensus import ProofOfAuthority
from repro.chain.contract import default_registry
from repro.chain.vm import VM
from repro.core.actors import (
    ConsumerActor,
    ExecutorActor,
    ParticipationPolicy,
    ProviderActor,
    accept_all_policy,
)
from repro.core.events import EventBus, LifecycleEvent, RingBufferSink
from repro.core.lifecycle import (
    AggregateWorkloadKind,
    MLTrainingKind,
    WorkloadSession,
)
from repro.core.workload import WorkloadSpec
from repro.errors import MarketplaceError
from repro.governance import register_governance_contracts
from repro.governance.audit import AuditReport
from repro.identity.device import ManufacturerRegistry
from repro.ml.datasets import Dataset
from repro.storage.base import StorageBackend, content_address
from repro.storage.catalog import DataCatalog, DataRecord
from repro.storage.local import LocalEncryptedStore
from repro.storage.semantic import Ontology, SemanticAnnotation
from repro.tee.attestation import AttestationService, Quote
from repro.tee.enclave import Enclave, TEEPlatform
from repro import telemetry
from repro.utils.rng import derive_rng

#: Genesis balance granted to every actor wallet (covers gas + escrows).
DEFAULT_FUNDING = 10**12


@dataclass
class WorkloadRunReport:
    """Everything observable about one completed workload run."""

    workload_address: str
    spec: WorkloadSpec
    participants: list[str]
    executors: list[str]
    final_params: np.ndarray
    result_hash: str
    consumer_score: Optional[float]
    payouts: dict[str, int]
    weights_bps: dict[str, int]
    gas_used: int
    blocks_mined: int
    achieved_epsilon: Optional[float]
    audit: AuditReport
    #: Executors that actually received data and executed (a subset of
    #: ``executors``, which lists every registered executor — with more
    #: executors than providers, round-robin leaves some idle).
    active_executors: list[str] = field(default_factory=list)
    session_id: str = ""
    #: True when the session finished on a partial quorum (one or more
    #: executors lost mid-run, payouts reweighted over the survivors).
    degraded: bool = False
    #: Recovery actions the lifecycle engine applied, in order.
    recoveries: list[dict] = field(default_factory=list)
    #: Executors blacklisted for this session after crashing.
    blacklisted: list[str] = field(default_factory=list)

    @property
    def total_paid(self) -> int:
        return sum(self.payouts.values())


class Marketplace:
    """A complete, self-contained PDS2 deployment."""

    def __init__(self, seed: int = 0, validators: int = 3,
                 ontology: Optional[Ontology] = None,
                 mint_deeds: bool = True):
        self.seed = seed
        self._rng = derive_rng(seed, "marketplace")
        self.ontology = ontology if ontology is not None else Ontology.iot_default()
        self.catalog = DataCatalog(self.ontology)
        self.attestation = AttestationService()
        self.manufacturers = ManufacturerRegistry()
        self.clock = 0.0

        # Structured observability: every layer reports into this bus; the
        # ring buffer keeps the recent history queryable in-process.
        self.events = EventBus()
        self.event_log = RingBufferSink()
        self.events.attach(self.event_log)
        self._active: Optional[WorkloadSession] = None
        self._session_counter = 0

        # Telemetry: this marketplace drives the process tracer's sim clock
        # and publishes every finished span as a `span.end` event, which is
        # how spans reach JSONL traces and `python -m repro spans`.  The
        # metrics registry is process-global (subsystems hold module-level
        # handles); the tracer clock follows whichever marketplace was
        # constructed last — one simulation at a time, like the sim itself.
        self.metrics = telemetry.REGISTRY
        self.tracer = telemetry.tracer()
        self.tracer.sim_clock = lambda: self.clock
        self.tracer.on_finish = self._record_span

        consensus = ProofOfAuthority.with_generated_validators(
            validators, derive_rng(seed, "validators")
        )
        registry = default_registry()
        register_governance_contracts(registry)
        self.chain = Blockchain(consensus, registry=registry)
        self.chain.block_observers.append(self._record_block)
        self.attestation.on_verified = self._record_attestation

        # Platform operator wallet deploys the shared registries.
        self.operator = self._new_wallet("operator")
        self.actor_registry = self.operator.deploy_and_mine("actor_registry")
        if mint_deeds:
            deed_minter = VM.contract_address_for(
                self.operator.address,
                self.chain.state.nonce_of(self.operator.address) + 1,
            )
            deed_tx = self.operator.deploy("erc721", name="PDS2 Data Deed",
                                           symbol="DEED", minter=deed_minter)
            self.chain.mine_block(self._tick())
            self.deed_token: Optional[str] = self.operator.deployed_address(
                deed_tx
            )
            self.data_registry = self.operator.deploy_and_mine(
                "data_registry", deed_token=self.deed_token
            )
        else:
            self.deed_token = None
            self.data_registry = self.operator.deploy_and_mine(
                "data_registry", deed_token=None
            )

        self.providers: list[ProviderActor] = []
        self.consumers: list[ConsumerActor] = []
        self.executors: list[ExecutorActor] = []

    # -- clock / wallet helpers ----------------------------------------------------

    def _tick(self) -> float:
        self.clock += 1.0
        return self.clock

    def advance_clock(self, seconds: float) -> float:
        """Advance the sim clock without mining (retry backoff waits).

        Recovery policies sleep on *this* clock — never wall time — so
        injected runs stay deterministic.
        """
        if not math.isfinite(seconds) or seconds < 0:
            raise MarketplaceError(
                f"clock can only advance by a finite non-negative amount, "
                f"got {seconds!r}"
            )
        self.clock += float(seconds)
        return self.clock

    def _mine(self) -> None:
        self.chain.mine_block(self._tick())

    def _new_wallet(self, label: str) -> Wallet:
        wallet = Wallet.generate(
            self.chain, derive_rng(self.seed, f"wallet-{label}"), label
        )
        self.chain.state.credit(wallet.address, DEFAULT_FUNDING)
        return wallet

    # -- event plumbing ------------------------------------------------------------

    def next_session_id(self, workload_id: str) -> str:
        self._session_counter += 1
        return f"session-{self._session_counter:04d}-{workload_id}"

    @contextmanager
    def active_session(self, session: WorkloadSession) -> Iterator[None]:
        """Attribute chain/TEE events to ``session`` while it runs.

        Beyond event attribution, this scopes the whole telemetry layer to
        the session: every span opened inside (chain, TEE, storage — not
        just lifecycle) inherits a ``session_id`` attribute via the tracer
        context, and every metric child touched inside is split out under a
        ``session_id`` ambient label, so profiler and harness output can be
        filtered per session.
        """
        if self._active is not None:
            raise MarketplaceError(
                f"session {self._active.session_id} is already running"
            )
        self._active = session
        try:
            with self.tracer.scoped_context(session_id=session.session_id), \
                    self.metrics.context_labels(
                        session_id=session.session_id):
                yield
        finally:
            self._active = None

    def publish_event(self, name: str, *,
                      session: Optional[WorkloadSession] = None,
                      gas_delta: int = 0, block_height: int = -1,
                      actor: str = "",
                      data: Optional[dict] = None) -> LifecycleEvent:
        """Emit one event on the bus, attributed to the given (or active)
        session's current phase; platform-level events (onboarding,
        out-of-session mining) carry an empty session id."""
        session = session if session is not None else self._active
        event = self.events.emit(
            session_id=session.session_id if session else "",
            phase=session.state if session else "platform",
            name=name,
            sim_clock=self.clock,
            gas_delta=gas_delta,
            block_height=block_height,
            actor=actor,
            data=data,
        )
        if session is not None:
            session.trail.append(event)
        return event

    def _record_block(self, block: Block) -> None:
        """Chain hook: one event per mined block (carrying the gas delta)
        plus one per contract log, so session gas accounting and the
        audit-trail cross-check both derive from the event stream."""
        self.publish_event(
            "chain.block_mined",
            gas_delta=block.header.gas_used,
            block_height=block.header.number,
            actor=block.header.validator,
            data={"transactions": len(block.transactions)},
        )
        for log in self.chain.logs_of(block):
            self.publish_event(
                "chain.log",
                block_height=block.header.number,
                actor=log.address,
                data={"log_name": log.name, "log_address": log.address},
            )

    def _record_span(self, span: "telemetry.Span") -> None:
        """Tracer hook: every finished span becomes a ``span.end`` event
        (attributed to the active session, so a session's trace carries
        its own span tree)."""
        self.publish_event("span.end", data=span.to_dict())

    def _record_attestation(self, quote: Quote) -> None:
        """Attestation hook: a quote passed verification."""
        self.publish_event(
            "tee.attestation_verified",
            actor=quote.platform_id,
            data={"measurement": quote.measurement.hex()},
        )

    def _record_enclave_launch(self, enclave: Enclave) -> None:
        """TEE hook: a platform launched a measured enclave."""
        self.publish_event(
            "tee.enclave_launched",
            actor=enclave.platform.platform_id,
            data={"code": enclave.code.name,
                  "measurement": enclave.measurement.hex()},
        )

    # -- actor onboarding --------------------------------------------------------------

    def add_provider(self, name: str, dataset: Dataset,
                     annotation: SemanticAnnotation,
                     store: Optional[StorageBackend] = None,
                     policy: ParticipationPolicy = accept_all_policy,
                     ) -> ProviderActor:
        """Onboard a provider: wallet, role, storage, catalog + registry."""
        wallet = self._new_wallet(f"provider-{name}")
        if store is None:
            store = LocalEncryptedStore(
                wallet.address, derive_rng(self.seed, f"store-{name}")
            )
        provider = ProviderActor(
            name=name, wallet=wallet, dataset=dataset,
            annotation=annotation, store=store, policy=policy,
            record_id=f"record-{name}",
        )
        wallet.call(self.actor_registry, "register", role="provider")
        object_id = provider.store_dataset()
        payload_hash = content_address(provider.partition_payload())
        from repro.crypto.hashing import hash_object

        annotation_hash = hash_object(annotation.to_dict()).hex()
        wallet.call(
            self.data_registry, "register_dataset",
            record_id=provider.record_id, content_hash=payload_hash,
            annotation_hash=annotation_hash,
            size_bytes=len(provider.partition_payload()),
        )
        self._mine()
        self.catalog.register(DataRecord(
            record_id=provider.record_id,
            owner=wallet.address,
            backend_name=type(store).__name__,
            object_id=object_id,
            content_hash=payload_hash,
            size_bytes=len(provider.partition_payload()),
            created_at=self.clock,
            annotation=annotation,
        ))
        self.providers.append(provider)
        return provider

    def add_consumer(self, name: str,
                     validation: Optional[Dataset] = None) -> ConsumerActor:
        """Onboard a consumer with an optional private validation set."""
        wallet = self._new_wallet(f"consumer-{name}")
        wallet.call(self.actor_registry, "register", role="consumer")
        self._mine()
        consumer = ConsumerActor(name=name, wallet=wallet,
                                 validation=validation)
        self.consumers.append(consumer)
        return consumer

    def add_executor(self, name: str) -> ExecutorActor:
        """Onboard an executor: wallet, role, provisioned TEE platform."""
        wallet = self._new_wallet(f"executor-{name}")
        wallet.call(self.actor_registry, "register", role="executor")
        self._mine()
        platform = TEEPlatform(
            platform_id=f"platform-{name}",
            rng=derive_rng(self.seed, f"platform-{name}"),
        )
        platform.on_launch = self._record_enclave_launch
        self.attestation.provision_platform(platform)
        executor = ExecutorActor(name=name, wallet=wallet, platform=platform)
        self.executors.append(executor)
        return executor

    # -- the lifecycle -------------------------------------------------------------------

    def submit_workload(self, consumer: ConsumerActor,
                        spec: WorkloadSpec) -> str:
        """Phase 1 (Fig. 2): deploy the workload contract with escrow."""
        code = ExecutorActor.code_for(spec)
        address = consumer.wallet.deploy_and_mine(
            "workload", value=spec.reward_pool,
            spec_hash=spec.spec_hash,
            code_measurement=code.measurement.hex(),
            min_providers=spec.min_providers,
            min_samples=spec.min_samples,
            infra_share_bps=spec.infra_share_bps,
            required_confirmations=spec.required_confirmations,
        )
        return address

    def matching_providers(self, spec: WorkloadSpec) -> list[ProviderActor]:
        """Phase 2: storage-subsystem matching + provider consent."""
        willing = []
        for provider in self.providers:
            records = self.catalog.match_for_owner(
                spec.requirement, provider.address
            )
            if records and provider.wants_to_participate(spec,
                                                         self.ontology):
                willing.append(provider)
        return willing

    def session_for(self, consumer: ConsumerActor, kind,
                    executors: Optional[list[ExecutorActor]] = None,
                    **session_kwargs) -> WorkloadSession:
        """Build a lifecycle session over this marketplace's substrates."""
        return WorkloadSession(self, consumer, kind, executors=executors,
                               **session_kwargs)

    def run_workload(self, consumer: ConsumerActor, spec: WorkloadSpec,
                     executors: Optional[list[ExecutorActor]] = None,
                     ) -> WorkloadRunReport:
        """Run the complete Fig. 2 sequence and return the full report."""
        return self.session_for(
            consumer, MLTrainingKind(spec), executors=executors
        ).run()

    def run_aggregate_workload(self, consumer: ConsumerActor,
                               workload_id: str, requirement,
                               agg_spec, reward_pool: int = 100_000,
                               min_providers: int = 1,
                               min_samples: int = 1,
                               infra_share_bps: int = 1000,
                               required_confirmations: int = 1):
        """Run a *statistical aggregate* workload through the full lifecycle.

        The paper generalizes PDS2 beyond ML training; this is that other
        workload class on exactly the same engine: the same contract,
        certificates, attestation and quorum — only the enclave entry point
        (and the result: a statistic, not a model) differ.  Returns
        ``(AggregateResult, AuditReport, workload_address)``.
        """
        kind = AggregateWorkloadKind(
            workload_id, requirement, agg_spec,
            reward_pool=reward_pool, min_providers=min_providers,
            min_samples=min_samples, infra_share_bps=infra_share_bps,
            required_confirmations=required_confirmations,
        )
        return self.session_for(consumer, kind).run()

    # -- accounting helpers ----------------------------------------------------------------

    def _total_gas(self) -> int:
        """Cumulative gas, maintained at mine time (O(1), not O(blocks))."""
        return self.chain.total_gas_used
