"""Externalizable session state: checkpoints and mid-lifecycle restore.

A :class:`SessionCheckpoint` is the versioned, canonically-serialized
projection of one :class:`~repro.core.lifecycle.WorkloadSession`'s mutable
progress — current phase and next (re-)entry phase, the PR 4 bookkeeping
sets (registered / submitted / certified / executed / voted), retry
counters, blacklist, payouts, the aggregated result, the event trail, and
the armed fault injector's remaining budget.  It is coherent exactly at
*phase boundaries*, which is where the engine fires ``on_phase_boundary``
(after every completed phase and after every applied recovery directive).

Two restore modes share this format:

* **Rehydration** (:func:`restore_session`) rebuilds a live session
  against a marketplace that still holds the checkpoint's chain, enclave
  and actor state — i.e. the same :class:`~repro.core.marketplace.
  Marketplace` object, or a deterministic twin that replayed up to the
  same boundary.  Every lifecycle phase contributes a ``restore()``
  validation re-establishing its invariants against that market;
  violations raise :class:`~repro.errors.CheckpointError` instead of
  corrupting the resumed run.

* **Replay verification** (used by :mod:`repro.control.supervisor` for
  cross-process resume, where in-memory chain and enclave state died with
  the worker): re-run the job from its seed and compare
  :meth:`SessionCheckpoint.digest` at each boundary against the journaled
  digests.  The digest covers :meth:`progress_dict` — a deterministic
  projection that excludes wall-clock-bearing fields (the raw event
  trail), so two processes reaching the same boundary at the same seed
  produce the same digest.

Format versioning: ``CHECKPOINT_FORMAT`` names the wire format; parsing a
checkpoint with an unknown format string fails loudly rather than
guessing.  Additive evolution bumps the minor suffix; field removals or
semantic changes bump the major name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.core.events import LifecycleEvent
from repro.core.lifecycle import (
    LIFECYCLE_PHASES,
    PHASE_INDEX,
    STATE_CREATED,
    TERMINAL_STATES,
    TRANSITIONS,
    WorkloadKind,
    WorkloadSession,
)
from repro.errors import CheckpointError
from repro.utils.serialization import canonical_json_bytes, from_canonical_json

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.actors import ConsumerActor, ExecutorActor, ProviderActor
    from repro.core.marketplace import Marketplace

#: Wire-format identifier; bump on incompatible change (see module docs).
CHECKPOINT_FORMAT = "pds2-session-checkpoint/1"


@dataclass
class SessionCheckpoint:
    """One session's externalized progress, coherent at a phase boundary."""

    session_id: str
    workload_id: str
    #: Canonical hash of the workload spec — restore refuses a kind whose
    #: spec hash differs (the checkpoint belongs to a different workload).
    spec_hash: str
    #: The phase the session last completed (or was failing in, on a
    #: recovery edge); ``created`` before the first phase.
    state: str
    #: The phase the resumed session (re-)enters.  On the happy path this
    #: is the successor of ``state``; on a RECOVERY_TRANSITIONS edge it can
    #: be ``state`` itself or an earlier phase.
    next_phase: str
    consumer: str = ""
    workload_address: str = ""
    participants: list[str] = field(default_factory=list)
    executors: list[str] = field(default_factory=list)
    active_executors: list[str] = field(default_factory=list)
    #: Executor address -> provider addresses whose data its enclave holds.
    assignments: dict[str, list[str]] = field(default_factory=dict)
    outputs: list[dict] = field(default_factory=list)
    result_vector: np.ndarray = field(default_factory=lambda: np.zeros(0))
    weights_bps: dict[str, int] = field(default_factory=dict)
    result_hash: str = ""
    extra: dict = field(default_factory=dict)
    final_state: str = ""
    payouts: dict[str, int] = field(default_factory=dict)
    # -- PR 4 bookkeeping (sorted for canonical bytes) ---------------------
    registered: list[str] = field(default_factory=list)
    submitted: list[str] = field(default_factory=list)
    certified: list[str] = field(default_factory=list)
    executed: list[str] = field(default_factory=list)
    voted: list[str] = field(default_factory=list)
    blacklist: list[str] = field(default_factory=list)
    dropped_providers: list[str] = field(default_factory=list)
    degraded: bool = False
    retries: dict[str, int] = field(default_factory=dict)
    recovery_log: list[dict] = field(default_factory=list)
    refunded: int = 0
    # -- derived accounting, for cross-checks and replay digests -----------
    gas_used: int = 0
    blocks_mined: int = 0
    sim_clock: float = 0.0
    #: The session's event trail (``LifecycleEvent.to_dict`` records).
    #: Restored verbatim so gas accounting and the audit phase's
    #: trail-covers-chain cross-check survive a pause/resume.
    trail: list[dict] = field(default_factory=list)
    #: Armed fault injector state (plan + per-fault remaining budget +
    #: injected log), or None when the session runs without injection.
    injector: Optional[dict] = None

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": CHECKPOINT_FORMAT,
            "session_id": self.session_id,
            "workload_id": self.workload_id,
            "spec_hash": self.spec_hash,
            "state": self.state,
            "next_phase": self.next_phase,
            "consumer": self.consumer,
            "workload_address": self.workload_address,
            "participants": list(self.participants),
            "executors": list(self.executors),
            "active_executors": list(self.active_executors),
            "assignments": {k: list(v) for k, v in self.assignments.items()},
            "outputs": self.outputs,
            "result_vector": np.asarray(self.result_vector, dtype=float),
            "weights_bps": dict(self.weights_bps),
            "result_hash": self.result_hash,
            "extra": self.extra,
            "final_state": self.final_state,
            "payouts": dict(self.payouts),
            "registered": sorted(self.registered),
            "submitted": sorted(self.submitted),
            "certified": sorted(self.certified),
            "executed": sorted(self.executed),
            "voted": sorted(self.voted),
            "blacklist": list(self.blacklist),
            "dropped_providers": sorted(self.dropped_providers),
            "degraded": self.degraded,
            "retries": dict(self.retries),
            "recovery_log": self.recovery_log,
            "refunded": self.refunded,
            "gas_used": self.gas_used,
            "blocks_mined": self.blocks_mined,
            "sim_clock": self.sim_clock,
            "trail": self.trail,
            "injector": self.injector,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SessionCheckpoint":
        fmt = record.get("format")
        if fmt != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"unknown checkpoint format {fmt!r} "
                f"(this build reads {CHECKPOINT_FORMAT!r})"
            )
        known = {f for f in cls.__dataclass_fields__}
        fields = {k: v for k, v in record.items() if k in known}
        fields["result_vector"] = np.asarray(
            record.get("result_vector", []), dtype=float
        )
        fields["injector"] = record.get("injector")
        return cls(**fields)

    def to_bytes(self) -> bytes:
        """The canonical wire encoding (stable across processes)."""
        return canonical_json_bytes(self.to_dict())

    @classmethod
    def from_bytes(cls, payload: bytes | str) -> "SessionCheckpoint":
        try:
            record = from_canonical_json(payload)
        except (ValueError, TypeError) as exc:
            raise CheckpointError(f"unparseable checkpoint: {exc}") from exc
        if not isinstance(record, dict):
            raise CheckpointError("checkpoint payload is not an object")
        return cls.from_dict(record)

    def progress_dict(self) -> dict:
        """The deterministic projection :meth:`digest` covers.

        Excludes the raw trail (whose events carry wall-clock stamps and
        bus sequence numbers that differ between processes) but keeps
        every seed-determined field, including gas/block totals and the
        injector's fired-fault log — so equal digests mean two runs made
        byte-identical progress.
        """
        record = self.to_dict()
        del record["trail"]
        injector = record.pop("injector")
        if injector is not None:
            record["injector"] = {
                "plan": injector.get("plan"),
                "remaining": injector.get("remaining"),
                "injected": injector.get("injected"),
            }
        return record

    def digest(self) -> str:
        """SHA-256 over the canonical bytes of :meth:`progress_dict`."""
        return sha256(canonical_json_bytes(self.progress_dict())).hexdigest()


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------


def checkpoint_session(session: WorkloadSession) -> SessionCheckpoint:
    """Capture ``session``'s progress (see ``WorkloadSession.checkpoint``)."""
    if session.state in TERMINAL_STATES:
        raise CheckpointError(
            f"cannot checkpoint a session in terminal state {session.state!r}"
        )
    ctx = session.ctx
    injector_state: Optional[dict] = None
    if session.injector is not None:
        state_dict = getattr(session.injector, "state_dict", None)
        if state_dict is None:
            raise CheckpointError(
                f"injector {type(session.injector).__name__} does not "
                "support checkpointing (no state_dict())"
            )
        injector_state = state_dict()
    return SessionCheckpoint(
        session_id=session.session_id,
        workload_id=session.kind.workload_id,
        spec_hash=session.kind.spec_hash(),
        state=session.state,
        next_phase=session.next_phase,
        consumer=session.consumer.address,
        workload_address=ctx.workload_address,
        participants=[p.address for p in ctx.participants],
        executors=[e.address for e in ctx.executors],
        active_executors=[e.address for e in ctx.active_executors],
        assignments={
            executor: [p.address for p in providers]
            for executor, providers in ctx.assignments.items()
        },
        outputs=list(ctx.outputs),
        result_vector=np.asarray(ctx.result_vector, dtype=float),
        weights_bps=dict(ctx.weights_bps),
        result_hash=ctx.result_hash,
        extra=dict(ctx.extra),
        final_state=ctx.final_state,
        payouts=dict(ctx.payouts),
        registered=sorted(ctx.registered),
        submitted=sorted(ctx.submitted),
        certified=sorted(ctx.certified),
        executed=sorted(ctx.executed),
        voted=sorted(ctx.voted),
        blacklist=list(ctx.blacklist),
        dropped_providers=sorted(ctx.dropped_providers),
        degraded=ctx.degraded,
        retries=dict(ctx.retries),
        recovery_log=[dict(entry) for entry in ctx.recovery_log],
        refunded=ctx.refunded,
        gas_used=session.gas_used,
        blocks_mined=session.blocks_mined,
        sim_clock=session.market.clock,
        trail=[event.to_dict() for event in session.trail],
        injector=injector_state,
    )


# ---------------------------------------------------------------------------
# Restore
# ---------------------------------------------------------------------------


def _resolve(kind_name: str, wanted: list[str], pool: dict,
             session_id: str) -> list:
    resolved = []
    for address in wanted:
        actor = pool.get(address)
        if actor is None:
            raise CheckpointError(
                f"checkpoint of {session_id} references {kind_name} "
                f"{address} unknown to this marketplace — rehydrate against "
                "the original market or replay from the job seed"
            )
        resolved.append(actor)
    return resolved


def restore_session(market: "Marketplace", kind: WorkloadKind,
                    checkpoint: SessionCheckpoint,
                    consumer: Optional["ConsumerActor"] = None,
                    recovery: Optional[Any] = None,
                    injector: Optional[Any] = None,
                    on_phase_boundary: Optional[Any] = None,
                    require_completion: bool = True,
                    audit: bool = True) -> WorkloadSession:
    """Rehydrate a checkpointed session against ``market`` and arm it to
    resume at ``checkpoint.next_phase``.

    ``market`` must still hold the checkpoint's live state (same object or
    a deterministic twin replayed to the same boundary); each completed
    phase's ``restore()`` validation enforces that.  Passing ``injector``
    overrides the checkpointed fault-injector state; by default the
    injector is rebuilt with its remaining fault budget, so a mid-session
    fault plan continues exactly where it stopped.
    """
    if checkpoint.spec_hash != kind.spec_hash():
        raise CheckpointError(
            f"checkpoint spec hash {checkpoint.spec_hash[:12]}… does not "
            f"match workload kind {kind.workload_id!r} "
            f"({kind.spec_hash()[:12]}…)"
        )
    if checkpoint.state in TERMINAL_STATES:
        raise CheckpointError(
            f"checkpoint is terminal ({checkpoint.state}); nothing to resume"
        )
    if checkpoint.next_phase not in PHASE_INDEX:
        raise CheckpointError(
            f"checkpoint next_phase {checkpoint.next_phase!r} is not a "
            "lifecycle phase"
        )
    if (checkpoint.state != STATE_CREATED
            and checkpoint.state not in PHASE_INDEX):
        raise CheckpointError(
            f"checkpoint state {checkpoint.state!r} is not a lifecycle phase"
        )
    if checkpoint.next_phase not in TRANSITIONS[checkpoint.state]:
        raise CheckpointError(
            f"checkpoint re-entry edge {checkpoint.state!r} -> "
            f"{checkpoint.next_phase!r} is not a declared transition"
        )

    consumers = {c.address: c for c in market.consumers}
    if consumer is None:
        consumer = consumers.get(checkpoint.consumer)
        if consumer is None:
            raise CheckpointError(
                f"checkpoint consumer {checkpoint.consumer} is unknown to "
                "this marketplace"
            )
    elif consumer.address != checkpoint.consumer:
        raise CheckpointError(
            f"supplied consumer {consumer.address} is not the checkpoint's "
            f"consumer {checkpoint.consumer}"
        )

    providers = {p.address: p for p in market.providers}
    executors = {e.address: e for e in market.executors}
    ctx_executors = _resolve("executor", checkpoint.executors, executors,
                             checkpoint.session_id)

    restored_injector = injector
    if restored_injector is None and checkpoint.injector is not None:
        from repro.core.resilience import FaultInjector

        restored_injector = FaultInjector.restore_state(checkpoint.injector)

    session = WorkloadSession(
        market, consumer, kind,
        executors=ctx_executors,
        require_completion=require_completion,
        audit=audit,
        recovery=recovery,
        injector=restored_injector,
        on_phase_boundary=on_phase_boundary,
        session_id=checkpoint.session_id,
    )
    ctx = session.ctx
    ctx.workload_address = checkpoint.workload_address
    ctx.participants = _resolve("provider", checkpoint.participants,
                                providers, checkpoint.session_id)
    ctx.active_executors = _resolve(
        "executor", checkpoint.active_executors, executors,
        checkpoint.session_id,
    )
    ctx.assignments = {
        executor: _resolve("provider", assigned, providers,
                           checkpoint.session_id)
        for executor, assigned in checkpoint.assignments.items()
    }
    ctx.outputs = list(checkpoint.outputs)
    ctx.result_vector = np.asarray(checkpoint.result_vector, dtype=float)
    ctx.weights_bps = dict(checkpoint.weights_bps)
    ctx.result_hash = checkpoint.result_hash
    ctx.extra = dict(checkpoint.extra)
    ctx.final_state = checkpoint.final_state
    ctx.payouts = dict(checkpoint.payouts)
    ctx.registered = set(checkpoint.registered)
    ctx.submitted = set(checkpoint.submitted)
    ctx.certified = set(checkpoint.certified)
    ctx.executed = set(checkpoint.executed)
    ctx.voted = set(checkpoint.voted)
    ctx.blacklist = list(checkpoint.blacklist)
    ctx.dropped_providers = set(checkpoint.dropped_providers)
    ctx.degraded = checkpoint.degraded
    ctx.retries = dict(checkpoint.retries)
    ctx.recovery_log = [dict(entry) for entry in checkpoint.recovery_log]
    ctx.refunded = checkpoint.refunded
    session.trail = [LifecycleEvent.from_dict(record)
                     for record in checkpoint.trail]
    session.state = checkpoint.state
    session.next_phase = checkpoint.next_phase
    session._resume_from = checkpoint.next_phase

    # The sim clock is part of the checkpoint's coherence: a twin market
    # that replayed fewer out-of-session ticks is fast-forwarded so the
    # resumed blocks stay monotonic.
    if market.clock < checkpoint.sim_clock:
        market.advance_clock(checkpoint.sim_clock - market.clock)

    # Re-establish each completed phase's invariants against this market.
    for phase in LIFECYCLE_PHASES[:PHASE_INDEX[checkpoint.next_phase]]:
        phase.restore(session)

    if session.gas_used != checkpoint.gas_used:
        raise CheckpointError(
            f"restored trail accounts {session.gas_used} gas but the "
            f"checkpoint recorded {checkpoint.gas_used}"
        )
    if session.blocks_mined != checkpoint.blocks_mined:
        raise CheckpointError(
            f"restored trail accounts {session.blocks_mined} blocks but "
            f"the checkpoint recorded {checkpoint.blocks_mined}"
        )
    return session
