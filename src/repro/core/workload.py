"""Workload specifications (paper Section II-C, "data consumers").

A :class:`WorkloadSpec` is the binding contract a consumer submits: data
preconditions (a semantic requirement), the reward offered, the workload
definition itself (model family + training schedule), minimum participation
conditions, and the privacy/reward policies.  Its canonical hash is recorded
on-chain; the actual definition travels off-chain to executors.

``enclave_entry_point`` is the code that runs inside executor TEEs: it
deserializes provider rows, trains the specified model, and returns the
parameters — all within enclave-private memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.crypto.hashing import hash_object
from repro.errors import WorkloadSpecError
from repro.ml.models import (
    LinearRegressionModel,
    LogisticRegressionModel,
    MLPClassifier,
    Model,
    SoftmaxRegressionModel,
)
from repro.storage.semantic import Requirement
from repro.utils.serialization import canonical_json_bytes


class RewardScheme(enum.Enum):
    """How provider payout weights are computed."""

    BY_SAMPLES = "by_samples"       # proportional to certified item counts
    SHAPLEY = "shapley"             # truncated-MC Shapley inside the enclave


@dataclass(frozen=True)
class ModelSpec:
    """The model family and shape a workload trains."""

    family: str                      # linear | logistic | softmax | mlp
    num_features: int
    num_classes: int = 2
    hidden_units: int = 16
    l2: float = 0.0

    _FAMILIES = ("linear", "logistic", "softmax", "mlp")

    def __post_init__(self) -> None:
        if self.family not in self._FAMILIES:
            raise WorkloadSpecError(f"unknown model family {self.family!r}")
        if self.num_features < 1:
            raise WorkloadSpecError("model needs at least one feature")

    def build(self, seed: int = 0) -> Model:
        """Instantiate the model (deterministic initialization)."""
        if self.family == "linear":
            return LinearRegressionModel(self.num_features, l2=self.l2)
        if self.family == "logistic":
            return LogisticRegressionModel(self.num_features, l2=self.l2)
        if self.family == "softmax":
            return SoftmaxRegressionModel(self.num_features,
                                          self.num_classes, l2=self.l2)
        return MLPClassifier(
            self.num_features, self.hidden_units, self.num_classes,
            l2=self.l2, init_rng=np.random.default_rng(seed),
        )

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "num_features": self.num_features,
            "num_classes": self.num_classes,
            "hidden_units": self.hidden_units,
            "l2": self.l2,
        }


@dataclass(frozen=True)
class TrainingSpec:
    """The training schedule executors must follow."""

    steps: int = 200
    learning_rate: float = 0.2
    batch_size: int = 32
    aggregation_rounds: int = 4      # executor-to-executor averaging rounds
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 1 or self.batch_size < 1:
            raise WorkloadSpecError("steps and batch size must be >= 1")
        if self.aggregation_rounds < 0:
            raise WorkloadSpecError("aggregation rounds must be >= 0")

    def to_dict(self) -> dict:
        return {
            "steps": self.steps,
            "learning_rate": self.learning_rate,
            "batch_size": self.batch_size,
            "aggregation_rounds": self.aggregation_rounds,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class WorkloadSpec:
    """The complete consumer contract for one workload."""

    workload_id: str
    requirement: Requirement
    model: ModelSpec
    training: TrainingSpec = field(default_factory=TrainingSpec)
    reward_pool: int = 100_000
    min_providers: int = 1
    min_samples: int = 1
    infra_share_bps: int = 1000
    required_confirmations: int = 1
    reward_scheme: RewardScheme = RewardScheme.BY_SAMPLES
    dp_epsilon: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.reward_pool < 0:
            raise WorkloadSpecError("reward pool must be non-negative")
        if self.min_providers < 1 or self.min_samples < 1:
            raise WorkloadSpecError("participation minimums must be >= 1")
        if not 0 <= self.infra_share_bps < 10_000:
            raise WorkloadSpecError("infra share out of range")
        if self.required_confirmations < 1:
            raise WorkloadSpecError("need at least one confirmation")
        if self.dp_epsilon is not None and self.dp_epsilon <= 0:
            raise WorkloadSpecError("dp epsilon must be positive")

    def to_dict(self) -> dict:
        return {
            "workload_id": self.workload_id,
            "requirement": self.requirement.to_dict(),
            "model": self.model.to_dict(),
            "training": self.training.to_dict(),
            "reward_pool": self.reward_pool,
            "min_providers": self.min_providers,
            "min_samples": self.min_samples,
            "infra_share_bps": self.infra_share_bps,
            "required_confirmations": self.required_confirmations,
            "reward_scheme": self.reward_scheme.value,
            "dp_epsilon": self.dp_epsilon,
            "description": self.description,
        }

    @property
    def spec_hash(self) -> str:
        """Canonical hex hash recorded on-chain at deployment."""
        return hash_object(self.to_dict()).hex()


# ---------------------------------------------------------------------------
# Row serialization: how provider datasets travel to enclaves
# ---------------------------------------------------------------------------


def serialize_row(features: np.ndarray, target: float | int) -> bytes:
    """Canonical bytes of one (features, target) example."""
    return canonical_json_bytes({
        "x": [float(v) for v in np.asarray(features).ravel()],
        "y": float(target),
    })


def serialize_partition(features: np.ndarray,
                        targets: np.ndarray) -> list[bytes]:
    """Serialize a provider's partition row by row (Merkle leaves)."""
    return [
        serialize_row(features[index], targets[index])
        for index in range(len(features))
    ]


def deserialize_rows(rows: list[bytes]) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`serialize_partition`."""
    from repro.utils.serialization import from_canonical_json

    if not rows:
        raise WorkloadSpecError("cannot deserialize an empty partition")
    features = []
    targets = []
    for row in rows:
        record = from_canonical_json(row)
        features.append(record["x"])
        targets.append(record["y"])
    return np.asarray(features, dtype=float), np.asarray(targets)


# ---------------------------------------------------------------------------
# The enclave entry point (its source is the workload code measurement)
# ---------------------------------------------------------------------------


def enclave_entry_point(inputs: dict[str, Any], spec_dict: dict,
                        training_seed: int) -> dict:
    """Train the specified model on all provisioned partitions.

    Runs *inside* a TEE: ``inputs`` maps ``provider:<address>`` labels to
    serialized row blobs; the function deserializes, concatenates, trains
    per the spec, and returns the parameters plus per-provider sample
    counts.  Nothing here can reach the host except the return value.

    Two spec-controlled variants run entirely inside the enclave:

    * when ``dp_epsilon`` is set, training uses DP-SGD calibrated (via the
      RDP accountant) to that epsilon — the Section IV-D mitigation;
    * when ``reward_scheme`` is ``"shapley"``, the enclave also computes
      truncated-Monte-Carlo Shapley fractions over the provider partitions,
      so reward weighting never exposes per-provider data.
    """
    import numpy as _np

    from repro.utils.rng import derive_rng, rng_from_seed
    from repro.utils.serialization import from_canonical_json

    partitions: dict[str, tuple] = {}
    for label, blob in inputs.items():
        if not label.startswith("provider:"):
            continue
        rows = from_canonical_json(blob)
        features = _np.asarray([row["x"] for row in rows], dtype=float)
        targets = _np.asarray([row["y"] for row in rows])
        partitions[label.split(":", 1)[1]] = (features, targets)
    if not partitions:
        raise WorkloadSpecError("no provider data provisioned")

    model_spec = ModelSpec(**spec_dict["model"])
    training = TrainingSpec(**spec_dict["training"])
    model = model_spec.build(seed=training.seed)
    classification = model_spec.family in ("softmax", "mlp", "logistic")

    all_features = _np.concatenate([p[0] for p in partitions.values()])
    all_targets = _np.concatenate([p[1] for p in partitions.values()])
    if classification:
        all_targets = all_targets.astype(int)

    dp_epsilon = spec_dict.get("dp_epsilon")
    achieved_epsilon = None
    if dp_epsilon is not None:
        from repro.privacy.dpsgd import (
            DPSGDConfig,
            noise_multiplier_for_epsilon,
            train_dpsgd,
        )

        batch = min(training.batch_size, len(all_features))
        noise = noise_multiplier_for_epsilon(
            float(dp_epsilon), batch / len(all_features), training.steps
        )
        dp_result = train_dpsgd(
            model, all_features, all_targets,
            DPSGDConfig(
                clip_norm=1.0, noise_multiplier=noise,
                learning_rate=training.learning_rate,
                batch_size=training.batch_size, steps=training.steps,
            ),
            rng_from_seed(training_seed),
        )
        achieved_epsilon = dp_result.epsilon
    else:
        model.train_steps(
            all_features, all_targets,
            steps=training.steps,
            learning_rate=training.learning_rate,
            batch_size=training.batch_size,
            rng=rng_from_seed(training_seed),
        )

    output = {
        "params": [float(v) for v in model.params],
        "sample_counts": {
            provider: int(len(partitions[provider][0]))
            for provider in sorted(partitions)
        },
        "trained_samples": int(len(all_features)),
        "achieved_epsilon": achieved_epsilon,
    }

    if spec_dict.get("reward_scheme") == "shapley" and len(partitions) > 1:
        output["shapley_fractions"] = _enclave_shapley_fractions(
            partitions, model_spec, training, training_seed, classification
        )
    return output


def _enclave_shapley_fractions(partitions: dict, model_spec: "ModelSpec",
                               training: "TrainingSpec", training_seed: int,
                               classification: bool) -> dict[str, float]:
    """TMC-Shapley payout fractions over provider partitions (in-enclave).

    A stratified holdout carved from the pooled data serves as validation;
    coalitions train shortened schedules (a quarter of the spec's steps) to
    keep valuation affordable, which preserves ranking even if absolute
    scores differ.
    """
    import numpy as _np

    from repro.ml.datasets import Dataset
    from repro.rewards.shapley import (
        DataValuationTask,
        normalize_to_payouts,
        truncated_monte_carlo_shapley,
    )
    from repro.utils.rng import derive_rng

    providers = sorted(partitions)
    holdout_rng = derive_rng(training_seed, "enclave-shapley-holdout")
    train_parts: list[Dataset] = []
    val_features = []
    val_targets = []
    for provider in providers:
        features, targets = partitions[provider]
        if classification:
            targets = targets.astype(int)
        n = len(features)
        order = holdout_rng.permutation(n)
        val_count = max(1, n // 5) if n > 1 else 0
        val_index, train_index = order[:val_count], order[val_count:]
        if len(train_index) == 0:
            train_index = val_index
        train_parts.append(Dataset(features=features[train_index],
                                   targets=targets[train_index]))
        if val_count:
            val_features.append(features[val_index])
            val_targets.append(targets[val_index])
    validation = Dataset(
        features=_np.concatenate(val_features),
        targets=_np.concatenate(val_targets),
    )
    task = DataValuationTask(
        model_factory=lambda: model_spec.build(seed=training.seed),
        provider_datasets=train_parts,
        validation=validation,
        train_steps=max(10, training.steps // 4),
        learning_rate=training.learning_rate,
        batch_size=training.batch_size,
        seed=training_seed,
    )
    estimates = truncated_monte_carlo_shapley(
        len(providers), task, permutations=2 * len(providers),
        rng=derive_rng(training_seed, "enclave-shapley-mc"),
    )
    fractions = normalize_to_payouts(estimates)
    return {
        provider: float(fraction)
        for provider, fraction in zip(providers, fractions)
    }
