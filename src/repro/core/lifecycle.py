"""The workload lifecycle engine: paper Fig. 2 as an explicit state machine.

One :class:`WorkloadSession` drives a workload through nine typed phases —

    deploy → match → register_executors → attest_and_submit
           → start_execution → execute → aggregate → settle → audit

— with a declared transition table (:data:`TRANSITIONS`), per-phase failure
classes (:class:`repro.errors.LifecycleError` subclasses carrying a session
snapshot), and a structured event trail published on the marketplace
:class:`~repro.core.events.EventBus`.

What *kind* of workload runs is a strategy object (:class:`WorkloadKind`):
ML training (:class:`MLTrainingKind`) and statistical aggregates
(:class:`AggregateWorkloadKind`) differ only in the enclave entry point,
the way enclave outputs are combined, and the shape of the final result.
``Marketplace.run_workload`` and ``Marketplace.run_aggregate_workload``
are thin drivers over this one engine.

Phases are individually testable objects; a phase can also be *intercepted*
(replaced by a callable) — the adversary harness uses this to substitute
malicious result votes for the honest settle step without reaching into
marketplace internals.

Failures need not be terminal.  A session built with a *recovery policy*
(see :mod:`repro.core.resilience`) consults it whenever a phase raises:
the policy may direct a **retry** of the same phase (backoff on the sim
clock), a **re-match** onto the surviving executors (re-entering
``register_executors`` with the dead executor blacklisted), a quorum
**degrade** (proceed with the executors that still hold data), or a
provider **drop** — each a declared re-entry edge in :data:`TRANSITIONS`.
Without a policy every error behaves as before: the session fails, and —
new in any case — a failing session that already escrowed funds aborts
the workload contract so the consumer is refunded.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional

import numpy as np

from repro.core.actors import ConsumerActor, ExecutorActor, ProviderActor, result_hash_of
from repro.core.aggregates import (
    AggregateResult,
    AggregateSpec,
    aggregate_enclave_entry_point,
    combine_aggregate_outputs,
)
from repro.core.events import LifecycleEvent
from repro.core.workload import WorkloadSpec
from repro.crypto.hashing import hash_object
from repro.errors import (
    AggregationFailure,
    AuditFailure,
    DeployFailure,
    ExecutionFailure,
    LifecycleError,
    MarketplaceError,
    MatchFailure,
    PDS2Error,
    RegistrationFailure,
    SettlementFailure,
    StartFailure,
    SubmissionFailure,
    TransitionError,
)
from repro.governance.audit import AuditReport, audit_workload, trail_covers_chain
from repro.governance.contracts import (
    STATE_CANCELLED,
    STATE_COMPLETE,
    STATE_EXECUTING,
    STATE_OPEN,
)
from repro.rewards.distribution import normalize_weights_bps
from repro.tee.enclave import EnclaveCode
from repro.telemetry import metrics as _tm
from repro.telemetry.profiler import profiled
from repro.utils.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.marketplace import Marketplace


# ---------------------------------------------------------------------------
# Phase state machine
# ---------------------------------------------------------------------------

STATE_CREATED = "created"
PHASE_DEPLOY = "deploy"
PHASE_MATCH = "match"
PHASE_REGISTER = "register_executors"
PHASE_SUBMIT = "attest_and_submit"
PHASE_START = "start_execution"
PHASE_EXECUTE = "execute"
PHASE_AGGREGATE = "aggregate"
PHASE_SETTLE = "settle"
PHASE_AUDIT = "audit"
TERMINAL_COMPLETE = "complete"
TERMINAL_FAILED = "failed"

#: Recovery re-entry edges layered over the happy path.  Every phase may
#: retry itself (transient faults back off on the sim clock and run the
#: phase again); a crash discovered while the contract is still OPEN
#: re-enters ``register_executors`` (or ``match``, if the participant set
#: must be rebuilt) with the dead executor blacklisted; a crash during
#: ``execute`` re-enters the same phase over the surviving quorum.
RECOVERY_TRANSITIONS: dict[str, tuple[str, ...]] = {
    PHASE_DEPLOY: (PHASE_DEPLOY,),
    PHASE_MATCH: (PHASE_MATCH,),
    PHASE_REGISTER: (PHASE_REGISTER,),
    PHASE_SUBMIT: (PHASE_SUBMIT, PHASE_MATCH, PHASE_REGISTER),
    PHASE_START: (PHASE_START,),
    PHASE_EXECUTE: (PHASE_EXECUTE, PHASE_REGISTER),
    PHASE_AGGREGATE: (PHASE_AGGREGATE,),
    PHASE_SETTLE: (PHASE_SETTLE,),
    PHASE_AUDIT: (PHASE_AUDIT,),
}

#: The full transition table.  Every phase may fail; terminal states have no
#: outgoing transitions (tests assert this closure property).
TRANSITIONS: dict[str, tuple[str, ...]] = {
    STATE_CREATED: (PHASE_DEPLOY, TERMINAL_FAILED),
    PHASE_DEPLOY: (PHASE_MATCH, TERMINAL_FAILED,
                   *RECOVERY_TRANSITIONS[PHASE_DEPLOY]),
    PHASE_MATCH: (PHASE_REGISTER, TERMINAL_FAILED,
                  *RECOVERY_TRANSITIONS[PHASE_MATCH]),
    PHASE_REGISTER: (PHASE_SUBMIT, TERMINAL_FAILED,
                     *RECOVERY_TRANSITIONS[PHASE_REGISTER]),
    PHASE_SUBMIT: (PHASE_START, TERMINAL_FAILED,
                   *RECOVERY_TRANSITIONS[PHASE_SUBMIT]),
    PHASE_START: (PHASE_EXECUTE, TERMINAL_FAILED,
                  *RECOVERY_TRANSITIONS[PHASE_START]),
    PHASE_EXECUTE: (PHASE_AGGREGATE, TERMINAL_FAILED,
                    *RECOVERY_TRANSITIONS[PHASE_EXECUTE]),
    PHASE_AGGREGATE: (PHASE_SETTLE, TERMINAL_FAILED,
                      *RECOVERY_TRANSITIONS[PHASE_AGGREGATE]),
    PHASE_SETTLE: (PHASE_AUDIT, TERMINAL_FAILED,
                   *RECOVERY_TRANSITIONS[PHASE_SETTLE]),
    PHASE_AUDIT: (TERMINAL_COMPLETE, TERMINAL_FAILED,
                  *RECOVERY_TRANSITIONS[PHASE_AUDIT]),
    TERMINAL_COMPLETE: (),
    TERMINAL_FAILED: (),
}

TERMINAL_STATES = (TERMINAL_COMPLETE, TERMINAL_FAILED)

# Recovery observability: every applied directive and every terminal
# session outcome is counted process-wide (exported by `repro metrics`).
_RECOVERY_ACTIONS = _tm.counter(
    "pds2_lifecycle_recovery_total",
    "Recovery directives applied by the lifecycle engine",
    labelnames=("action",),
)
_SESSION_OUTCOMES = _tm.counter(
    "pds2_lifecycle_sessions_total",
    "Workload sessions by terminal outcome",
    labelnames=("outcome",),
)
_ESCROW_REFUNDED = _tm.counter(
    "pds2_lifecycle_escrow_refunded_total",
    "Escrow returned to consumers by failing sessions",
)


# ---------------------------------------------------------------------------
# Workload kinds: the strategy objects parameterizing the engine
# ---------------------------------------------------------------------------


class WorkloadKind(ABC):
    """What differs between workload classes riding the same lifecycle."""

    workload_id: str
    reward_pool: int
    min_providers: int
    min_samples: int
    infra_share_bps: int
    required_confirmations: int

    @property
    @abstractmethod
    def code(self) -> EnclaveCode:
        """The measured enclave code unit for this workload."""

    @abstractmethod
    def spec_hash(self) -> str:
        """Canonical hash recorded on-chain at deployment."""

    @abstractmethod
    def match(self, market: "Marketplace") -> list[ProviderActor]:
        """Providers whose data and policy admit this workload."""

    @abstractmethod
    def run_kwargs(self, market: "Marketplace") -> dict:
        """Keyword arguments for the enclave entry point."""

    @abstractmethod
    def combine(self, session: "WorkloadSession", outputs: list[dict],
                ) -> tuple[np.ndarray, dict[str, int], dict]:
        """All-reduce enclave outputs.

        Returns ``(result_vector, weights_bps, extra)`` where the vector is
        what executors hash and vote on, the weights are the provider payout
        shares in basis points, and ``extra`` carries kind-specific fields
        (achieved epsilon, the combined statistic, sample counts).
        """

    @abstractmethod
    def build_result(self, session: "WorkloadSession") -> Any:
        """Shape the session context into this kind's public return value."""

    def submission_rng_label(self, provider: ProviderActor) -> str:
        """Derivation label for the provider's envelope-encryption rng."""
        return f"submit-{provider.name}"

    def contract_args(self) -> dict:
        """Deployment arguments of the on-chain workload contract."""
        return {
            "spec_hash": self.spec_hash(),
            "code_measurement": self.code.measurement.hex(),
            "min_providers": self.min_providers,
            "min_samples": self.min_samples,
            "infra_share_bps": self.infra_share_bps,
            "required_confirmations": self.required_confirmations,
        }


def aggregate_training_outputs(outputs: list[dict],
                               ) -> tuple[np.ndarray, dict[str, float],
                                          Optional[float]]:
    """Decentralized aggregation of ML enclave outputs.

    Parameters are averaged weighted by trained sample counts (the
    deterministic fixed point the executors' peer-to-peer averaging
    converges to); raw payout weights come from certified sample counts or
    from enclave-computed Shapley fractions scaled by each executor's data
    share.  Returns ``(final_params, raw_weights, achieved_epsilon)``; the
    raw weights are normalized to basis points by the caller.
    """
    if not outputs:
        raise AggregationFailure("no enclave outputs to aggregate")
    weights = np.array([out["trained_samples"] for out in outputs],
                       dtype=float)
    stacked = np.stack([
        np.asarray(out["params"], dtype=float) for out in outputs
    ])
    final_params = (weights / weights.sum()) @ stacked

    raw: dict[str, float] = {}
    total_samples = float(sum(out["trained_samples"] for out in outputs))
    for out in outputs:
        executor_share = out["trained_samples"] / total_samples
        if "shapley_fractions" in out:
            for provider, fraction in out["shapley_fractions"].items():
                raw[provider] = (raw.get(provider, 0.0)
                                 + fraction * executor_share)
        else:
            executor_total = float(sum(out["sample_counts"].values()))
            for provider, count in out["sample_counts"].items():
                raw[provider] = (raw.get(provider, 0.0)
                                 + (count / executor_total)
                                 * executor_share)
    epsilons = [out.get("achieved_epsilon") for out in outputs]
    known = [e for e in epsilons if e is not None]
    achieved = max(known) if known else None
    return final_params, raw, achieved


class MLTrainingKind(WorkloadKind):
    """The paper's primary workload class: decentralized model training."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.workload_id = spec.workload_id
        self.reward_pool = spec.reward_pool
        self.min_providers = spec.min_providers
        self.min_samples = spec.min_samples
        self.infra_share_bps = spec.infra_share_bps
        self.required_confirmations = spec.required_confirmations
        self._code = ExecutorActor.code_for(spec)

    @property
    def code(self) -> EnclaveCode:
        return self._code

    def spec_hash(self) -> str:
        return self.spec.spec_hash

    def match(self, market: "Marketplace") -> list[ProviderActor]:
        return market.matching_providers(self.spec)

    def run_kwargs(self, market: "Marketplace") -> dict:
        return {"spec_dict": self.spec.to_dict(),
                "training_seed": market.seed}

    def combine(self, session: "WorkloadSession", outputs: list[dict],
                ) -> tuple[np.ndarray, dict[str, int], dict]:
        final_params, raw, achieved = aggregate_training_outputs(outputs)
        return final_params, normalize_weights_bps(raw), {
            "achieved_epsilon": achieved,
        }

    def build_result(self, session: "WorkloadSession") -> "Any":
        from repro.core.marketplace import WorkloadRunReport

        ctx = session.ctx
        consumer_score = None
        if session.consumer.validation is not None:
            consumer_score = session.consumer.evaluate_result(
                self.spec, ctx.result_vector
            )
        return WorkloadRunReport(
            workload_address=ctx.workload_address,
            spec=self.spec,
            participants=[p.address for p in ctx.participants],
            executors=[e.address for e in ctx.executors],
            active_executors=[e.address for e in ctx.active_executors],
            final_params=ctx.result_vector,
            result_hash=ctx.result_hash,
            consumer_score=consumer_score,
            payouts=dict(ctx.payouts),
            weights_bps=dict(ctx.weights_bps),
            gas_used=session.gas_used,
            blocks_mined=session.blocks_mined,
            achieved_epsilon=ctx.extra.get("achieved_epsilon"),
            audit=ctx.audit,
            session_id=session.session_id,
            degraded=ctx.degraded,
            recoveries=[dict(entry) for entry in ctx.recovery_log],
            blacklisted=list(ctx.blacklist),
        )


class AggregateWorkloadKind(WorkloadKind):
    """The other workload class: privacy-preserving statistical aggregates."""

    def __init__(self, workload_id: str, requirement: Any,
                 agg_spec: AggregateSpec, reward_pool: int = 100_000,
                 min_providers: int = 1, min_samples: int = 1,
                 infra_share_bps: int = 1000,
                 required_confirmations: int = 1):
        self.workload_id = workload_id
        self.requirement = requirement
        self.agg_spec = agg_spec
        self.spec_dict = agg_spec.to_dict()
        self.reward_pool = reward_pool
        self.min_providers = min_providers
        self.min_samples = min_samples
        self.infra_share_bps = infra_share_bps
        self.required_confirmations = required_confirmations
        self._code = EnclaveCode(
            name=f"pds2-aggregate-{workload_id}",
            version=hash_object(self.spec_dict).hex(),
            entry_point=aggregate_enclave_entry_point,
        )

    @property
    def code(self) -> EnclaveCode:
        return self._code

    def spec_hash(self) -> str:
        return hash_object(self.spec_dict).hex()

    def match(self, market: "Marketplace") -> list[ProviderActor]:
        return [
            provider for provider in market.providers
            if market.catalog.match_for_owner(self.requirement,
                                              provider.address)
        ]

    def submission_rng_label(self, provider: ProviderActor) -> str:
        return f"agg-{self.workload_id}-{provider.name}"

    def run_kwargs(self, market: "Marketplace") -> dict:
        return {"agg_spec": self.spec_dict, "noise_seed": market.seed}

    def combine(self, session: "WorkloadSession", outputs: list[dict],
                ) -> tuple[np.ndarray, dict[str, int], dict]:
        sample_counts: dict[str, float] = {}
        for output in outputs:
            for provider, count in output["sample_counts"].items():
                sample_counts[provider] = (
                    sample_counts.get(provider, 0) + count
                )
        combined = combine_aggregate_outputs(self.agg_spec.kind, outputs)
        vector = np.atleast_1d(np.asarray(combined, dtype=float))
        return vector, normalize_weights_bps(sample_counts), {
            "combined": combined,
            "sample_counts": sample_counts,
        }

    def build_result(self, session: "WorkloadSession"
                     ) -> tuple[AggregateResult, AuditReport, str]:
        ctx = session.ctx
        sample_counts = ctx.extra["sample_counts"]
        result = AggregateResult(
            statistic=ctx.extra["combined"],
            kind=self.agg_spec.kind,
            dp_epsilon=self.agg_spec.dp_epsilon,
            total_samples=int(sum(sample_counts.values())),
            sample_counts={k: int(v) for k, v in sample_counts.items()},
        )
        return result, ctx.audit, ctx.workload_address


# ---------------------------------------------------------------------------
# Session context and the session itself
# ---------------------------------------------------------------------------


@dataclass
class SessionContext:
    """Mutable state a session accumulates as it moves through the phases."""

    executors: list[ExecutorActor] = field(default_factory=list)
    workload_address: str = ""
    participants: list[ProviderActor] = field(default_factory=list)
    assignments: dict[str, list[ProviderActor]] = field(default_factory=dict)
    active_executors: list[ExecutorActor] = field(default_factory=list)
    outputs: list[dict] = field(default_factory=list)
    result_vector: np.ndarray = field(
        default_factory=lambda: np.zeros(0)
    )
    weights_bps: dict[str, int] = field(default_factory=dict)
    result_hash: str = ""
    extra: dict = field(default_factory=dict)
    final_state: str = ""
    payouts: dict[str, int] = field(default_factory=dict)
    audit: Optional[AuditReport] = None

    # -- recovery bookkeeping (all empty/False on a fault-free run) --------
    #: Executor addresses whose on-chain registration already succeeded
    #: (re-entered phases skip them instead of reverting on-chain).
    registered: set[str] = field(default_factory=set)
    #: Provider addresses whose data reached a live executor's enclave.
    submitted: set[str] = field(default_factory=set)
    #: Provider addresses whose participation certificate is on-chain —
    #: tracked separately from ``submitted`` because re-submitting a fresh
    #: certificate for the same provider would double-count its samples.
    certified: set[str] = field(default_factory=set)
    #: Executor addresses whose enclave already ran.
    executed: set[str] = field(default_factory=set)
    #: Executor addresses whose settle vote is already on-chain.
    voted: set[str] = field(default_factory=set)
    #: Executors removed from this session after crashing (addresses).
    blacklist: list[str] = field(default_factory=list)
    #: Providers dropped after exhausting their retry budget (addresses).
    dropped_providers: set[str] = field(default_factory=set)
    #: True once the session lost capacity and continued on a partial
    #: quorum (payouts reweighted over the surviving contributors).
    degraded: bool = False
    #: Per-phase retry counts for the *current* entry (reset on success).
    retries: dict[str, int] = field(default_factory=dict)
    #: Every recovery directive applied, in order.
    recovery_log: list[dict] = field(default_factory=list)
    #: Escrow returned to the consumer by a failing session.
    refunded: int = 0


@dataclass
class RecoveryDirective:
    """What a recovery policy tells the engine to do about one failure.

    ``action`` is one of ``retry`` / ``rematch`` / ``degrade`` /
    ``drop_provider``; ``target`` is the phase the session re-enters (a
    declared edge in :data:`TRANSITIONS`).  Policies live in
    :mod:`repro.core.resilience`; the engine only interprets directives.
    """

    action: str
    target: str
    delay_s: float = 0.0
    dead_executor: str = ""
    provider: str = ""
    reason: str = ""


#: An interceptor fully replaces one phase's execution.  It receives the
#: session and the phase object it displaced (whose helpers it may reuse).
PhaseInterceptor = Callable[["WorkloadSession", "LifecyclePhase"], None]


class WorkloadSession:
    """One workload's trip through the lifecycle state machine."""

    def __init__(self, market: "Marketplace", consumer: ConsumerActor,
                 kind: WorkloadKind,
                 executors: Optional[list[ExecutorActor]] = None,
                 interceptors: Optional[Mapping[str, PhaseInterceptor]] = None,
                 require_completion: bool = True,
                 audit: bool = True,
                 recovery: Optional[Any] = None,
                 injector: Optional[Any] = None,
                 on_phase_boundary: Optional[Callable[
                     ["WorkloadSession", str], None]] = None,
                 session_id: Optional[str] = None):
        self.market = market
        self.consumer = consumer
        self.kind = kind
        #: Restored sessions keep their original id (and must not consume a
        #: fresh one, or later sessions on the same market would renumber).
        self.session_id = (session_id if session_id is not None
                           else market.next_session_id(kind.workload_id))
        self.state = STATE_CREATED
        self.interceptors: dict[str, PhaseInterceptor] = dict(
            interceptors or {}
        )
        self.require_completion = require_completion
        self.audit_enabled = audit
        #: Recovery policy consulted on phase failure (duck-typed: anything
        #: with ``decide(session, phase, error) -> RecoveryDirective|None``;
        #: None keeps the historical fail-fast behavior).
        self.recovery = recovery
        #: Fault injector whose ``fire(session, point, **info)`` runs at
        #: every named :meth:`fault_point` (None disables injection).
        self.injector = injector
        #: Called as ``hook(session, next_phase)`` after every completed
        #: phase and after every applied recovery directive — the points a
        #: checkpoint is coherent at.  The hook may raise
        #: :class:`~repro.errors.SessionPaused` to stop the session; the
        #: object stays resumable (``checkpoint()`` + ``restore_session``).
        self.on_phase_boundary = on_phase_boundary
        #: The phase the engine will (re-)enter next; with ``state`` this
        #: pins exactly where a checkpoint resumes, including recovery
        #: re-entry edges where the next phase is *earlier* than the
        #: current one.
        self.next_phase = PHASE_DEPLOY
        #: Set by ``restore_session``: resume the loop here instead of at
        #: ``deploy``.
        self._resume_from: Optional[str] = None
        #: Running count of phase executions (recovery re-entry runs a
        #: phase more than once); stamped on every phase span so a trace
        #: shows the re-entry ordinal without diffing span names.
        self._phase_entries = 0
        self.trail: list[LifecycleEvent] = []
        self.ctx = SessionContext(executors=list(
            executors if executors is not None else market.executors
        ))
        self._gas_start = market.chain.total_gas_used
        self._blocks_start = market.chain.height

    # -- observability ------------------------------------------------------

    @property
    def gas_used(self) -> int:
        """Session gas, derived from the event trail's chain deltas."""
        return sum(event.gas_delta for event in self.trail)

    @property
    def blocks_mined(self) -> int:
        return sum(
            1 for event in self.trail if event.name == "chain.block_mined"
        )

    def emit(self, name: str, *, gas_delta: int = 0, block_height: int = -1,
             actor: str = "", **data: Any) -> LifecycleEvent:
        """Publish one event attributed to this session's current phase."""
        return self.market.publish_event(
            name, session=self, gas_delta=gas_delta,
            block_height=block_height, actor=actor, data=data,
        )

    def snapshot(self) -> dict:
        """Where the session stands right now (attached to failures).

        Includes the recovery-era bookkeeping sets (registered / submitted
        / certified / executed / voted, per-phase retries, dropped
        providers), so a debugger looking at a failed or resumed session
        sees the same progress picture a checkpoint captures.
        """
        return {
            "session_id": self.session_id,
            "workload_id": self.kind.workload_id,
            "state": self.state,
            "next_phase": self.next_phase,
            "workload_address": self.ctx.workload_address,
            "participants": [p.address for p in self.ctx.participants],
            "executors": [e.address for e in self.ctx.executors],
            "final_state": self.ctx.final_state,
            "gas_used": self.gas_used,
            "blocks_mined": self.blocks_mined,
            "events": len(self.trail),
            "degraded": self.ctx.degraded,
            "blacklisted": list(self.ctx.blacklist),
            "recoveries": len(self.ctx.recovery_log),
            "refunded": self.ctx.refunded,
            # -- phase bookkeeping (idempotent re-entry progress) ----------
            "registered": sorted(self.ctx.registered),
            "submitted": sorted(self.ctx.submitted),
            "certified": sorted(self.ctx.certified),
            "executed": sorted(self.ctx.executed),
            "voted": sorted(self.ctx.voted),
            "dropped_providers": sorted(self.ctx.dropped_providers),
            "retries": dict(self.ctx.retries),
        }

    def checkpoint(self) -> "Any":
        """Externalize this session's progress as a ``SessionCheckpoint``.

        Coherent at phase boundaries (where :attr:`on_phase_boundary`
        fires) and before the first phase; see
        :mod:`repro.core.checkpoint` for the format and restore paths.
        """
        from repro.core.checkpoint import checkpoint_session

        return checkpoint_session(self)

    def fault_point(self, point: str, **info: Any) -> None:
        """Named injection point; a no-op unless an injector is armed."""
        if self.injector is not None:
            self.injector.fire(self, point, **info)

    # -- the state machine --------------------------------------------------

    def advance(self, next_state: str) -> None:
        """Move to ``next_state``, enforcing the transition table."""
        allowed = TRANSITIONS[self.state]
        if next_state not in allowed:
            raise TransitionError(
                f"illegal transition {self.state!r} -> {next_state!r} "
                f"(allowed: {allowed})",
                snapshot=self.snapshot(),
            )
        self.state = next_state

    def run(self) -> Any:
        """Drive every phase in order; returns the kind-shaped result.

        The whole run is one ``lifecycle.session`` span; each phase nests a
        ``lifecycle.phase.<name>`` child under it (and chain mining,
        enclave runs etc. nest further down), so a trace renders as a
        root-to-leaf time decomposition of the Fig. 2 sequence.

        With a recovery policy attached, a failing phase may re-enter an
        earlier phase (or itself) instead of failing the session; the loop
        below follows whatever re-entry target :meth:`_run_phase` returns.
        """
        with self.market.active_session(self):
            with self.market.tracer.span(
                "lifecycle.session", session_id=self.session_id,
                workload_id=self.kind.workload_id,
                kind=type(self.kind).__name__,
            ) as root:
                if self._resume_from is None:
                    self.emit("session.started",
                              workload_id=self.kind.workload_id,
                              kind=type(self.kind).__name__)
                    index = 0
                else:
                    # Restored session: re-enter mid-lifecycle at the
                    # checkpointed next phase (possibly an earlier phase,
                    # on a recovery edge).
                    index = PHASE_INDEX[self._resume_from]
                    self.emit("session.resumed", phase=self._resume_from,
                              state=self.state)
                    self._resume_from = None
                while index < len(LIFECYCLE_PHASES):
                    target = self._run_phase(LIFECYCLE_PHASES[index])
                    if target is None:
                        index += 1
                        self.next_phase = (
                            LIFECYCLE_PHASES[index].name
                            if index < len(LIFECYCLE_PHASES)
                            else TERMINAL_COMPLETE
                        )
                    else:
                        index = PHASE_INDEX[target]
                        self.next_phase = target
                    if (self.on_phase_boundary is not None
                            and self.next_phase != TERMINAL_COMPLETE):
                        self.on_phase_boundary(self, self.next_phase)
                self.advance(TERMINAL_COMPLETE)
                root.set_attribute("gas_used", self.gas_used)
                root.set_attribute("blocks_mined", self.blocks_mined)
                root.set_attribute("degraded", self.ctx.degraded)
                outcome = "degraded" if self.ctx.degraded else "complete"
                _SESSION_OUTCOMES.labels(outcome=outcome).inc()
                self.emit("session.completed", gas_used=self.gas_used,
                          blocks_mined=self.blocks_mined,
                          degraded=self.ctx.degraded,
                          recoveries=len(self.ctx.recovery_log))
        return self.kind.build_result(self)

    def _run_phase(self, phase: "LifecyclePhase") -> Optional[str]:
        """Run one phase; None means proceed, a name means re-enter there."""
        self.advance(phase.name)
        gas_before = self.market.chain.total_gas_used
        self.emit("phase.started")
        self._phase_entries += 1
        with self.market.tracer.span(
            f"lifecycle.phase.{phase.name}", session_id=self.session_id,
            entry=self._phase_entries,
        ) as span, profiled(f"phase.{phase.name}"):
            try:
                interceptor = self.interceptors.get(phase.name)
                if interceptor is not None:
                    interceptor(self, phase)
                else:
                    phase.run(self)
            except LifecycleError as err:
                if not err.snapshot:
                    err.snapshot = self.snapshot()
                return self._recover_or_fail(phase, err, span)
            except PDS2Error as err:
                failure = phase.failure_class(str(err),
                                              snapshot=self.snapshot())
                failure.__cause__ = err
                return self._recover_or_fail(phase, failure, span)
            span.set_attribute(
                "gas", self.market.chain.total_gas_used - gas_before
            )
        self.ctx.retries.pop(phase.name, None)
        self.emit("phase.completed",
                  gas_used=self.market.chain.total_gas_used - gas_before)
        return None

    def _recover_or_fail(self, phase: "LifecyclePhase",
                         error: LifecycleError, span: Any) -> str:
        """Consult the recovery policy; apply its directive or fail."""
        directive: Optional[RecoveryDirective] = None
        if self.recovery is not None:
            directive = self.recovery.decide(self, phase, error)
        if directive is None:
            self._fail(phase, error)
            raise error
        self._apply_recovery(phase, directive, error)
        span.set_attribute("recovered", directive.action)
        return directive.target

    def _apply_recovery(self, phase: "LifecyclePhase",
                        directive: RecoveryDirective,
                        error: LifecycleError) -> None:
        """Mutate session state so the re-entered phase can succeed."""
        ctx = self.ctx
        with self.market.tracer.span(
            "lifecycle.recovery", session_id=self.session_id,
            action=directive.action, phase=phase.name,
            target=directive.target,
        ):
            if directive.action == "retry":
                ctx.retries[phase.name] = ctx.retries.get(phase.name, 0) + 1
                if directive.delay_s > 0:
                    self.market.advance_clock(directive.delay_s)
            elif directive.action == "rematch":
                self._remove_executor(directive.dead_executor,
                                      orphan_resubmits=True)
            elif directive.action == "degrade":
                self._remove_executor(directive.dead_executor,
                                      orphan_resubmits=False)
                ctx.degraded = True
            elif directive.action == "drop_provider":
                ctx.dropped_providers.add(directive.provider)
                ctx.participants = [
                    p for p in ctx.participants
                    if p.address != directive.provider
                ]
                ctx.degraded = True
            else:
                raise MarketplaceError(
                    f"unknown recovery action {directive.action!r}"
                )
        record = {
            "action": directive.action,
            "phase": phase.name,
            "target": directive.target,
            "error": type(error).__name__,
            "dead_executor": directive.dead_executor,
            "provider": directive.provider,
            "delay_s": directive.delay_s,
            "reason": directive.reason,
        }
        ctx.recovery_log.append(record)
        _RECOVERY_ACTIONS.labels(action=directive.action).inc()
        self.emit(f"recovery.{directive.action}", target=directive.target,
                  error=type(error).__name__,
                  dead_executor=directive.dead_executor,
                  provider=directive.provider, delay_s=directive.delay_s,
                  reason=directive.reason)

    def _remove_executor(self, address: str, *,
                         orphan_resubmits: bool) -> None:
        """Blacklist one executor and detach it from the session.

        ``orphan_resubmits`` controls what happens to providers whose data
        only that executor held: before execution starts their submissions
        are re-queued onto the survivors (re-match); after, the data is
        gone with the enclave and the run degrades to the executors that
        still hold data.
        """
        ctx = self.ctx
        if address not in ctx.blacklist:
            ctx.blacklist.append(address)
        ctx.executors = [e for e in ctx.executors if e.address != address]
        ctx.active_executors = [
            e for e in ctx.active_executors if e.address != address
        ]
        orphans = ctx.assignments.pop(address, [])
        if orphan_resubmits:
            for provider in orphans:
                ctx.submitted.discard(provider.address)

    def _fail(self, phase: "LifecyclePhase", error: LifecycleError) -> None:
        self.emit("phase.failed", error=type(error).__name__,
                  message=str(error))
        self._release_escrow()
        _SESSION_OUTCOMES.labels(outcome="failed").inc()
        self.advance(TERMINAL_FAILED)
        self.emit("session.failed", phase=phase.name)

    def _release_escrow(self) -> None:
        """Settle-or-refund: a dying session must not strand the escrow.

        If the workload contract was deployed and is still unsettled, the
        consumer aborts it, refunding the escrowed reward pool.  Refund
        failure is recorded but never masks the original error.
        """
        ctx = self.ctx
        if not ctx.workload_address:
            return
        try:
            state = self.read_state()
            if state not in (STATE_OPEN, STATE_EXECUTING):
                return
            escrow = int(self.consumer.wallet.view(
                ctx.workload_address, "escrow"
            ))
            self.consumer.wallet.call(ctx.workload_address, "abort")
            self.market._mine()
            if self.read_state() != STATE_CANCELLED:
                raise SettlementFailure(
                    "abort transaction did not cancel the workload",
                    snapshot=self.snapshot(),
                )
            ctx.refunded = escrow
            _ESCROW_REFUNDED.inc(escrow)
            self.emit("session.refunded", actor=self.consumer.address,
                      refunded=escrow)
        except PDS2Error as exc:
            self.emit("session.refund_failed", error=type(exc).__name__,
                      message=str(exc))

    # -- helpers shared between the honest engine and interceptors ----------

    def cast_vote(self, executor: ExecutorActor, result_hash: str,
                  weights_bps: dict[str, int]) -> None:
        """One executor submits one (result hash, weights) vote on-chain."""
        executor.wallet.call(
            self.ctx.workload_address, "submit_result",
            result_hash=result_hash,
            provider_weights_bps=weights_bps,
        )
        self.ctx.voted.add(executor.address)
        self.emit("settle.vote_cast", actor=executor.address,
                  result_hash=result_hash)

    def read_state(self) -> str:
        """The workload contract's current lifecycle state (free view)."""
        return self.consumer.wallet.view(self.ctx.workload_address, "state")

    def collect_payouts(self) -> dict[str, int]:
        """Sum the contract's RewardPaid events per recipient."""
        payouts: dict[str, int] = {}
        for _, log in self.market.chain.events(
            name="RewardPaid", address=self.ctx.workload_address
        ):
            payouts[log.data["recipient"]] = (
                payouts.get(log.data["recipient"], 0)
                + int(log.data["amount"])
            )
        return payouts


# ---------------------------------------------------------------------------
# The phases
# ---------------------------------------------------------------------------


class LifecyclePhase:
    """One individually-testable lifecycle step."""

    name: str = ""
    failure_class: type[LifecycleError] = LifecycleError

    def run(self, session: WorkloadSession) -> None:
        raise NotImplementedError

    def restore(self, session: WorkloadSession) -> None:
        """Re-establish this phase's invariants on a rehydrated session.

        Called by :func:`repro.core.checkpoint.restore_session` for every
        phase the checkpoint records as completed, *before* the session
        resumes.  Implementations validate that the target marketplace
        still holds the state this phase produced (deployed contract,
        launched enclaves, consistent bookkeeping sets) and raise
        :class:`~repro.errors.CheckpointError` when it does not — the
        signature of restoring against the wrong market, where the right
        move is a deterministic replay instead.
        """

    def _restore_fail(self, session: WorkloadSession, message: str) -> None:
        from repro.errors import CheckpointError

        raise CheckpointError(
            f"cannot restore {session.session_id} past phase "
            f"{self.name!r}: {message}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<phase {self.name}>"


class DeployPhase(LifecyclePhase):
    """Fig. 2 step 1: validate the run and deploy the escrowed contract."""

    name = PHASE_DEPLOY
    failure_class = DeployFailure

    def run(self, session: WorkloadSession) -> None:
        kind = session.kind
        if session.ctx.workload_address:
            return  # recovery re-entry: the contract is already deployed
        executors = session.ctx.executors
        if not executors:
            raise DeployFailure("no executors available",
                                snapshot=session.snapshot())
        if kind.required_confirmations > len(executors):
            raise DeployFailure(
                "spec requires more confirmations than executors exist",
                snapshot=session.snapshot(),
            )
        session.fault_point("deploy.chain_tx")
        # Deploy + mine through the session clock (unlike the bare
        # ``deploy_and_mine`` default of head-timestamp + 1): every block a
        # session seals must carry the ticking sim clock, or a run that
        # fails right after deployment leaves the clock behind the head
        # timestamp and the *next* session would mine a non-monotonic block.
        deploy_tx = session.consumer.wallet.deploy(
            "workload", value=kind.reward_pool, **kind.contract_args()
        )
        session.market._mine()
        session.ctx.workload_address = (
            session.consumer.wallet.deployed_address(deploy_tx)
        )
        session.emit("contract.deployed",
                     actor=session.consumer.address,
                     workload_address=session.ctx.workload_address,
                     reward_pool=kind.reward_pool)

    def restore(self, session: WorkloadSession) -> None:
        """The deployed contract must exist here and carry the same spec."""
        ctx = session.ctx
        if not ctx.workload_address:
            self._restore_fail(session, "no workload address recorded")
        try:
            onchain_spec = session.consumer.wallet.view(
                ctx.workload_address, "spec_hash"
            )
        except PDS2Error as exc:
            self._restore_fail(
                session,
                f"contract {ctx.workload_address} is unknown to this "
                f"marketplace ({type(exc).__name__}) — chain state does "
                "not survive process death; replay from the job seed",
            )
        if onchain_spec != session.kind.spec_hash():
            self._restore_fail(
                session,
                f"contract at {ctx.workload_address} holds spec "
                f"{onchain_spec[:12]}…, not this workload's "
                f"{session.kind.spec_hash()[:12]}…",
            )


class MatchPhase(LifecyclePhase):
    """Fig. 2 step 2: storage-subsystem matching + provider consent."""

    name = PHASE_MATCH
    failure_class = MatchFailure

    def run(self, session: WorkloadSession) -> None:
        participants = [
            provider for provider in session.kind.match(session.market)
            if provider.address not in session.ctx.dropped_providers
        ]
        if len(participants) < session.kind.min_providers:
            raise MatchFailure(
                f"only {len(participants)} willing providers; "
                f"spec requires {session.kind.min_providers}",
                snapshot=session.snapshot(),
            )
        session.ctx.participants = participants
        for provider in participants:
            session.emit("match.provider_joined", actor=provider.address)
        session.emit("match.completed", providers=len(participants))

    def restore(self, session: WorkloadSession) -> None:
        """The matched participant set must still satisfy the spec."""
        ctx = session.ctx
        if not ctx.participants:
            self._restore_fail(session, "no matched participants recorded")
        if len(ctx.participants) < session.kind.min_providers:
            self._restore_fail(
                session,
                f"{len(ctx.participants)} participants < min_providers "
                f"{session.kind.min_providers}",
            )
        overlap = ctx.dropped_providers.intersection(
            p.address for p in ctx.participants
        )
        if overlap:
            self._restore_fail(
                session,
                f"dropped providers still listed as participants: "
                f"{sorted(overlap)}",
            )


class RegisterExecutorsPhase(LifecyclePhase):
    """Fig. 2 step 3: executors launch enclaves and register on-chain."""

    name = PHASE_REGISTER
    failure_class = RegistrationFailure

    def run(self, session: WorkloadSession) -> None:
        kind = session.kind
        ctx = session.ctx
        for executor in list(ctx.executors):
            if executor.address in ctx.registered:
                continue  # recovery re-entry: already registered on-chain
            session.fault_point("register.executor", executor=executor)
            executor.launch_enclave_for(kind.workload_id, kind.code)
            executor.wallet.call(
                session.ctx.workload_address, "register_executor",
                claimed_measurement=kind.code.measurement.hex(),
            )
            ctx.registered.add(executor.address)
            session.emit("executor.registered", actor=executor.address)
        session.market._mine()

    def restore(self, session: WorkloadSession) -> None:
        """Registered executors must still hold live, launched enclaves."""
        ctx = session.ctx
        known = {e.address for e in ctx.executors} | set(ctx.blacklist)
        stray = ctx.registered - known
        if stray:
            self._restore_fail(
                session,
                f"registered executors neither live nor blacklisted: "
                f"{sorted(stray)}",
            )
        workload_id = session.kind.workload_id
        for executor in ctx.executors:
            if executor.address not in ctx.registered:
                continue
            enclave = executor.enclaves.get(workload_id)
            if enclave is None:
                self._restore_fail(
                    session,
                    f"executor {executor.address} has no enclave for "
                    f"{workload_id!r} — enclave state does not survive "
                    "process death; replay from the job seed",
                )


class AttestAndSubmitPhase(LifecyclePhase):
    """Fig. 2 step 4: providers attest executors, send data + certificates."""

    name = PHASE_SUBMIT
    failure_class = SubmissionFailure

    def run(self, session: WorkloadSession) -> None:
        market = session.market
        kind = session.kind
        ctx = session.ctx
        onchain_measurement = session.consumer.wallet.view(
            ctx.workload_address, "code_measurement"
        )
        expected = bytes.fromhex(onchain_measurement)
        for executor in ctx.executors:
            ctx.assignments.setdefault(executor.address, [])
        for provider in ctx.participants:
            if provider.address in ctx.submitted:
                continue  # recovery re-entry: data already with a live executor
            # Round-robin over the (surviving) executors.  On a fault-free
            # run ``len(ctx.submitted)`` equals the participant index, so
            # assignments are byte-identical to the historical behavior.
            executor = ctx.executors[len(ctx.submitted) % len(ctx.executors)]
            session.fault_point("submit.executor", executor=executor)
            session.fault_point("submit.provider", provider=provider,
                                executor=executor)
            quote = executor.quote_for_workload(kind.workload_id, kind.code)
            enclave_key = market.attestation.verify(
                quote, expected_measurement=expected
            )
            envelope, certificate = provider.prepare_submission_for(
                kind.workload_id, executor.address, enclave_key,
                issued_at=market._tick(),
                rng=derive_rng(market.seed,
                               kind.submission_rng_label(provider)),
            )
            certificate.verify()
            executor.accept_data_for(
                kind.workload_id, kind.code, provider.address, envelope,
                provider.wallet.key.public_key,
            )
            if provider.address not in ctx.certified:
                # A provider re-matched onto a new executor after a crash
                # already has a certificate on-chain; submitting a second
                # one would double-count its samples in the contract.
                executor.wallet.call(
                    ctx.workload_address, "submit_participation",
                    provider=provider.address,
                    certificate_hash=certificate.certificate_hash.hex(),
                    data_root=certificate.data_root.hex(),
                    item_count=certificate.item_count,
                )
                ctx.certified.add(provider.address)
            ctx.assignments[executor.address].append(provider)
            ctx.submitted.add(provider.address)
            session.emit("storage.data_submitted", actor=provider.address,
                         executor=executor.address,
                         item_count=certificate.item_count)
        market._mine()

    def restore(self, session: WorkloadSession) -> None:
        """Submission bookkeeping must be internally consistent."""
        ctx = session.ctx
        stray = ctx.submitted - ctx.certified
        if stray:
            self._restore_fail(
                session,
                f"providers submitted without an on-chain certificate: "
                f"{sorted(stray)}",
            )
        live = {e.address for e in ctx.executors}
        assigned: set[str] = set()
        for executor, providers in ctx.assignments.items():
            if executor not in live:
                self._restore_fail(
                    session,
                    f"assignment references non-live executor {executor}",
                )
            assigned.update(p.address for p in providers)
        # Providers may be submitted yet unassigned only if their executor
        # crashed and took the assignment record (degrade path keeps them
        # in ``submitted`` — their data died with the enclave).
        missing = ctx.submitted - assigned
        if missing and not ctx.blacklist:
            self._restore_fail(
                session,
                f"submitted providers missing from all assignments: "
                f"{sorted(missing)}",
            )


class StartExecutionPhase(LifecyclePhase):
    """Fig. 2 step 5: gate execution on the consumer's preconditions."""

    name = PHASE_START
    failure_class = StartFailure

    def run(self, session: WorkloadSession) -> None:
        if session.read_state() == STATE_EXECUTING:
            return  # recovery re-entry: the gate already tripped
        session.fault_point("start.chain_tx")
        session.consumer.wallet.call(
            session.ctx.workload_address, "start_execution"
        )
        session.emit("execution.start_requested",
                     actor=session.consumer.address)
        session.market._mine()

    def restore(self, session: WorkloadSession) -> None:
        """Execution must already have started on this chain."""
        state = session.read_state()
        if state not in (STATE_EXECUTING, STATE_COMPLETE):
            self._restore_fail(
                session,
                f"contract state is {state!r}, expected executing or "
                "complete after start_execution",
            )


class ExecutePhase(LifecyclePhase):
    """Fig. 2 step 6a: every enclave that received data executes."""

    name = PHASE_EXECUTE
    failure_class = ExecutionFailure

    def run(self, session: WorkloadSession) -> None:
        kind = session.kind
        ctx = session.ctx
        ctx.active_executors = [
            executor for executor in ctx.executors
            if ctx.assignments.get(executor.address)
        ]
        run_kwargs = kind.run_kwargs(session.market)
        for executor in list(ctx.active_executors):
            if executor.address in ctx.executed:
                continue  # recovery re-entry: this enclave already ran
            session.fault_point("execute.executor", executor=executor)
            output = executor.execute_for(kind.workload_id, kind.code,
                                          **run_kwargs)
            ctx.outputs.append(output)
            ctx.executed.add(executor.address)
            session.emit("enclave.executed", actor=executor.address,
                         providers=len(ctx.assignments[executor.address]))

    def restore(self, session: WorkloadSession) -> None:
        """Every recorded execution must have a captured output."""
        ctx = session.ctx
        if len(ctx.outputs) != len(ctx.executed):
            self._restore_fail(
                session,
                f"{len(ctx.outputs)} outputs recorded for "
                f"{len(ctx.executed)} executed enclaves",
            )
        stray = ctx.executed - ctx.registered
        if stray:
            self._restore_fail(
                session,
                f"executors executed without registration: {sorted(stray)}",
            )


class AggregatePhase(LifecyclePhase):
    """Fig. 2 step 6b: all-reduce outputs and agree on payout weights."""

    name = PHASE_AGGREGATE
    failure_class = AggregationFailure

    def run(self, session: WorkloadSession) -> None:
        ctx = session.ctx
        vector, weights_bps, extra = session.kind.combine(
            session, ctx.outputs
        )
        ctx.result_vector = vector
        ctx.weights_bps = weights_bps
        ctx.extra = extra
        ctx.result_hash = result_hash_of(vector, weights_bps)
        session.emit("aggregate.completed", result_hash=ctx.result_hash,
                     outputs=len(ctx.outputs), degraded=ctx.degraded)

    def restore(self, session: WorkloadSession) -> None:
        """The checkpointed result must recompute to its recorded hash."""
        ctx = session.ctx
        if not ctx.result_hash:
            self._restore_fail(session, "no aggregated result hash recorded")
        recomputed = result_hash_of(
            np.asarray(ctx.result_vector, dtype=float), ctx.weights_bps
        )
        if recomputed != ctx.result_hash:
            self._restore_fail(
                session,
                "checkpointed result vector/weights do not hash to the "
                f"recorded result hash ({recomputed[:12]}… != "
                f"{ctx.result_hash[:12]}…)",
            )


class SettlePhase(LifecyclePhase):
    """Fig. 2 step 6c/7: quorum votes, contract payout, reward accounting.

    The adversary harness intercepts this phase to cast malicious votes;
    :meth:`finalize` is the shared tail both the honest path and the
    interceptors run after voting.
    """

    name = PHASE_SETTLE
    failure_class = SettlementFailure

    def run(self, session: WorkloadSession) -> None:
        ctx = session.ctx
        voters = ctx.active_executors[:session.kind.required_confirmations]
        for executor in voters:
            if executor.address in ctx.voted:
                continue  # recovery re-entry: vote already on-chain
            session.fault_point("settle.chain_tx", executor=executor)
            session.cast_vote(executor, ctx.result_hash, ctx.weights_bps)
        self.finalize(session)

    def finalize(self, session: WorkloadSession) -> None:
        """Mine the votes, check completion, and account the payouts."""
        ctx = session.ctx
        session.market._mine()
        ctx.final_state = session.read_state()
        if ctx.final_state != STATE_COMPLETE:
            session.emit("settle.incomplete", state=ctx.final_state)
            if session.require_completion:
                raise SettlementFailure(
                    "workload did not complete "
                    f"(state={ctx.final_state!r})",
                    snapshot=session.snapshot(),
                )
            return
        ctx.payouts = session.collect_payouts()
        for provider in ctx.participants:
            provider.rewards_received += ctx.payouts.get(provider.address, 0)
        session.emit("settle.payouts_recorded",
                     total_paid=sum(ctx.payouts.values()),
                     recipients=len(ctx.payouts))

    def restore(self, session: WorkloadSession) -> None:
        """A settled checkpoint must match the contract's final state."""
        ctx = session.ctx
        if ctx.final_state != STATE_COMPLETE:
            if session.require_completion:
                self._restore_fail(
                    session,
                    f"checkpoint settled in state {ctx.final_state!r} "
                    "despite require_completion",
                )
            return
        state = session.read_state()
        if state != STATE_COMPLETE:
            self._restore_fail(
                session,
                f"contract state is {state!r} but the checkpoint settled "
                "complete",
            )
        if ctx.payouts != session.collect_payouts():
            self._restore_fail(
                session,
                "checkpointed payouts disagree with the chain's RewardPaid "
                "events",
            )


class AuditPhase(LifecyclePhase):
    """Fig. 2 step 8: re-derive the history and cross-check the event trail."""

    name = PHASE_AUDIT
    failure_class = AuditFailure

    def run(self, session: WorkloadSession) -> None:
        if not session.audit_enabled:
            return
        report = audit_workload(
            session.market.chain, session.ctx.workload_address,
            auditor=session.consumer.address,
        )
        # The off-chain trail must cover the on-chain history: every event
        # the contract emitted appears in this session's event log.
        report.violations.extend(trail_covers_chain(
            session.market.chain, session.ctx.workload_address,
            session.trail,
        ))
        session.ctx.audit = report
        session.emit("audit.completed", clean=report.clean,
                     violations=len(report.violations))

    def restore(self, session: WorkloadSession) -> None:
        """Audit re-runs on resume; the report is never checkpointed."""
        if session.ctx.audit is not None:
            self._restore_fail(
                session,
                "a restored session cannot carry a pre-built audit report "
                "(the audit phase re-derives it from chain + trail)",
            )


#: The canonical phase order the engine drives.
LIFECYCLE_PHASES: tuple[LifecyclePhase, ...] = (
    DeployPhase(),
    MatchPhase(),
    RegisterExecutorsPhase(),
    AttestAndSubmitPhase(),
    StartExecutionPhase(),
    ExecutePhase(),
    AggregatePhase(),
    SettlePhase(),
    AuditPhase(),
)

#: Phase name -> phase object, for tests and interceptor writers.
PHASES_BY_NAME: dict[str, LifecyclePhase] = {
    phase.name: phase for phase in LIFECYCLE_PHASES
}

#: Phase name -> position in the canonical order (recovery re-entry).
PHASE_INDEX: dict[str, int] = {
    phase.name: index for index, phase in enumerate(LIFECYCLE_PHASES)
}
