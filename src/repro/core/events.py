"""Structured lifecycle events and the marketplace event bus.

Every observable step of a workload lifecycle — phase transitions, block
mining, attestation checks, enclave launches, data submissions, payouts —
is published as a frozen :class:`LifecycleEvent` on the marketplace
:class:`EventBus`.  Sinks are pluggable: the default in-memory
:class:`RingBufferSink` backs interactive queries and tests, a
:class:`JSONLSink` persists a run for ``python -m repro trace``, and a
:class:`MetricsSink` keeps cheap counters for benchmarks.

The event trail is the off-chain half of the audit story (DataBright/D2M
structure their markets the same way): each event records the session id,
lifecycle phase, both clocks (wall and simulated), the gas consumed since
the previous chain event, and the acting address, so an auditor can replay
a session and cross-check it against the on-chain history.
"""

from __future__ import annotations

import json
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Iterable, Iterator, Mapping, Protocol


@dataclass(frozen=True)
class LifecycleEvent:
    """One observable step of a workload lifecycle.

    ``wall_time`` comes from ``time.perf_counter()`` — a monotonic clock,
    so *deltas* between events are meaningful even across NTP steps; it is
    not an absolute time.  ``timestamp`` is the absolute ``time.time()``
    for human-readable JSONL records and must never be subtracted.
    ``gas_delta`` is zero for purely off-chain steps; for chain events it
    is the gas consumed by the step.  ``block_height`` is ``-1`` when the
    event is not tied to a specific block.
    """

    session_id: str
    phase: str
    name: str
    sequence: int
    wall_time: float
    sim_clock: float
    gas_delta: int = 0
    block_height: int = -1
    actor: str = ""
    timestamp: float = 0.0
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze the payload so a published event can never mutate.
        object.__setattr__(self, "data", MappingProxyType(dict(self.data)))

    def to_dict(self) -> dict:
        """JSON-serializable view (the JSONL record format)."""
        return {
            "session_id": self.session_id,
            "phase": self.phase,
            "name": self.name,
            "sequence": self.sequence,
            "wall_time": self.wall_time,
            "sim_clock": self.sim_clock,
            "gas_delta": self.gas_delta,
            "block_height": self.block_height,
            "actor": self.actor,
            "timestamp": self.timestamp,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "LifecycleEvent":
        """Inverse of :meth:`to_dict` (used by the trace replayer)."""
        return cls(
            session_id=record["session_id"],
            phase=record["phase"],
            name=record["name"],
            sequence=int(record["sequence"]),
            wall_time=float(record["wall_time"]),
            sim_clock=float(record["sim_clock"]),
            gas_delta=int(record.get("gas_delta", 0)),
            block_height=int(record.get("block_height", -1)),
            actor=record.get("actor", ""),
            timestamp=float(record.get("timestamp", 0.0)),
            data=record.get("data", {}),
        )


class EventSink(Protocol):
    """Anything that can receive published lifecycle events."""

    def emit(self, event: LifecycleEvent) -> None:
        ...


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory (the default sink)."""

    def __init__(self, capacity: int = 10_000):
        self._buffer: deque[LifecycleEvent] = deque(maxlen=capacity)

    def emit(self, event: LifecycleEvent) -> None:
        self._buffer.append(event)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[LifecycleEvent]:
        return iter(tuple(self._buffer))

    @property
    def events(self) -> tuple[LifecycleEvent, ...]:
        return tuple(self._buffer)

    def for_session(self, session_id: str) -> tuple[LifecycleEvent, ...]:
        """All buffered events of one session, in publication order."""
        return tuple(e for e in self._buffer if e.session_id == session_id)

    def session_ids(self) -> list[str]:
        """Distinct session ids in first-seen order (excluding platform events)."""
        seen: dict[str, None] = {}
        for event in self._buffer:
            if event.session_id:
                seen.setdefault(event.session_id, None)
        return list(seen)

    def clear(self) -> None:
        self._buffer.clear()


class JSONLSink:
    """Append every event as one JSON line to ``path``.

    ``flush_every`` trades durability for throughput: the default of 1
    flushes after every event, so a session killed mid-run loses at most
    the line being written (``read_jsonl_events`` tolerates that torn
    tail).  Larger values batch OS writes for long benchmark traces; call
    :meth:`flush` (or close, or exit the ``with`` block) to force the
    buffer out.
    """

    def __init__(self, path: str, flush_every: int = 1):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = path
        self.flush_every = flush_every
        self._pending = 0
        self._handle = open(path, "a", encoding="utf-8")

    def emit(self, event: LifecycleEvent) -> None:
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True))
        self._handle.write("\n")
        self._pending += 1
        if self._pending >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered lines to the OS (no-op on a closed sink)."""
        if not self._handle.closed:
            self._handle.flush()
        self._pending = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl_events(path: str) -> list[LifecycleEvent]:
    """Load a JSONL trace file back into events (the ``trace`` command).

    A truncated *final* line — the signature of a writer killed mid-write —
    is dropped silently; corruption anywhere else still raises, because a
    torn middle means the file was edited, not interrupted.
    """
    events = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn tail from an interrupted writer
            raise
        events.append(LifecycleEvent.from_dict(record))
    return events


class MetricsSink:
    """Event-stream metrics over a telemetry registry.

    Historically this kept its own ad-hoc ``Counter`` dicts; it is now a
    thin adapter feeding a :class:`~repro.telemetry.metrics.MetricsRegistry`
    (its own private one by default, so attaching a sink never pollutes the
    process registry).  The original attribute API (``total_gas``,
    ``events_by_name``…) is preserved as views over the registry.
    """

    def __init__(self, registry=None) -> None:
        from repro.telemetry.metrics import MetricsRegistry

        self.registry = registry if registry is not None else MetricsRegistry()
        self._by_name = self.registry.counter(
            "pds2_events_total", "Lifecycle events by name",
            labelnames=("name",),
        )
        self._by_phase = self.registry.counter(
            "pds2_events_by_phase_total", "Lifecycle events by phase",
            labelnames=("phase",),
        )
        self._gas = self.registry.counter(
            "pds2_gas_used_total", "Gas consumed, by lifecycle phase",
            labelnames=("phase",),
        )

    def emit(self, event: LifecycleEvent) -> None:
        self._by_name.labels(name=event.name).inc()
        self._by_phase.labels(phase=event.phase).inc()
        if event.gas_delta:
            self._gas.labels(phase=event.phase).inc(event.gas_delta)

    # -- the original counter API, as registry views -------------------------

    @property
    def total_events(self) -> int:
        return int(self._by_name.total())

    @property
    def total_gas(self) -> int:
        return int(self._gas.total())

    @property
    def events_by_name(self) -> Counter[str]:
        return Counter({s.labels["name"]: int(s.value)
                        for s in self._by_name.samples() if s.value})

    @property
    def events_by_phase(self) -> Counter[str]:
        return Counter({s.labels["phase"]: int(s.value)
                        for s in self._by_phase.samples() if s.value})

    @property
    def gas_by_phase(self) -> Counter[str]:
        return Counter({s.labels["phase"]: int(s.value)
                        for s in self._gas.samples() if s.value})


class EventBus:
    """Publish/subscribe fan-out for lifecycle events.

    The bus assigns the global sequence number and both wall clocks —
    ``clock`` (``time.perf_counter``: monotonic, duration-safe) for
    ``wall_time`` and ``abs_clock`` (``time.time``) for the absolute
    ``timestamp`` — callers supply everything else.  Sink failures
    propagate — a broken sink is a configuration error, not something to
    swallow silently.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 abs_clock: Callable[[], float] = time.time,
                 sinks: Iterable[EventSink] | None = None):
        self._clock = clock
        self._abs_clock = abs_clock
        self._sinks: list[EventSink] = list(sinks or ())
        self._sequence = 0

    def attach(self, sink: EventSink) -> EventSink:
        """Register a sink; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink: EventSink) -> None:
        self._sinks.remove(sink)

    @property
    def sinks(self) -> tuple[EventSink, ...]:
        return tuple(self._sinks)

    def emit(self, *, session_id: str, phase: str, name: str,
             sim_clock: float, gas_delta: int = 0, block_height: int = -1,
             actor: str = "", data: Mapping[str, Any] | None = None,
             ) -> LifecycleEvent:
        """Build, stamp, and fan out one event; returns it."""
        self._sequence += 1
        event = LifecycleEvent(
            session_id=session_id,
            phase=phase,
            name=name,
            sequence=self._sequence,
            wall_time=self._clock(),
            timestamp=self._abs_clock(),
            sim_clock=sim_clock,
            gas_delta=gas_delta,
            block_height=block_height,
            actor=actor,
            data=data or {},
        )
        for sink in self._sinks:
            sink.emit(event)
        return event


def phase_wall_times(events: Iterable[LifecycleEvent]) -> dict[str, float]:
    """Wall-clock seconds spent per phase, from started/completed pairs.

    Durations come from ``wall_time`` (monotonic ``perf_counter``), never
    from the absolute ``timestamp`` field — wall-of-day clocks can step
    backwards under NTP and would produce negative phase times.
    """
    started: dict[str, float] = {}
    durations: dict[str, float] = {}
    for event in events:
        if event.name == "phase.started":
            started[event.phase] = event.wall_time
        elif event.name in ("phase.completed", "phase.failed"):
            begin = started.pop(event.phase, None)
            if begin is not None:
                durations[event.phase] = (
                    durations.get(event.phase, 0.0)
                    + (event.wall_time - begin)
                )
    return durations


def phase_gas_totals(events: Iterable[LifecycleEvent]) -> dict[str, int]:
    """Gas consumed per phase, from the events' gas deltas."""
    totals: dict[str, int] = {}
    for event in events:
        if event.gas_delta:
            totals[event.phase] = totals.get(event.phase, 0) + event.gas_delta
    return totals


#: Event names worth surfacing as instant markers on a trace timeline.
MARKER_EVENT_PREFIXES = ("fault.", "recovery.", "session.")


def instant_markers(events: Iterable[LifecycleEvent]) -> list[dict]:
    """Fault/recovery/session events as Chrome trace-event instants.

    Complements the span lanes of a Chrome export: spans show *where time
    went*, these ``ph:"i"`` markers show *what happened to the run* —
    injected faults, recovery directives, session boundaries — at their
    sim-clock positions (sim units mapped 1:1 to microseconds, matching
    nothing but themselves: instants are ordinal, not durations).
    """
    markers: list[dict] = []
    for event in events:
        if not event.name.startswith(MARKER_EVENT_PREFIXES):
            continue
        markers.append({
            "ph": "i", "pid": 1, "tid": 1, "s": "g",
            "name": event.name,
            "cat": event.name.split(".", 1)[0],
            "ts": max(0.0, event.sim_clock),
            "args": {
                "session_id": event.session_id,
                "phase": event.phase,
                "sequence": event.sequence,
                **{k: v for k, v in event.data.items()
                   if isinstance(v, (str, int, float, bool))},
            },
        })
    return markers
