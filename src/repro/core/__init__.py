"""Marketplace core: the paper's primary contribution, assembled.

The :class:`Marketplace` facade wires the blockchain governance layer, TEE
executors, storage subsystems and reward schemes into the five-role
architecture of Fig. 1 and runs the full Fig. 2 workload lifecycle.
"""

from repro.core.adversary import (
    AdversarialOutcome,
    ExecutorBehavior,
    confirmed_result,
    run_with_adversaries,
)
from repro.core.aggregates import (
    AggregateKind,
    AggregateResult,
    AggregateSpec,
    aggregate_enclave_entry_point,
    combine_aggregate_outputs,
)
from repro.core.actors import (
    ConsumerActor,
    ExecutorActor,
    ParticipationPolicy,
    ProviderActor,
    accept_all_policy,
    minimum_reward_policy,
    result_hash_of,
)
from repro.core.events import (
    EventBus,
    JSONLSink,
    LifecycleEvent,
    MetricsSink,
    RingBufferSink,
    phase_gas_totals,
    phase_wall_times,
    read_jsonl_events,
)
from repro.core.lifecycle import (
    LIFECYCLE_PHASES,
    PHASES_BY_NAME,
    TRANSITIONS,
    AggregateWorkloadKind,
    LifecyclePhase,
    MLTrainingKind,
    SessionContext,
    WorkloadKind,
    WorkloadSession,
)
from repro.core.marketplace import (
    DEFAULT_FUNDING,
    Marketplace,
    WorkloadRunReport,
)
from repro.core.workload import (
    ModelSpec,
    RewardScheme,
    TrainingSpec,
    WorkloadSpec,
    deserialize_rows,
    enclave_entry_point,
    serialize_partition,
    serialize_row,
)

__all__ = [
    "AdversarialOutcome",
    "ExecutorBehavior",
    "confirmed_result",
    "run_with_adversaries",
    "AggregateKind",
    "AggregateResult",
    "AggregateSpec",
    "aggregate_enclave_entry_point",
    "combine_aggregate_outputs",
    "ConsumerActor",
    "ExecutorActor",
    "ParticipationPolicy",
    "ProviderActor",
    "accept_all_policy",
    "minimum_reward_policy",
    "result_hash_of",
    "EventBus",
    "JSONLSink",
    "LifecycleEvent",
    "MetricsSink",
    "RingBufferSink",
    "phase_gas_totals",
    "phase_wall_times",
    "read_jsonl_events",
    "LIFECYCLE_PHASES",
    "PHASES_BY_NAME",
    "TRANSITIONS",
    "AggregateWorkloadKind",
    "LifecyclePhase",
    "MLTrainingKind",
    "SessionContext",
    "WorkloadKind",
    "WorkloadSession",
    "DEFAULT_FUNDING",
    "Marketplace",
    "WorkloadRunReport",
    "ModelSpec",
    "RewardScheme",
    "TrainingSpec",
    "WorkloadSpec",
    "deserialize_rows",
    "enclave_entry_point",
    "serialize_partition",
    "serialize_row",
]
