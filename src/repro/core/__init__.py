"""Marketplace core: the paper's primary contribution, assembled.

The :class:`Marketplace` facade wires the blockchain governance layer, TEE
executors, storage subsystems and reward schemes into the five-role
architecture of Fig. 1 and runs the full Fig. 2 workload lifecycle.
"""

from repro.core.adversary import (
    AdversarialOutcome,
    ExecutorBehavior,
    confirmed_result,
    run_with_adversaries,
)
from repro.core.aggregates import (
    AggregateKind,
    AggregateResult,
    AggregateSpec,
    aggregate_enclave_entry_point,
    combine_aggregate_outputs,
)
from repro.core.actors import (
    ConsumerActor,
    ExecutorActor,
    ParticipationPolicy,
    ProviderActor,
    accept_all_policy,
    minimum_reward_policy,
    result_hash_of,
)
from repro.core.marketplace import (
    DEFAULT_FUNDING,
    Marketplace,
    WorkloadRunReport,
)
from repro.core.workload import (
    ModelSpec,
    RewardScheme,
    TrainingSpec,
    WorkloadSpec,
    deserialize_rows,
    enclave_entry_point,
    serialize_partition,
    serialize_row,
)

__all__ = [
    "AdversarialOutcome",
    "ExecutorBehavior",
    "confirmed_result",
    "run_with_adversaries",
    "AggregateKind",
    "AggregateResult",
    "AggregateSpec",
    "aggregate_enclave_entry_point",
    "combine_aggregate_outputs",
    "ConsumerActor",
    "ExecutorActor",
    "ParticipationPolicy",
    "ProviderActor",
    "accept_all_policy",
    "minimum_reward_policy",
    "result_hash_of",
    "DEFAULT_FUNDING",
    "Marketplace",
    "WorkloadRunReport",
    "ModelSpec",
    "RewardScheme",
    "TrainingSpec",
    "WorkloadSpec",
    "deserialize_rows",
    "enclave_entry_point",
    "serialize_partition",
    "serialize_row",
]
