"""Workload leak-risk analysis (paper Section IV-D).

"In PDS2 the executors could statically or dynamically analyze each workload
to assess the risk of privacy leaks and apply the most suitable measures to
limit it."  This module is that analyzer: it scores a workload description
on the factors known to drive training-data leakage and recommends a
mitigation level.

Risk factors (each scored in [0, 1], weighted into a total):

* **capacity ratio** — parameters per training sample; overparameterized
  models memorize (Nasr et al.);
* **output richness** — full model released > predictions > aggregate
  statistic;
* **participant count** — few providers mean each contributes a large,
  identifiable share;
* **dp protection** — an attached DP guarantee discounts the risk by a
  factor derived from epsilon.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class OutputKind(enum.Enum):
    """What the consumer receives, ordered by information content."""

    AGGREGATE_STATISTIC = "aggregate"
    PREDICTIONS = "predictions"
    FULL_MODEL = "full_model"


class MitigationLevel(enum.Enum):
    """Recommended response, from none to refusing execution."""

    NONE = "none"
    CLIP_OUTPUTS = "clip_outputs"
    REQUIRE_DP = "require_dp"
    REJECT = "reject"


_OUTPUT_RICHNESS = {
    OutputKind.AGGREGATE_STATISTIC: 0.2,
    OutputKind.PREDICTIONS: 0.6,
    OutputKind.FULL_MODEL: 1.0,
}


@dataclass(frozen=True)
class WorkloadRiskProfile:
    """Static description of a workload, as visible to an executor."""

    model_parameters: int
    training_samples: int
    num_providers: int
    output_kind: OutputKind
    dp_epsilon: float | None = None  # None means "no DP attached"


@dataclass(frozen=True)
class RiskAssessment:
    """The analyzer's verdict."""

    risk_score: float                 # in [0, 1]
    capacity_score: float
    output_score: float
    concentration_score: float
    dp_discount: float
    mitigation: MitigationLevel


def _capacity_score(parameters: int, samples: int) -> float:
    """Memorization pressure: saturates as params/sample exceeds ~10."""
    if samples <= 0:
        return 1.0
    ratio = parameters / samples
    return min(1.0, ratio / 10.0)


def _concentration_score(num_providers: int) -> float:
    """Risk from few participants: 1 provider scores 1, 1000+ near 0."""
    if num_providers <= 1:
        return 1.0
    return min(1.0, 1.0 / math.log2(num_providers + 1))


def _dp_discount(epsilon: float | None) -> float:
    """Multiplier applied to the raw risk: eps=1 keeps ~33%, eps=8 ~73%."""
    if epsilon is None:
        return 1.0
    if epsilon <= 0:
        return 0.0
    return epsilon / (epsilon + 2.0)


def assess_workload(profile: WorkloadRiskProfile,
                    require_dp_threshold: float = 0.5,
                    reject_threshold: float = 0.85) -> RiskAssessment:
    """Score a workload and recommend a mitigation level.

    The raw risk is the weighted mean of the three exposure factors, scaled
    by the DP discount.  Thresholds map the final score onto the mitigation
    ladder; defaults make an un-noised full-model release from a small crowd
    land in ``REQUIRE_DP`` and a single-provider memorizing model in
    ``REJECT``.
    """
    capacity = _capacity_score(profile.model_parameters,
                               profile.training_samples)
    output = _OUTPUT_RICHNESS[profile.output_kind]
    concentration = _concentration_score(profile.num_providers)
    raw = 0.4 * capacity + 0.35 * output + 0.25 * concentration
    discount = _dp_discount(profile.dp_epsilon)
    score = raw * discount
    if score >= reject_threshold:
        mitigation = MitigationLevel.REJECT
    elif score >= require_dp_threshold:
        mitigation = MitigationLevel.REQUIRE_DP
    elif score >= require_dp_threshold / 2:
        mitigation = MitigationLevel.CLIP_OUTPUTS
    else:
        mitigation = MitigationLevel.NONE
    return RiskAssessment(
        risk_score=score,
        capacity_score=capacity,
        output_score=output,
        concentration_score=concentration,
        dp_discount=discount,
        mitigation=mitigation,
    )
