"""Privacy-leak control (paper Section IV-D).

Differential-privacy mechanisms and accounting, DP-SGD training, the
membership-inference attack used to *measure* leakage, and the workload
risk analyzer executors run before accepting a job.
"""

from repro.privacy.accountant import (
    DEFAULT_ORDERS,
    PrivacyAccountant,
    RDPAccountant,
    SpendRecord,
    advanced_composition_epsilon,
)
from repro.privacy.attacks import (
    MembershipInferenceResult,
    empirical_epsilon_lower_bound,
    membership_inference_attack,
)
from repro.privacy.dpsgd import (
    DPSGDConfig,
    DPSGDResult,
    clip_gradients,
    noise_multiplier_for_epsilon,
    train_dpsgd,
)
from repro.privacy.leakage import (
    MitigationLevel,
    OutputKind,
    RiskAssessment,
    WorkloadRiskProfile,
    assess_workload,
)
from repro.privacy.mechanisms import (
    gaussian_mechanism,
    gaussian_noise_sigma,
    laplace_mechanism,
    laplace_noise_scale,
    randomized_response,
    randomized_response_estimate,
)

__all__ = [
    "DEFAULT_ORDERS",
    "PrivacyAccountant",
    "RDPAccountant",
    "SpendRecord",
    "advanced_composition_epsilon",
    "MembershipInferenceResult",
    "empirical_epsilon_lower_bound",
    "membership_inference_attack",
    "DPSGDConfig",
    "DPSGDResult",
    "clip_gradients",
    "noise_multiplier_for_epsilon",
    "train_dpsgd",
    "MitigationLevel",
    "OutputKind",
    "RiskAssessment",
    "WorkloadRiskProfile",
    "assess_workload",
    "gaussian_mechanism",
    "gaussian_noise_sigma",
    "laplace_mechanism",
    "laplace_noise_scale",
    "randomized_response",
    "randomized_response_estimate",
]
