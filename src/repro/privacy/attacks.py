"""Privacy attacks: measuring what actually leaks from trained models.

Section IV-D cites Nasr et al.'s membership-inference analyses as evidence
that model outputs leak training data.  To quantify leakage (and the benefit
of DP-SGD) this module implements the standard loss-threshold membership
inference attack of Yeom et al.: members tend to have lower loss than
non-members, so an attacker thresholds the per-example loss.

Reported metrics: attack AUC, best-threshold accuracy and the
membership *advantage* ``TPR - FPR`` (0 = no leak, 1 = total leak).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PrivacyError
from repro.ml.models import Model


@dataclass(frozen=True)
class MembershipInferenceResult:
    """Outcome of one membership-inference evaluation."""

    auc: float
    advantage: float
    attack_accuracy: float
    member_mean_loss: float
    nonmember_mean_loss: float


def _per_example_losses(model: Model, features: np.ndarray,
                        targets: np.ndarray) -> np.ndarray:
    return np.array([
        model.loss(features[i:i + 1], targets[i:i + 1])
        for i in range(len(features))
    ])


def _auc_from_scores(positive: np.ndarray, negative: np.ndarray) -> float:
    """Rank-based AUC (probability a positive outranks a negative)."""
    scores = np.concatenate([positive, negative])
    labels = np.concatenate([
        np.ones(len(positive)), np.zeros(len(negative))
    ])
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores))
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ranks over ties for an unbiased AUC.
    for value in np.unique(scores):
        mask = scores == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    positive_rank_sum = ranks[labels == 1].sum()
    n_pos, n_neg = len(positive), len(negative)
    return float(
        (positive_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
    )


def membership_inference_attack(model: Model, member_features: np.ndarray,
                                member_targets: np.ndarray,
                                nonmember_features: np.ndarray,
                                nonmember_targets: np.ndarray,
                                ) -> MembershipInferenceResult:
    """Run the loss-threshold attack against ``model``.

    The attack scores each example by ``-loss`` (lower loss = more likely a
    member) and sweeps all thresholds for the best accuracy and the maximum
    ``TPR - FPR`` advantage.
    """
    if len(member_features) == 0 or len(nonmember_features) == 0:
        raise PrivacyError("attack needs non-empty member and non-member sets")
    member_losses = _per_example_losses(model, member_features,
                                        member_targets)
    nonmember_losses = _per_example_losses(model, nonmember_features,
                                           nonmember_targets)
    # Members should score HIGHER under -loss.
    auc = _auc_from_scores(-member_losses, -nonmember_losses)

    thresholds = np.unique(np.concatenate([member_losses,
                                           nonmember_losses]))
    best_advantage = 0.0
    best_accuracy = 0.5
    n_members = len(member_losses)
    n_nonmembers = len(nonmember_losses)
    for threshold in thresholds:
        tpr = float(np.mean(member_losses <= threshold))
        fpr = float(np.mean(nonmember_losses <= threshold))
        advantage = tpr - fpr
        accuracy = (tpr * n_members + (1 - fpr) * n_nonmembers) / (
            n_members + n_nonmembers
        )
        if advantage > best_advantage:
            best_advantage = advantage
        if accuracy > best_accuracy:
            best_accuracy = accuracy
    return MembershipInferenceResult(
        auc=auc,
        advantage=best_advantage,
        attack_accuracy=best_accuracy,
        member_mean_loss=float(member_losses.mean()),
        nonmember_mean_loss=float(nonmember_losses.mean()),
    )


def empirical_epsilon_lower_bound(result: MembershipInferenceResult,
                                  ) -> float:
    """A crude epsilon lower bound implied by the observed advantage.

    From the DP hypothesis-testing interpretation: advantage a implies
    ``epsilon >= ln((1 + a) / (1 - a))`` (at delta = 0).  Useful as a sanity
    check that measured leakage stays below the accountant's guarantee.
    """
    advantage = min(max(result.advantage, 0.0), 1.0 - 1e-9)
    return float(np.log((1.0 + advantage) / (1.0 - advantage)))
