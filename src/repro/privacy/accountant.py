"""Privacy accounting: budget tracking and composition.

An executor running several mechanisms on the same providers' data must
bound the *total* privacy loss.  :class:`PrivacyAccountant` enforces an
(epsilon, delta) budget under basic composition; :class:`RDPAccountant`
implements Rényi-DP accounting for the subsampled Gaussian mechanism, which
is what DP-SGD needs to report meaningful epsilons.

The subsampled-Gaussian RDP bound used here is the standard practical
approximation ``rdp(alpha) ~= q^2 * alpha / sigma^2`` (tight for small
sampling rate ``q`` and moderate alpha), evaluated over a grid of orders and
converted with ``epsilon = min_alpha rdp(alpha) + log(1/delta)/(alpha-1)``.
It matches the moments-accountant shape within a small constant for the
regimes the benchmarks use; EXPERIMENTS.md records it as an approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import PrivacyBudgetExceededError, PrivacyError

#: Default Rényi order grid (the set used by common DP libraries).
DEFAULT_ORDERS = tuple([1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0,
                        10.0, 12.0, 16.0, 20.0, 32.0, 64.0, 128.0])


@dataclass
class SpendRecord:
    """One charged mechanism invocation."""

    label: str
    epsilon: float
    delta: float


@dataclass
class PrivacyAccountant:
    """Tracks cumulative (epsilon, delta) under basic composition."""

    epsilon_budget: float
    delta_budget: float
    spent_epsilon: float = 0.0
    spent_delta: float = 0.0
    history: list[SpendRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.epsilon_budget <= 0 or not 0 <= self.delta_budget < 1:
            raise PrivacyError("invalid privacy budget")

    @property
    def remaining_epsilon(self) -> float:
        return max(0.0, self.epsilon_budget - self.spent_epsilon)

    @property
    def remaining_delta(self) -> float:
        return max(0.0, self.delta_budget - self.spent_delta)

    def can_spend(self, epsilon: float, delta: float = 0.0) -> bool:
        """True when a charge of (epsilon, delta) fits the budget."""
        return (self.spent_epsilon + epsilon <= self.epsilon_budget + 1e-12
                and self.spent_delta + delta <= self.delta_budget + 1e-12)

    def spend(self, epsilon: float, delta: float = 0.0,
              label: str = "mechanism") -> None:
        """Charge a mechanism, raising when the budget would be exceeded."""
        if epsilon < 0 or delta < 0:
            raise PrivacyError("cannot spend negative privacy")
        if not self.can_spend(epsilon, delta):
            raise PrivacyBudgetExceededError(
                f"spending ({epsilon}, {delta}) would exceed the budget "
                f"({self.remaining_epsilon:.4f}, {self.remaining_delta:.2e} "
                "remaining)"
            )
        self.spent_epsilon += epsilon
        self.spent_delta += delta
        self.history.append(SpendRecord(label=label, epsilon=epsilon,
                                        delta=delta))


def advanced_composition_epsilon(per_step_epsilon: float, steps: int,
                                 delta_prime: float) -> float:
    """Total epsilon of ``steps`` eps-DP mechanisms (advanced composition).

    Dwork-Rothblum-Vadhan: ``eps_total = eps * sqrt(2k ln(1/delta')) +
    k * eps * (e^eps - 1)``, at an extra delta' failure probability.
    """
    if per_step_epsilon <= 0 or steps < 1 or not 0 < delta_prime < 1:
        raise PrivacyError("invalid advanced-composition arguments")
    eps = per_step_epsilon
    return (eps * math.sqrt(2.0 * steps * math.log(1.0 / delta_prime))
            + steps * eps * (math.exp(eps) - 1.0))


class RDPAccountant:
    """Rényi-DP accountant for the subsampled Gaussian mechanism."""

    def __init__(self, orders: tuple[float, ...] = DEFAULT_ORDERS):
        if any(order <= 1.0 for order in orders):
            raise PrivacyError("Rényi orders must exceed 1")
        self.orders = orders
        self._rdp = [0.0] * len(orders)
        self.steps_recorded = 0

    def step(self, noise_multiplier: float, sampling_rate: float,
             steps: int = 1) -> None:
        """Record ``steps`` subsampled-Gaussian steps.

        ``noise_multiplier`` is sigma/clip-norm; ``sampling_rate`` the batch
        fraction q.
        """
        if noise_multiplier <= 0:
            raise PrivacyError("noise multiplier must be positive")
        if not 0 < sampling_rate <= 1:
            raise PrivacyError("sampling rate must be in (0, 1]")
        if steps < 1:
            raise PrivacyError("steps must be >= 1")
        q = sampling_rate
        sigma = noise_multiplier
        for index, alpha in enumerate(self.orders):
            if q == 1.0:
                rdp = alpha / (2.0 * sigma**2)
            else:
                rdp = (q**2) * alpha / (sigma**2)
            self._rdp[index] += rdp * steps
        self.steps_recorded += steps

    def get_epsilon(self, delta: float) -> float:
        """Best epsilon over the order grid at the target delta."""
        if not 0 < delta < 1:
            raise PrivacyError("delta must be in (0, 1)")
        candidates = [
            rdp + math.log(1.0 / delta) / (alpha - 1.0)
            for alpha, rdp in zip(self.orders, self._rdp)
        ]
        return min(candidates)
