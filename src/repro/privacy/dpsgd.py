"""Differentially private SGD (Abadi et al. style).

Per-example gradient clipping plus calibrated Gaussian noise, with privacy
tracked by the :class:`~repro.privacy.accountant.RDPAccountant`.  This is
the mitigation Section IV-D proposes for training-time privacy leaks, and
the treatment arm of experiment E11 (membership-inference advantage versus
epsilon).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PrivacyError
from repro.ml.models import Model
from repro.privacy.accountant import RDPAccountant


@dataclass
class DPSGDConfig:
    """DP-SGD hyperparameters.

    ``noise_multiplier`` is the ratio sigma / clip_norm; epsilon at a given
    delta follows from it, the sampling rate, and the step count.
    """

    clip_norm: float = 1.0
    noise_multiplier: float = 1.0
    learning_rate: float = 0.1
    batch_size: int = 32
    steps: int = 200

    def __post_init__(self) -> None:
        if self.clip_norm <= 0:
            raise PrivacyError("clip norm must be positive")
        if self.noise_multiplier < 0:
            raise PrivacyError("noise multiplier must be non-negative")
        if self.batch_size < 1 or self.steps < 1:
            raise PrivacyError("batch size and steps must be >= 1")


@dataclass
class DPSGDResult:
    """Training outcome plus the privacy bill."""

    epsilon: float
    delta: float
    steps: int
    mean_clip_fraction: float  # fraction of per-example grads that hit the clip


def clip_gradients(per_example: np.ndarray, clip_norm: float) -> tuple[np.ndarray, float]:
    """Scale each row to L2 norm <= clip_norm; returns (clipped, hit rate)."""
    norms = np.linalg.norm(per_example, axis=1, keepdims=True)
    factors = np.minimum(1.0, clip_norm / np.maximum(norms, 1e-12))
    clipped = per_example * factors
    hit_fraction = float(np.mean(norms.ravel() > clip_norm))
    return clipped, hit_fraction


def train_dpsgd(model: Model, features: np.ndarray, targets: np.ndarray,
                config: DPSGDConfig, rng: np.random.Generator,
                delta: float = 1e-5) -> DPSGDResult:
    """Train ``model`` in place with DP-SGD and return the (eps, delta) bill.

    Per-example gradients are obtained by calling the model's ``gradient``
    on single examples — O(batch) model evaluations per step, which is fine
    at the linear/MLP scale this reproduction uses.

    With ``noise_multiplier == 0`` the function degrades to plain clipped
    SGD and reports ``epsilon = inf`` (the no-DP control arm).
    """
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets)
    n = len(features)
    if n == 0:
        raise PrivacyError("cannot train on an empty dataset")
    batch = min(config.batch_size, n)
    sampling_rate = batch / n
    accountant = RDPAccountant()
    clip_hits = []
    for _ in range(config.steps):
        index = rng.choice(n, size=batch, replace=False)
        per_example = np.stack([
            model.gradient(features[i:i + 1], targets[i:i + 1])
            for i in index
        ])
        clipped, hit = clip_gradients(per_example, config.clip_norm)
        clip_hits.append(hit)
        grad = clipped.sum(axis=0)
        if config.noise_multiplier > 0:
            sigma = config.noise_multiplier * config.clip_norm
            grad = grad + rng.normal(0.0, sigma, grad.shape)
        grad /= batch
        model.set_params(model.params - config.learning_rate * grad)
        if config.noise_multiplier > 0:
            accountant.step(config.noise_multiplier, sampling_rate)
    if config.noise_multiplier > 0:
        epsilon = accountant.get_epsilon(delta)
    else:
        epsilon = float("inf")
    return DPSGDResult(
        epsilon=epsilon,
        delta=delta,
        steps=config.steps,
        mean_clip_fraction=float(np.mean(clip_hits)),
    )


def noise_multiplier_for_epsilon(target_epsilon: float, sampling_rate: float,
                                 steps: int, delta: float = 1e-5,
                                 lower: float = 0.05,
                                 upper: float = 64.0) -> float:
    """Binary-search the noise multiplier hitting ``target_epsilon``.

    The epsilon reported by the RDP accountant is monotone decreasing in the
    noise multiplier, so bisection converges; raises when the target is
    unreachable inside [lower, upper].
    """
    if target_epsilon <= 0:
        raise PrivacyError("target epsilon must be positive")

    def epsilon_of(noise: float) -> float:
        accountant = RDPAccountant()
        accountant.step(noise, sampling_rate, steps=steps)
        return accountant.get_epsilon(delta)

    if epsilon_of(upper) > target_epsilon:
        raise PrivacyError("target epsilon unreachable even at maximum noise")
    if epsilon_of(lower) < target_epsilon:
        return lower
    for _ in range(80):
        mid = (lower + upper) / 2.0
        if epsilon_of(mid) > target_epsilon:
            lower = mid
        else:
            upper = mid
    return upper
