"""Differential-privacy mechanisms.

The classic building blocks: Laplace (pure epsilon-DP), Gaussian
((epsilon, delta)-DP with the analytic calibration), and randomized response
for categorical survey-style values.  These are what PDS2 executors apply to
workload outputs when the leak-risk analyzer flags them (Section IV-D).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import PrivacyError


def laplace_noise_scale(sensitivity: float, epsilon: float) -> float:
    """Scale b of Laplace noise for an L1 sensitivity and epsilon."""
    if sensitivity < 0:
        raise PrivacyError("sensitivity must be non-negative")
    if epsilon <= 0:
        raise PrivacyError("epsilon must be positive")
    return sensitivity / epsilon


def laplace_mechanism(value, sensitivity: float, epsilon: float,
                      rng: np.random.Generator):
    """Add Laplace(b = sensitivity / epsilon) noise to a scalar or array."""
    scale = laplace_noise_scale(sensitivity, epsilon)
    value = np.asarray(value, dtype=float)
    noised = value + rng.laplace(0.0, scale, value.shape)
    return float(noised) if noised.shape == () else noised


def gaussian_noise_sigma(sensitivity: float, epsilon: float,
                         delta: float) -> float:
    """Classic Gaussian-mechanism calibration.

    ``sigma = sensitivity * sqrt(2 ln(1.25 / delta)) / epsilon`` — valid for
    epsilon <= 1, conservative above.
    """
    if sensitivity < 0:
        raise PrivacyError("sensitivity must be non-negative")
    if epsilon <= 0:
        raise PrivacyError("epsilon must be positive")
    if not 0 < delta < 1:
        raise PrivacyError("delta must be in (0, 1)")
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


def gaussian_mechanism(value, sensitivity: float, epsilon: float,
                       delta: float, rng: np.random.Generator):
    """Add calibrated Gaussian noise to a scalar or array (L2 sensitivity)."""
    sigma = gaussian_noise_sigma(sensitivity, epsilon, delta)
    value = np.asarray(value, dtype=float)
    noised = value + rng.normal(0.0, sigma, value.shape)
    return float(noised) if noised.shape == () else noised


def randomized_response(truth: bool, epsilon: float,
                        rng: np.random.Generator) -> bool:
    """Warner's randomized response: answer truthfully w.p. e^eps/(1+e^eps)."""
    if epsilon <= 0:
        raise PrivacyError("epsilon must be positive")
    keep_probability = math.exp(epsilon) / (1.0 + math.exp(epsilon))
    if rng.random() < keep_probability:
        return bool(truth)
    return not truth


def randomized_response_estimate(responses: list[bool],
                                 epsilon: float) -> float:
    """Debias the observed positive rate of randomized responses.

    Inverts the response channel: if p = e^eps / (1 + e^eps) is the truthful
    probability, the true rate is ``(observed + p - 1) / (2p - 1)``.
    """
    if epsilon <= 0:
        raise PrivacyError("epsilon must be positive")
    if not responses:
        raise PrivacyError("cannot estimate from zero responses")
    p = math.exp(epsilon) / (1.0 + math.exp(epsilon))
    observed = sum(1 for r in responses if r) / len(responses)
    estimate = (observed + p - 1.0) / (2.0 * p - 1.0)
    return min(1.0, max(0.0, estimate))
